//! The Colza provider: server-side RPC handlers and pipeline management.
//!
//! Block placement and survival run through the `store` crate: every
//! staged block is recorded in a [`StagingStore`] with its ring role
//! (primary feeds the backend, replicas hold bytes for recovery), and
//! every `commit_activate` reconciles the holdings against the newly
//! frozen member list — pushing copies to new owners over the same RDMA
//! pull path as `stage`, promoting surviving replicas when their primary
//! died, and dropping copies the ring moved elsewhere (DESIGN.md §10).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use catalyst::{MonaVtkComm, MpiVtkComm};
use margo::{HandlerPool, MargoInstance, RetryConfig};
use mona::MonaInstance;
use na::Address;
use ssg::SsgGroup;
use store::{BlockKey, HashRing, RingConfig, Role, StagingStore, StoredBlock};
use vizkit::Controller;

use bytes::Bytes;

use crate::backend::{self, Backend, BackendCtx, StagedBlock};
use crate::codec::{self, CodecConfig, CodecError, CodecId};
use crate::protocol::*;
use crate::qos::ExecGate;

/// Which communication layer pipelines execute over.
pub enum ProviderComm {
    /// Elastic: a fresh MoNA communicator per iteration, built from the
    /// frozen member list.
    Mona,
    /// The `Colza+MPI` baseline: a static MPI communicator fixed at
    /// launch. No elasticity — exactly the paper's comparison mode.
    MpiStatic(Mutex<Option<minimpi::MpiComm>>),
}

struct PipelineEntry {
    backend: Arc<dyn Backend>,
}

/// The member list and ring parameters blocks are currently placed
/// under; updated by every `commit_activate` and by crash repair.
#[derive(Debug, Clone)]
struct Placement {
    members: Vec<Address>,
    cfg: RingConfig,
}

/// Per-server provider state, registered on a margo instance.
pub struct ColzaProvider {
    margo: Arc<MargoInstance>,
    mona: Arc<MonaInstance>,
    group: Arc<SsgGroup>,
    comm: ProviderComm,
    pipelines: RwLock<HashMap<String, PipelineEntry>>,
    /// Member lists and ring parameters frozen by `commit_activate`, per
    /// (pipeline, iteration).
    frozen: Mutex<HashMap<(String, u64), (Vec<Address>, RingConfig)>>,
    /// Every copy this server holds. Placement truth for sync/drain.
    store: StagingStore,
    /// What the held blocks were last placed against. The lock also
    /// serializes sync/drain/repair passes.
    placement: Mutex<Option<Placement>>,
    /// Set by the SSG observer on a death/leave; the daemon loop turns it
    /// into a repair pass.
    repair_needed: AtomicBool,
    /// Set while this server drains out. New stage/push admissions are
    /// refused from then on: a block admitted after the drain snapshot
    /// would be acknowledged to the client and then die with this
    /// server. Cleared only by [`ColzaProvider::cancel_departure`] when
    /// a drain cannot empty the store and the departure is called off.
    draining: AtomicBool,
    /// Set by the admin `leave` RPC; the daemon loop acts on it.
    pub(crate) leave_requested: AtomicBool,
    /// The deployment's codec configuration, advertised to clients via
    /// `colza.get_codec_config` (filled in from [`crate::DaemonConfig`]).
    codec_cfg: Mutex<CodecConfig>,
    /// The multi-tenant QoS gate: staged-byte quota policy for `admit`
    /// and the fair-share scheduler `colza.execute` runs under
    /// (DESIGN.md §14). Accounting always runs; enforcement only when
    /// the installed [`TenancyConfig`] enables it.
    qos: ExecGate,
    /// Delta-chain state per `(pipeline, block_id, dataset name)`: the
    /// iteration and reconstructed plain payload of the newest chain
    /// frame this server admitted. Unlike the staged blocks themselves
    /// this survives `release_iteration` — the next iteration's diff
    /// decodes against it — and is pruned with its pipeline.
    codec_bases: Mutex<HashMap<(String, u64, String), (u64, Bytes)>>,
}

impl ColzaProvider {
    /// Creates the provider and registers all RPC handlers.
    pub fn register(
        margo: Arc<MargoInstance>,
        mona: Arc<MonaInstance>,
        group: Arc<SsgGroup>,
        comm: ProviderComm,
    ) -> Arc<Self> {
        let provider = Arc::new(Self {
            margo: Arc::clone(&margo),
            mona,
            group: Arc::clone(&group),
            comm,
            pipelines: RwLock::new(HashMap::new()),
            frozen: Mutex::new(HashMap::new()),
            store: StagingStore::new(),
            placement: Mutex::new(None),
            repair_needed: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            leave_requested: AtomicBool::new(false),
            codec_cfg: Mutex::new(CodecConfig::default()),
            qos: ExecGate::default(),
            codec_bases: Mutex::new(HashMap::new()),
        });

        // Membership-change hook: a death or departure leaves blocks
        // under-replicated; flag it so the daemon loop runs a repair
        // pass (when enabled) without waiting for the next commit. The
        // same verdict feeds MoNA's dead-set so a collective blocked on
        // the departed member aborts with `Revoked` instead of hanging
        // (DESIGN.md §12) — this observer is the crash detector the
        // fault-tolerance layer is armed with.
        {
            let weak = Arc::downgrade(&provider);
            group.observe(move |ev| {
                if ev.is_departure() {
                    if let Some(p) = weak.upgrade() {
                        p.repair_needed.store(true, Ordering::Release);
                        p.mona.mark_dead(ev.addr());
                    }
                }
            });
        }
        provider.mona.arm_fault_detection();

        // --- control-plane handlers -------------------------------------
        {
            let p = Arc::clone(&provider);
            margo.register("colza.get_view", move |_: (), _ctx| Ok(p.group.view()));
        }
        {
            let p = Arc::clone(&provider);
            margo.register("colza.get_codec_config", move |_: (), _ctx| {
                Ok(p.codec_cfg.lock().clone())
            });
        }
        {
            let p = Arc::clone(&provider);
            margo.register(
                "colza.prepare_activate",
                move |args: PrepareActivateArgs, _ctx| {
                    p.pipeline(&args.pipeline)?;
                    // Voting freezes membership until deactivate/abort.
                    p.group.freeze();
                    Ok(PrepareActivateReply {
                        epoch: p.group.view_epoch(),
                        view: p.group.view(),
                    })
                },
            );
        }
        {
            let p = Arc::clone(&provider);
            margo.register(
                "colza.commit_activate",
                move |args: CommitActivateArgs, _ctx| {
                    let entry = p.pipeline(&args.pipeline)?;
                    entry.activate(args.iteration)?;
                    // Reconcile holdings against the newly frozen view
                    // *before* acknowledging: when the commit returns,
                    // every survivor-owned block is already in place and
                    // fed, so `execute` can proceed from replicas. A
                    // commit whose pushes transiently failed must fail —
                    // the client aborts and retries the 2PC, and the
                    // dirty flag makes the next pass re-push what is
                    // still missing. Quota *refusals* are tolerated: they
                    // would refuse identically on every retry, so failing
                    // here would livelock every tenant's activation on
                    // one tenant's overrun; the over-quota tenant instead
                    // runs with degraded redundancy.
                    let (failed, _refused) = p.sync_to(&args.members, args.ring, "commit");
                    if failed > 0 {
                        return Err(format!("store sync incomplete: {failed} push(es) failed"));
                    }
                    p.frozen
                        .lock()
                        .insert((args.pipeline, args.iteration), (args.members, args.ring));
                    Ok(())
                },
            );
        }
        {
            let p = Arc::clone(&provider);
            margo.register(
                "colza.abort_activate",
                move |_args: AbortActivateArgs, _ctx| {
                    p.group.unfreeze();
                    Ok(())
                },
            );
        }
        {
            let p = Arc::clone(&provider);
            margo.register("colza.stage", move |args: StageArgs, ctx| {
                let entry = p.pipeline(&args.pipeline)?;
                let mut sp = hpcsim::trace::span("colza", "colza.srv.stage");
                if sp.active() {
                    sp.arg("block", args.meta.block_id);
                    sp.arg("bytes", args.meta.size);
                    if args.meta.codec != CodecId::Raw {
                        sp.arg("codec", args.meta.codec.name());
                        sp.arg("wire_bytes", args.meta.encoded_size);
                    }
                }
                // Pull the (encoded) payload from the simulation's memory.
                let data = ctx
                    .endpoint
                    .rdma_get(args.bulk, 0, args.meta.encoded_size)
                    .map_err(|e| e.to_string())?;
                p.admit(&args.pipeline, &entry, args.meta, args.role, data, None)
            });
        }
        {
            // Server-to-server transfer (migration/drain/repair). In the
            // heavy pool: a sync pass inside one server's commit handler
            // must not be able to starve the destination's control pool.
            let p = Arc::clone(&provider);
            margo.register_in_pool(
                "colza.store.push",
                HandlerPool::Heavy,
                move |args: PushBlockArgs, ctx| {
                    let entry = p.pipeline(&args.pipeline)?;
                    let data = ctx
                        .endpoint
                        .rdma_get(args.bulk, 0, args.meta.encoded_size)
                        .map_err(|e| e.to_string())?;
                    // A delta-diff push also carries the sender's
                    // reconstructed plain, so this (possibly fresh) owner
                    // can seed its chain state without the base frame.
                    let plain = match args.plain {
                        Some(bulk) => Some(
                            ctx.endpoint
                                .rdma_get(bulk, 0, args.plain_size)
                                .map_err(|e| e.to_string())?,
                        ),
                        None => None,
                    };
                    hpcsim::trace::counter_add("colza.store.recv.blocks", 1);
                    hpcsim::trace::counter_add(
                        "colza.store.recv.bytes",
                        args.meta.encoded_size as u64,
                    );
                    if let Some(pl) = &plain {
                        hpcsim::trace::counter_add(
                            "colza.store.recv.plain_bytes",
                            pl.len() as u64,
                        );
                    }
                    p.admit(&args.pipeline, &entry, args.meta, args.role, data, plain)
                },
            );
        }
        {
            let p = Arc::clone(&provider);
            margo.register_in_pool("colza.execute", HandlerPool::Heavy, move |args: ExecuteArgs, _ctx| {
                let entry = p.pipeline(&args.pipeline)?;
                let (members, ring_cfg) = p
                    .frozen
                    .lock()
                    .get(&(args.pipeline.clone(), args.iteration))
                    .cloned()
                    .ok_or_else(|| "execute before activate".to_string())?;
                // Settle which copies render before running the pipeline:
                // a mid-iteration re-route or repair may have fed a block
                // on two servers (or on none that survived).
                p.reconcile_fed(&args.pipeline, &entry, args.iteration, &members, ring_cfg);
                let ctrl = p.controller(&members, args.iteration)?;
                let mut sp = hpcsim::trace::span("colza", "colza.srv.execute");
                if sp.active() {
                    sp.arg("iteration", args.iteration);
                    sp.arg("servers", members.len());
                    sp.arg("tenant", args.tenant.as_str());
                }
                // DRR cost hint: the tenant's decoded bytes on this
                // server at ~1 B/ns nominal service rate — a stable,
                // deterministic proxy for the iteration's render work.
                let cost_hint = p.store.tenant_staged_bytes(args.tenant.as_str()).max(1);
                let out = p.qos.run(&args.tenant, cost_hint, || {
                    entry.execute(args.iteration, &ctrl)
                });
                hpcsim::trace::counter_add(
                    &format!("colza.tenant.{}.exec.count", args.tenant.as_str()),
                    1,
                );
                match out {
                    // A member died inside the iteration's collective: the
                    // communicator was revoked. Roll back by leaving the
                    // iteration's staged inputs exactly where they are —
                    // the store keeps every copy until deactivate, and the
                    // next execute's reconcile_fed re-promotes/re-feeds
                    // them against the re-frozen (shrunk) view — and reply
                    // with the typed retryable abort marker.
                    Err(e) if e.contains(mona::REVOKED_MARKER) => {
                        hpcsim::trace::counter_add("colza.exec.aborted", 1);
                        if sp.active() {
                            sp.arg("aborted", true);
                        }
                        Err(format!(
                            "{ABORTED}: iteration {} collective revoked: {e}",
                            args.iteration
                        ))
                    }
                    // A trigger skipping the iteration is a successful
                    // outcome; surface it to the client typed, not as an
                    // error (DESIGN.md §15).
                    Ok(outcome) => {
                        if outcome.is_skipped() {
                            hpcsim::trace::counter_add("colza.exec.skipped", 1);
                            if sp.active() {
                                sp.arg("skipped", true);
                            }
                        }
                        Ok(outcome)
                    }
                    other => other,
                }
            });
        }
        {
            let p = Arc::clone(&provider);
            margo.register("colza.deactivate", move |args: DeactivateArgs, _ctx| {
                let entry = p.pipeline(&args.pipeline)?;
                entry.deactivate(args.iteration)?;
                p.store.release_iteration(&args.pipeline, args.iteration);
                // The iteration window closes: the tenant's execute-time
                // budget refills and a throttled tenant recovers its
                // class weight.
                p.qos.window_reset(&args.tenant);
                p.frozen
                    .lock()
                    .remove(&(args.pipeline.clone(), args.iteration));
                // Processes may join/leave again until the next iteration.
                p.group.unfreeze();
                Ok(())
            });
        }
        {
            let p = Arc::clone(&provider);
            margo.register("colza.fetch_result", move |args: FetchResultArgs, _ctx| {
                Ok(p.pipeline(&args.pipeline)?.take_result())
            });
        }

        // --- admin handlers (a separate library in the paper) ------------
        {
            let p = Arc::clone(&provider);
            margo.register(
                "colza.admin.create_pipeline",
                move |args: CreatePipelineArgs, _ctx| {
                    let ctx = BackendCtx {
                        self_addr: p.margo.address(),
                        config: args.config,
                    };
                    let backend =
                        backend::instantiate(&args.library, &ctx).map_err(|e| match &e {
                            // Marker-prefixed so the client maps it back
                            // to the typed, non-retryable InvalidScript.
                            crate::ColzaError::InvalidScript(m) => {
                                format!("{INVALID_SCRIPT}: {m}")
                            }
                            _ => e.to_string(),
                        })?;
                    p.pipelines
                        .write()
                        .insert(args.name, PipelineEntry { backend });
                    Ok(())
                },
            );
        }
        {
            let p = Arc::clone(&provider);
            margo.register(
                "colza.admin.destroy_pipeline",
                move |args: DestroyPipelineArgs, _ctx| {
                    match p.pipelines.write().remove(&args.name) {
                        Some(_) => {
                            p.codec_bases.lock().retain(|(pl, _, _), _| *pl != args.name);
                            Ok(())
                        }
                        None => Err(format!("no pipeline named {:?}", args.name)),
                    }
                },
            );
        }
        {
            let p = Arc::clone(&provider);
            margo.register("colza.admin.leave", move |_: (), _ctx| {
                p.leave_requested.store(true, Ordering::Release);
                Ok(())
            });
        }
        {
            let p = Arc::clone(&provider);
            margo.register("colza.admin.list_pipelines", move |_: (), _ctx| {
                let mut names: Vec<String> = p.pipelines.read().keys().cloned().collect();
                names.sort();
                Ok(names)
            });
        }
        {
            // Scrapes this server's trace counters (DESIGN.md §9) and
            // staging-store load. Always registered; with tracing
            // disabled it reports empty counters (but live load).
            let p = Arc::clone(&provider);
            margo.register("colza.admin.metrics", move |_: (), _ctx| {
                let ctx = hpcsim::process::current();
                let tracer = ctx.cluster().tracer();
                let pid = ctx.pid().0;
                Ok(MetricsReport {
                    pid,
                    enabled: tracer.is_enabled(),
                    staged_bytes: p.store.staged_bytes(),
                    decoded_bytes: p.store.decoded_bytes(),
                    tenants: p.store.tenant_usage(),
                    counters: tracer.counters_for(pid),
                })
            });
        }
        {
            // Installs (or replaces) the tenancy policy at runtime: the
            // autoscaler reconfigures quotas on a live pool this way.
            let p = Arc::clone(&provider);
            margo.register(
                "colza.admin.set_tenancy",
                move |cfg: TenancyConfig, _ctx| {
                    p.qos.set_config(cfg);
                    Ok(())
                },
            );
        }

        provider
    }

    /// Installs the static MPI world (Colza+MPI baseline deployments).
    pub fn set_static_world(&self, comm: minimpi::MpiComm) {
        match &self.comm {
            ProviderComm::MpiStatic(slot) => *slot.lock() = Some(comm),
            ProviderComm::Mona => panic!("set_static_world on a MoNA-mode provider"),
        }
    }

    /// Whether an admin asked this server to leave.
    pub fn leave_requested(&self) -> bool {
        self.leave_requested.load(Ordering::Acquire)
    }

    /// Installs the codec configuration this deployment advertises via
    /// `colza.get_codec_config` (the daemon forwards its
    /// [`crate::DaemonConfig::codec`] here after registration). The
    /// provider itself decodes from `BlockMeta::codec` — this is purely
    /// what clients adopt.
    pub fn set_codec_config(&self, cfg: CodecConfig) {
        *self.codec_cfg.lock() = cfg;
    }

    /// Installs the tenancy policy ([`crate::DaemonConfig::tenancy`], or
    /// the `colza.admin.set_tenancy` RPC at runtime). Accounting always
    /// runs; quotas and the execute gate enforce only when enabled.
    pub fn set_tenancy_config(&self, cfg: TenancyConfig) {
        self.qos.set_config(cfg);
    }

    /// The QoS gate (test/diagnostic access).
    pub fn qos(&self) -> &ExecGate {
        &self.qos
    }

    /// The membership group.
    pub fn group(&self) -> &Arc<SsgGroup> {
        &self.group
    }

    /// The staging store (test/diagnostic access).
    pub fn store(&self) -> &StagingStore {
        &self.store
    }

    /// Consumes a pending repair request flagged by the SSG observer.
    pub fn take_repair_request(&self) -> bool {
        self.repair_needed.swap(false, Ordering::AcqRel)
    }

    /// Calls off a departure whose drain could not empty the store:
    /// clears the admission refusal so the server resumes serving, and
    /// the pending leave flag so the daemon loop stops retrying. Leaving
    /// anyway would take the kept copies down with the leaver — exactly
    /// what the drain-before-leave contract forbids. A later admin
    /// `leave` restarts the drain from scratch.
    pub fn cancel_departure(&self) {
        self.draining.store(false, Ordering::SeqCst);
        self.leave_requested.store(false, Ordering::SeqCst);
    }

    /// Re-replicates under-replicated blocks against the *current* SSG
    /// view — the crash-repair path, run by the daemon loop after a
    /// death or departure so `execute` can proceed from survivors even
    /// before the next commit.
    pub fn repair(&self) {
        let view = self.group.view();
        if view.is_empty() {
            return;
        }
        let cfg = self
            .placement
            .lock()
            .as_ref()
            .map(|p| p.cfg)
            .unwrap_or_default();
        let (failed, refused) = self.sync_to(&view, cfg, "repair");
        if failed + refused > 0 {
            // Incomplete pass: re-arm so the next daemon tick retries.
            // Refused (over-quota) copies re-arm too — the owed copy is
            // re-offered once the tenant's earlier iterations release.
            self.repair_needed.store(true, Ordering::Release);
        }
    }

    /// Pushes every held block to its owners under the view *without*
    /// this server, then drops the local copies — the graceful-shrink
    /// path, run before `leave` so no block rides the leaver down.
    pub fn drain(&self) {
        let me = self.margo.address();
        // Refuse new admissions from here on: anything admitted after the
        // snapshot below would be acknowledged and then lost. `admit`
        // re-checks the flag after its insert, so the flag plus the store
        // mutex leave no window.
        self.draining.store(true, Ordering::SeqCst);
        let survivors: Vec<Address> = self
            .group
            .view()
            .into_iter()
            .filter(|&a| a != me)
            .collect();
        if survivors.is_empty() {
            return;
        }
        let mut placement = self.placement.lock();
        let blocks = self.store.snapshot();
        if blocks.is_empty() {
            return;
        }
        let (old_members, cfg) = match placement.as_ref() {
            Some(p) => (p.members.clone(), p.cfg),
            None => (self.group.view(), RingConfig::default()),
        };
        let old_ring = HashRing::build_in_sim(&old_members, cfg);
        let new_ring = HashRing::build_in_sim(&survivors, cfg);
        let mut sp = hpcsim::trace::span("colza", "colza.store.drain");
        if sp.active() {
            sp.arg("blocks", blocks.len());
            sp.arg("survivors", survivors.len());
        }
        let (mut moved_blocks, mut moved_bytes) = (0u64, 0u64);
        for b in blocks {
            let old_owners = old_ring.owners(&b.key);
            // Unlike a sync pass, the leaver pushes to *every* new owner
            // that is not already a surviving holder: survivors only
            // reconcile at the next commit, and the data must be safe
            // before this server goes away.
            let mut all_landed = true;
            for (i, &target) in new_ring.owners(&b.key).iter().enumerate() {
                if old_owners.contains(&target) {
                    continue;
                }
                let role = if i == 0 { Role::Primary } else { Role::Replica };
                match self.push_block(target, &b, role) {
                    Ok(()) => {
                        moved_blocks += 1;
                        moved_bytes += b.data.len() as u64;
                    }
                    Err(_) => {
                        all_landed = false;
                        hpcsim::trace::counter_add("colza.store.push_failed", 1)
                    }
                }
            }
            if !all_landed {
                // Keep the copy rather than silently lose it: the daemon
                // loops drain until the store is empty before it leaves
                // the group, so a failed drain surfaces as a stuck (or
                // aborted) departure, not missing data.
                continue;
            }
            let meta = block_meta(&b);
            if let Some(removed) =
                self.store
                    .remove(&b.key.pipeline, b.iteration, b.key.block_id, &b.name)
            {
                if removed.fed {
                    if let Ok(entry) = self.pipeline(&b.key.pipeline) {
                        let _ = entry.unstage(&meta);
                    }
                }
            }
        }
        hpcsim::trace::counter_add("colza.store.drain.blocks", moved_blocks);
        hpcsim::trace::counter_add("colza.store.drain.bytes", moved_bytes);
        *placement = Some(Placement {
            members: survivors,
            cfg,
        });
    }

    /// Records a staged or pushed copy and feeds the backend when this
    /// server is the copy's primary. Insert is idempotent (stage
    /// retries, repair races); the feed claim guarantees at most one
    /// feed per copy.
    fn admit(
        &self,
        pipeline: &str,
        entry: &Arc<dyn Backend>,
        meta: BlockMeta,
        role: Role,
        data: bytes::Bytes,
        plain_hint: Option<bytes::Bytes>,
    ) -> std::result::Result<(), String> {
        if self.draining.load(Ordering::SeqCst) {
            return Err(DRAINING.to_string());
        }
        // Chain frames (iteration deltas) are reconstructed eagerly on
        // *every* holder — primary and replicas alike — before the copy
        // is recorded: the reconstructed plain is what lets this holder
        // serve as the next diff's base, feed the backend after a
        // promotion, and seed fresh owners during repair, all after the
        // base frame itself was released at deactivate.
        let plain = if meta.codec.is_chain() {
            Some(self.chain_plain(pipeline, &meta, &data, plain_hint)?)
        } else {
            None
        };
        // Admission control: the tenant's staged-byte quota is checked
        // atomically with the insert. Quotas only bite when tenancy
        // enforcement is on; duplicates (stage retries, repair races)
        // are never refused. The refusal is the typed, retryable
        // backpressure signal — the client backs off and retries as the
        // tenant's earlier iterations release.
        let quota = {
            let cfg = self.qos.config();
            if cfg.enabled {
                cfg.config_for(&meta.tenant).staged_byte_quota
            } else {
                u64::MAX
            }
        };
        let admitted = self.store.admit(
            StoredBlock {
                key: BlockKey::new(pipeline, meta.block_id),
                name: meta.name.clone(),
                tenant: meta.tenant.as_str().to_string(),
                iteration: meta.iteration,
                role,
                fed: false,
                data: data.clone(),
                codec: meta.codec.as_u8(),
                decoded_len: meta.size,
                plain: plain.clone(),
            },
            quota,
        );
        let fresh = match admitted {
            store::Admit::Fresh => {
                hpcsim::trace::counter_add(
                    &format!("colza.tenant.{}.stage.blocks", meta.tenant.as_str()),
                    1,
                );
                hpcsim::trace::counter_add(
                    &format!("colza.tenant.{}.stage.bytes", meta.tenant.as_str()),
                    data.len() as u64,
                );
                hpcsim::trace::counter_add(
                    &format!("colza.tenant.{}.stage.decoded_bytes", meta.tenant.as_str()),
                    meta.size as u64,
                );
                true
            }
            store::Admit::Duplicate => false,
            store::Admit::OverQuota { used } => {
                hpcsim::trace::counter_add("colza.qos.quota.refused", 1);
                hpcsim::trace::counter_add(
                    &format!("colza.tenant.{}.quota.refused", meta.tenant.as_str()),
                    1,
                );
                return Err(format!(
                    "{QUOTA}: tenant {:?} holds {used} staged bytes, quota {quota}",
                    meta.tenant.as_str()
                ));
            }
        };
        // Re-check after the insert: if a drain set the flag in between,
        // its snapshot may have missed this block. Undo and refuse — the
        // store mutex (insert vs. snapshot) makes the flag visible here
        // whenever the snapshot ran first.
        if self.draining.load(Ordering::SeqCst) {
            if fresh {
                self.store
                    .remove(pipeline, meta.iteration, meta.block_id, &meta.name);
            }
            return Err(DRAINING.to_string());
        }
        if role == Role::Primary
            && self
                .store
                .promote(pipeline, meta.iteration, meta.block_id, &meta.name)
        {
            // The backend always receives the decoded payload: chain
            // frames were reconstructed above; stateless frames decode
            // here, at feed time (raw passes through by refcount).
            let feed = match plain {
                Some(p) => Ok(p),
                None => codec::decode_block(meta.codec, &data, None).map_err(|e| e.to_string()),
            };
            let feed = match feed {
                Ok(d) => d,
                Err(e) => {
                    self.store
                        .unmark_fed(pipeline, meta.iteration, meta.block_id, &meta.name);
                    return Err(e);
                }
            };
            if let Err(e) = entry.stage(StagedBlock {
                meta: meta.clone(),
                data: feed,
            }) {
                self.store
                    .unmark_fed(pipeline, meta.iteration, meta.block_id, &meta.name);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Reconstructs the plain payload of a chain frame and advances this
    /// server's chain state for `(pipeline, block_id, name)`. Anchors
    /// (`DeltaFull`) decode standalone; diffs decode against the cached
    /// base — or arrive with the sender's reconstructed plain (repair
    /// and rebalance pushes), which seeds a fresh owner directly. Admits
    /// are idempotent: re-admitting the newest frame reuses the cache.
    fn chain_plain(
        &self,
        pipeline: &str,
        meta: &BlockMeta,
        data: &Bytes,
        hint: Option<Bytes>,
    ) -> std::result::Result<Bytes, String> {
        let key = (pipeline.to_string(), meta.block_id, meta.name.clone());
        let mut bases = self.codec_bases.lock();
        let plain = match meta.codec {
            CodecId::DeltaFull => {
                codec::decode_block(CodecId::DeltaFull, data, None).map_err(|e| e.to_string())?
            }
            CodecId::DeltaDiff => {
                if let Some(h) = hint {
                    h
                } else {
                    let info = codec::frame_info(data).map_err(|e| e.to_string())?;
                    let base_iteration = info.base_iteration.unwrap_or(0);
                    match bases.get(&key) {
                        Some((it, base)) if *it == base_iteration => {
                            codec::decode_block(CodecId::DeltaDiff, data, Some(base))
                                .map_err(|e| e.to_string())?
                        }
                        // Idempotent re-admit of the frame we already
                        // advanced past (stage retries, repair races).
                        Some((it, plain)) if *it == meta.iteration => plain.clone(),
                        _ => {
                            return Err(CodecError::MissingDeltaBase { base_iteration }.to_string())
                        }
                    }
                }
            }
            _ => unreachable!("chain_plain called for a non-chain codec"),
        };
        // Never regress the chain: a stale re-admit (an old frame pushed
        // by a lagging peer) must not clobber a newer base.
        match bases.get(&key) {
            Some((it, _)) if *it > meta.iteration => {}
            _ => {
                bases.insert(key, (meta.iteration, plain.clone()));
            }
        }
        Ok(plain)
    }

    /// The decoded (backend-facing) payload of a held copy.
    fn decoded_of(&self, b: &StoredBlock) -> std::result::Result<Bytes, String> {
        let codec = CodecId::from_u8(b.codec).map_err(|e| e.to_string())?;
        if codec.is_chain() {
            b.plain
                .clone()
                .ok_or_else(|| "chain-coded copy holds no reconstructed payload".to_string())
        } else {
            codec::decode_block(codec, &b.data, None).map_err(|e| e.to_string())
        }
    }

    /// Feeds one held copy to its pipeline backend, decoding as needed
    /// (the single feed path for promotions during sync and execute
    /// reconciliation).
    fn feed_block(
        &self,
        entry: &Arc<dyn Backend>,
        b: &StoredBlock,
    ) -> std::result::Result<(), String> {
        let data = self.decoded_of(b)?;
        entry.stage(StagedBlock {
            meta: block_meta(b),
            data,
        })
    }

    /// Reconciles this server's holdings against a new placement: the
    /// planner diffs the previous ring with the new one, and this server
    /// pushes copies to new owners, promotes/demotes its own copies, and
    /// drops what no longer belongs here. No-op when placement is
    /// unchanged, so it is cheap to run on every commit. Returns the
    /// pushes that did not land, split into `(failed, refused)`:
    /// transient failures (timeouts, dead targets) versus deterministic
    /// staged-byte quota refusals by the receiver. When either is
    /// nonzero the recorded placement is reverted to the old view, so
    /// the next sync re-diffs and re-pushes what is still owed (pushes
    /// are idempotent on the receiver, so re-sending an already-landed
    /// copy is harmless). Callers treat the two differently: a commit
    /// aborts only on transient failures — a quota refusal would refuse
    /// identically on every retry, and livelocking *every* tenant's
    /// activation on one tenant's overrun is exactly what the quota is
    /// meant to prevent. The refused copy's tenant runs with degraded
    /// redundancy until its quota frees.
    fn sync_to(&self, members: &[Address], cfg: RingConfig, reason: &'static str) -> (u64, u64) {
        let me = self.margo.address();
        let mut placement = self.placement.lock();
        let old = match placement.as_ref() {
            Some(p) if p.members == members && p.cfg == cfg => return (0, 0),
            Some(p) => p.clone(),
            None => {
                *placement = Some(Placement {
                    members: members.to_vec(),
                    cfg,
                });
                return (0, 0);
            }
        };
        let blocks = self.store.snapshot();
        *placement = Some(Placement {
            members: members.to_vec(),
            cfg,
        });
        if blocks.is_empty() {
            return (0, 0);
        }
        let mut sp = hpcsim::trace::span("colza", "colza.store.sync");
        if sp.active() {
            sp.arg("reason", reason);
            sp.arg("blocks", blocks.len());
            sp.arg("servers", members.len());
        }
        let old_ring = HashRing::build_in_sim(&old.members, old.cfg);
        let new_ring = HashRing::build_in_sim(members, cfg);
        let (mut moved_blocks, mut moved_bytes) = (0u64, 0u64);
        let (mut promoted, mut demoted, mut dropped) = (0u64, 0u64, 0u64);
        let (mut failed, mut refused) = (0u64, 0u64);
        for b in blocks {
            let sync = store::sync_block(
                me,
                &old_ring.owners(&b.key),
                &new_ring.owners(&b.key),
                new_ring.members(),
            );
            let mut all_landed = true;
            for (target, role) in &sync.push {
                match self.push_block(*target, &b, *role) {
                    Ok(()) => {
                        moved_blocks += 1;
                        moved_bytes += b.data.len() as u64;
                    }
                    Err(margo::RpcError::Handler(m)) if m.starts_with(QUOTA) => {
                        refused += 1;
                        all_landed = false;
                        hpcsim::trace::counter_add("colza.store.push_refused", 1);
                        hpcsim::trace::counter_add(
                            &format!("colza.tenant.{}.push_refused", b.tenant),
                            1,
                        );
                    }
                    Err(_) => {
                        failed += 1;
                        all_landed = false;
                        hpcsim::trace::counter_add("colza.store.push_failed", 1)
                    }
                }
            }
            let meta = block_meta(&b);
            match sync.keep {
                Some(Role::Primary) => {
                    if self
                        .store
                        .promote(&b.key.pipeline, b.iteration, b.key.block_id, &b.name)
                    {
                        promoted += 1;
                        match self.pipeline(&b.key.pipeline) {
                            Ok(entry) => {
                                if self.feed_block(&entry, &b).is_err() {
                                    self.store.unmark_fed(
                                        &b.key.pipeline,
                                        b.iteration,
                                        b.key.block_id,
                                        &b.name,
                                    );
                                }
                            }
                            Err(_) => self.store.unmark_fed(
                                &b.key.pipeline,
                                b.iteration,
                                b.key.block_id,
                                &b.name,
                            ),
                        }
                    }
                }
                Some(Role::Replica) => {
                    if self
                        .store
                        .demote(&b.key.pipeline, b.iteration, b.key.block_id, &b.name)
                    {
                        demoted += 1;
                        if let Ok(entry) = self.pipeline(&b.key.pipeline) {
                            let _ = entry.unstage(&meta);
                        }
                    }
                }
                None => {
                    // Drop the local copy only once every push for this
                    // block landed. Removing it under a failed push would
                    // make the revert-and-retry below unrecoverable: the
                    // retried sync snapshots the store, the block is gone,
                    // nothing is re-pushed — permanent loss at k=1.
                    if !all_landed {
                        continue;
                    }
                    if let Some(removed) =
                        self.store
                            .remove(&b.key.pipeline, b.iteration, b.key.block_id, &b.name)
                    {
                        dropped += 1;
                        if removed.fed {
                            if let Ok(entry) = self.pipeline(&b.key.pipeline) {
                                let _ = entry.unstage(&meta);
                            }
                        }
                    }
                }
            }
        }
        hpcsim::trace::counter_add("colza.store.moved.blocks", moved_blocks);
        hpcsim::trace::counter_add("colza.store.moved.bytes", moved_bytes);
        hpcsim::trace::counter_add("colza.store.promoted.blocks", promoted);
        hpcsim::trace::counter_add("colza.store.demoted.blocks", demoted);
        hpcsim::trace::counter_add("colza.store.dropped.blocks", dropped);
        if failed + refused > 0 {
            // The new placement was not fully realized: fall back to the
            // old one so the next pass (commit retry or repair tick)
            // re-diffs against it and re-pushes the copies still owed.
            // Quota-refused copies revert too — the holder keeps its
            // copy (never dropped under `all_landed == false`), and a
            // later pass re-offers it once the tenant's quota frees.
            *placement = Some(old);
        }
        (failed, refused)
    }

    /// Settles, at `execute` time, which copies of an iteration's blocks
    /// are fed to the backend: exactly the primary under the frozen
    /// placement restricted to members still in the current SSG view.
    ///
    /// Two hazards close here. A client that re-routed a `stage` through
    /// a refreshed view mid-iteration can have fed a block on both the
    /// frozen primary and its successor (the frozen primary was falsely
    /// suspected, or had already fed the copy before refusing) — the
    /// stale copy is demoted so the block renders once. Conversely, when
    /// the frozen primary died and no repair pass ran, the surviving
    /// successor promotes and feeds its replica so `execute` proceeds
    /// instead of rendering a hole. In a healthy iteration fed state
    /// already matches the frozen ring and this is a no-op.
    fn reconcile_fed(
        &self,
        pipeline: &str,
        entry: &Arc<dyn Backend>,
        iteration: u64,
        frozen: &[Address],
        cfg: RingConfig,
    ) {
        let me = self.margo.address();
        let current = self.group.view();
        let alive: Vec<Address> = frozen
            .iter()
            .copied()
            .filter(|a| current.contains(a))
            .collect();
        if alive.is_empty() {
            return;
        }
        // Serialize with sync/drain/repair passes.
        let _placement = self.placement.lock();
        let ring = HashRing::build_in_sim(&alive, cfg);
        for b in self.store.snapshot() {
            if b.key.pipeline != pipeline || b.iteration != iteration {
                continue;
            }
            if ring.primary(&b.key) == Some(me) {
                if self
                    .store
                    .promote(pipeline, iteration, b.key.block_id, &b.name)
                {
                    hpcsim::trace::counter_add("colza.store.exec.promoted", 1);
                    if self.feed_block(entry, &b).is_err() {
                        self.store
                            .unmark_fed(pipeline, iteration, b.key.block_id, &b.name);
                    }
                }
            } else if self
                .store
                .demote(pipeline, iteration, b.key.block_id, &b.name)
            {
                hpcsim::trace::counter_add("colza.store.exec.demoted", 1);
                let _ = entry.unstage(&block_meta(&b));
            }
        }
    }

    /// Pushes one copy to a peer: expose the payload, forward the push
    /// RPC, let the peer RDMA-pull — the same bulk shape as `stage`.
    fn push_block(
        &self,
        target: Address,
        b: &StoredBlock,
        role: Role,
    ) -> std::result::Result<(), margo::RpcError> {
        let mut sp = hpcsim::trace::span("colza", "colza.store.push");
        if sp.active() {
            sp.arg("block", b.key.block_id);
            sp.arg("bytes", b.data.len());
            sp.arg("to", target.0);
        }
        let endpoint = self.margo.endpoint();
        // The *encoded* frame moves, by refcount — never re-encoded. A
        // delta-diff copy additionally exposes its reconstructed plain:
        // the receiver may be a fresh owner (repair, rebalance) whose
        // chain state never saw the base this frame diffs against.
        let bulk = endpoint.expose(b.data.clone());
        let plain_payload = match CodecId::from_u8(b.codec) {
            Ok(CodecId::DeltaDiff) => b.plain.clone(),
            _ => None,
        };
        let (plain, plain_size) = match &plain_payload {
            Some(p) => (Some(endpoint.expose(p.clone())), p.len()),
            None => (None, 0),
        };
        if plain_size > 0 {
            hpcsim::trace::counter_add("colza.codec.push.plain_bytes", plain_size as u64);
        }
        let args = PushBlockArgs {
            pipeline: b.key.pipeline.clone(),
            meta: block_meta(b),
            role,
            bulk,
            plain,
            plain_size,
        };
        // Fast per-try timeout: a dropped push must not stall the caller
        // (the commit/drain path holds a server pool slot while pushing,
        // and the client's 2PC is waiting behind it).
        let cfg = RetryConfig {
            max_attempts: 0,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(100),
            per_try_timeout: Duration::from_millis(500),
            deadline: Some(Duration::from_secs(10)),
            ..Default::default()
        };
        let out = self
            .margo
            .forward_retry(target, "colza.store.push", &args, &cfg);
        endpoint.unexpose(bulk).ok();
        if let Some(pb) = args.plain {
            endpoint.unexpose(pb).ok();
        }
        out
    }

    fn pipeline(&self, name: &str) -> std::result::Result<Arc<dyn Backend>, String> {
        self.pipelines
            .read()
            .get(name)
            .map(|e| Arc::clone(&e.backend))
            .ok_or_else(|| format!("no pipeline named {name:?}"))
    }

    /// Builds the iteration's controller from the frozen member list.
    fn controller(
        &self,
        members: &[Address],
        iteration: u64,
    ) -> std::result::Result<Controller, String> {
        match &self.comm {
            ProviderComm::Mona => {
                let comm = self
                    .mona
                    .comm_create_with_context(members.to_vec(), iteration)
                    .map_err(|e| e.to_string())?;
                Ok(Controller::new(MonaVtkComm::new(comm)))
            }
            ProviderComm::MpiStatic(slot) => {
                let comm = slot
                    .lock()
                    .clone()
                    .ok_or("static MPI world not initialized")?;
                Ok(Controller::new(MpiVtkComm::new(comm)))
            }
        }
    }
}

/// Marker prefix of the drain refusal, recognized by
/// `ColzaError::from(RpcError)` so clients treat it as retryable and
/// re-route the block through the surviving view.
pub(crate) const DRAINING: &str = "server draining";

/// Marker prefix of the mid-iteration abort reply, recognized by
/// `ColzaError::from(RpcError)` as [`crate::ColzaError::IterationAborted`]
/// so clients re-activate against the shrunk view and re-issue the
/// iteration instead of giving up.
pub(crate) const ABORTED: &str = "iteration aborted by revoked collective";

/// Marker prefix of the staged-byte-quota refusal, recognized by
/// `ColzaError::from(RpcError)` as [`crate::ColzaError::QuotaExceeded`]:
/// typed, retryable backpressure — the client backs off and retries
/// instead of re-routing.
pub(crate) const QUOTA: &str = "staged-byte quota exceeded";

/// Marker prefix of a `create_pipeline` script rejection (malformed
/// JSON or a trigger expression that fails to compile), recognized by
/// `ColzaError::from(RpcError)` as the fatal, typed `InvalidScript`.
pub(crate) const INVALID_SCRIPT: &str = "invalid pipeline script";

fn block_meta(b: &StoredBlock) -> BlockMeta {
    BlockMeta {
        name: b.name.clone(),
        block_id: b.key.block_id,
        iteration: b.iteration,
        size: b.decoded_len,
        codec: CodecId::from_u8(b.codec).unwrap_or(CodecId::Raw),
        encoded_size: b.data.len(),
        tenant: TenantId::new(b.tenant.clone()),
    }
}
