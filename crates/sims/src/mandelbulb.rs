//! The Mandelbulb miniapp: a 3-D power-8 fractal escape-time field.
//!
//! The original is a Catalyst tutorial example that stresses
//! visualization pipelines with complex mesh geometry. The global domain
//! is a regular grid over `[-1.2, 1.2]³` partitioned along z; each process
//! may own several blocks (the paper runs 4 blocks of 128³ per client).

use vizkit::data::{DataArray, DataSet, ImageData};

/// Mandelbulb field generator.
#[derive(Debug, Clone, Copy)]
pub struct Mandelbulb {
    /// Global grid points per axis `[nx, ny, nz]`.
    pub dims: [usize; 3],
    /// Fractal power (the classic bulb is 8).
    pub power: f32,
    /// Escape-iteration cap.
    pub max_iter: u32,
    /// Domain half-width.
    pub extent: f32,
}

impl Default for Mandelbulb {
    fn default() -> Self {
        Self {
            dims: [64, 64, 64],
            power: 8.0,
            max_iter: 30,
            extent: 1.2,
        }
    }
}

impl Mandelbulb {
    /// Escape iterations for one spatial point.
    pub fn escape_iterations(&self, x: f32, y: f32, z: f32) -> u32 {
        let (cx, cy, cz) = (x, y, z);
        let (mut px, mut py, mut pz) = (x, y, z);
        for it in 0..self.max_iter {
            let r = (px * px + py * py + pz * pz).sqrt();
            if r > 2.0 {
                return it;
            }
            // White–Nylander spherical-coordinate power map.
            let theta = (pz / r.max(1e-12)).acos();
            let phi = py.atan2(px);
            let rn = r.powf(self.power);
            let (tn, pn) = (theta * self.power, phi * self.power);
            px = rn * tn.sin() * pn.cos() + cx;
            py = rn * tn.sin() * pn.sin() + cy;
            pz = rn * tn.cos() + cz;
        }
        self.max_iter
    }

    /// Generates block `block` of `total_blocks` (z-partition). The block
    /// carries the `iterations` point field the pipelines contour.
    pub fn generate_block(&self, block: usize, total_blocks: usize) -> DataSet {
        assert!(block < total_blocks);
        let [nx, ny, nz] = self.dims;
        assert!(
            nz % total_blocks == 0,
            "z extent must divide across blocks"
        );
        let local_nz = nz / total_blocks;
        let z_start = block * local_nz;
        // One overlapping plane so contours are seamless across blocks.
        let z_planes = if block + 1 < total_blocks {
            local_nz + 1
        } else {
            local_nz
        };
        let spacing = 2.0 * self.extent / (self.dims[0] - 1) as f32;
        let mut img = ImageData::new([nx, ny, z_planes]);
        img.origin = [-self.extent, -self.extent, -self.extent + z_start as f32 * spacing];
        img.spacing = [spacing; 3];
        let mut vals = Vec::with_capacity(nx * ny * z_planes);
        for dz in 0..z_planes {
            let z = img.origin[2] + dz as f32 * spacing;
            for jy in 0..ny {
                let y = -self.extent + jy as f32 * spacing;
                for ix in 0..nx {
                    let x = -self.extent + ix as f32 * spacing;
                    vals.push(self.escape_iterations(x, y, z) as f32);
                }
            }
        }
        img.point_data.set("iterations", DataArray::F32(vals));
        DataSet::Image(img)
    }

    /// Payload size in bytes of one block for `total_blocks` partitioning.
    pub fn block_bytes(&self, total_blocks: usize) -> usize {
        let [nx, ny, nz] = self.dims;
        nx * ny * (nz / total_blocks + 1) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_points_never_escape() {
        let m = Mandelbulb::default();
        assert_eq!(m.escape_iterations(0.0, 0.0, 0.0), m.max_iter);
    }

    #[test]
    fn far_points_escape_fast() {
        let m = Mandelbulb::default();
        assert!(m.escape_iterations(1.19, 1.19, 1.19) < 3);
    }

    #[test]
    fn blocks_tile_the_domain() {
        let m = Mandelbulb {
            dims: [16, 16, 16],
            ..Default::default()
        };
        let blocks: Vec<_> = (0..4).map(|b| m.generate_block(b, 4)).collect();
        let mut total_planes = 0;
        for (i, b) in blocks.iter().enumerate() {
            let DataSet::Image(img) = b else { unreachable!() };
            assert_eq!(img.dims[0], 16);
            let expect = if i < 3 { 5 } else { 4 }; // 4 owned + 1 overlap
            assert_eq!(img.dims[2], expect);
            total_planes += img.dims[2];
        }
        // 16 planes + 3 overlaps.
        assert_eq!(total_planes, 19);
    }

    #[test]
    fn field_contains_surface_crossings() {
        // The escape field must straddle the standard isovalue so the
        // contour filter has work to do.
        let m = Mandelbulb {
            dims: [24, 24, 24],
            ..Default::default()
        };
        let DataSet::Image(img) = m.generate_block(0, 1) else {
            unreachable!()
        };
        let (lo, hi) = img.point_data.get("iterations").unwrap().range().unwrap();
        assert!(lo < 25.0 && hi >= 25.0, "range ({lo}, {hi})");
    }

    #[test]
    fn adjacent_blocks_share_the_boundary_plane() {
        let m = Mandelbulb {
            dims: [8, 8, 8],
            ..Default::default()
        };
        let DataSet::Image(a) = m.generate_block(0, 2) else {
            unreachable!()
        };
        let DataSet::Image(b) = m.generate_block(1, 2) else {
            unreachable!()
        };
        let fa = a.point_data.get("iterations").unwrap();
        let fb = b.point_data.get("iterations").unwrap();
        // Last plane of block 0 == first plane of block 1.
        let plane = 8 * 8;
        for i in 0..plane {
            assert_eq!(fa.get_f32(4 * plane + i), fb.get_f32(i));
        }
    }

    #[test]
    fn block_bytes_accounts_payload() {
        let m = Mandelbulb {
            dims: [128, 128, 128],
            ..Default::default()
        };
        // The paper's 8 MB blocks: 128×128×128 ints in 4 blocks → 128³/4
        // points each (~2M squared... 128*128*33*4 ≈ 2.2 MB per block with
        // our overlap convention).
        assert!(m.block_bytes(4) > 2_000_000);
    }
}
