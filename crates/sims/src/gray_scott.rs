//! The Gray–Scott reaction–diffusion simulation.
//!
//! Two species `u` and `v` on a periodic 3-D grid:
//!
//! ```text
//! du/dt = Du ∇²u − u v² + F (1 − u)
//! dv/dt = Dv ∇²v + u v² − (F + k) v
//! ```
//!
//! The domain is partitioned along z across ranks; each step exchanges
//! one-deep ghost planes with the two neighbors through `minimpi`
//! (`MPI_Sendrecv`), exactly like the ADIOS tutorial code uses MPI.
//! A serial constructor exists for tests and workload generation.

use vizkit::data::{DataArray, DataSet, ImageData};

/// Model parameters (defaults are the tutorial's pattern-forming regime).
#[derive(Debug, Clone, Copy)]
pub struct GrayScottParams {
    /// Feed rate.
    pub f: f64,
    /// Kill rate.
    pub k: f64,
    /// Diffusion rate of `u`.
    pub du: f64,
    /// Diffusion rate of `v`.
    pub dv: f64,
    /// Time step.
    pub dt: f64,
    /// Noise amplitude applied to the seed.
    pub noise: f64,
}

impl Default for GrayScottParams {
    fn default() -> Self {
        Self {
            f: 0.01,
            k: 0.05,
            du: 0.2,
            dv: 0.1,
            dt: 1.0,
            noise: 0.1,
        }
    }
}

/// One rank's slab of the Gray–Scott domain.
pub struct GrayScott {
    /// Global grid edge length (cube).
    pub n: usize,
    /// First global z-plane owned by this rank.
    pub z0: usize,
    /// Number of owned z-planes.
    pub nz: usize,
    params: GrayScottParams,
    /// Fields with ghost planes: (nz + 2) planes of n×n.
    u: Vec<f64>,
    v: Vec<f64>,
    u_next: Vec<f64>,
    v_next: Vec<f64>,
    rank: usize,
    ranks: usize,
}

impl GrayScott {
    /// Creates rank `rank` of `ranks` over a global n³ domain, seeded with
    /// a central square of `v` surrounded by deterministic noise.
    pub fn new(n: usize, rank: usize, ranks: usize, params: GrayScottParams) -> Self {
        assert!(ranks >= 1 && rank < ranks);
        assert!(n % ranks == 0, "grid must divide evenly across ranks");
        let nz = n / ranks;
        let z0 = rank * nz;
        let plane = n * n;
        let total = (nz + 2) * plane;
        let mut sim = Self {
            n,
            z0,
            nz,
            params,
            u: vec![1.0; total],
            v: vec![0.0; total],
            u_next: vec![0.0; total],
            v_next: vec![0.0; total],
            rank,
            ranks,
        };
        // Deterministic noise + central seed block, as in the miniapp.
        let center = n / 2;
        let half = (n / 8).max(1);
        for gz in z0..z0 + nz {
            for y in 0..n {
                for x in 0..n {
                    let idx = sim.index(x, y, gz - z0);
                    let h = hash3(x as u64, y as u64, gz as u64);
                    sim.v[idx] = params.noise * (h % 1000) as f64 / 1000.0;
                    let seeded = x.abs_diff(center) < half
                        && y.abs_diff(center) < half
                        && gz.abs_diff(center) < half;
                    if seeded {
                        sim.u[idx] = 0.25;
                        sim.v[idx] = 0.5;
                    }
                }
            }
        }
        sim
    }

    /// A serial (single-rank) instance.
    pub fn serial(n: usize, params: GrayScottParams) -> Self {
        Self::new(n, 0, 1, params)
    }

    fn index(&self, x: usize, y: usize, local_z: usize) -> usize {
        // Ghost plane 0; owned planes 1..=nz; ghost plane nz+1.
        ((local_z + 1) * self.n + y) * self.n + x
    }

    /// Exchanges ghost planes with the z-neighbors (periodic) through the
    /// provided communicator; pass `None` for serial periodic wrap.
    pub fn exchange_ghosts(&mut self, comm: Option<&minimpi::MpiComm>) -> Result<(), String> {
        let plane = self.n * self.n;
        match comm {
            None => {
                // Periodic wrap within the local slab.
                let (u, v) = (&mut self.u, &mut self.v);
                let last_owned = self.nz * plane; // start of plane nz
                u.copy_within(last_owned..last_owned + plane, 0);
                v.copy_within(last_owned..last_owned + plane, 0);
                let first_owned = plane; // plane 1
                let top_ghost = (self.nz + 1) * plane;
                u.copy_within(first_owned..first_owned + plane, top_ghost);
                v.copy_within(first_owned..first_owned + plane, top_ghost);
                Ok(())
            }
            Some(comm) => {
                assert_eq!(comm.size(), self.ranks);
                assert_eq!(comm.rank(), self.rank);
                let up = (self.rank + 1) % self.ranks;
                let down = (self.rank + self.ranks - 1) % self.ranks;
                for (field_idx, tag_base) in [(0u8, 100u16), (1u8, 102u16)] {
                    let field: &mut Vec<f64> = if field_idx == 0 {
                        &mut self.u
                    } else {
                        &mut self.v
                    };
                    // Send top owned plane up, receive bottom ghost.
                    let top = f64s_bytes(&field[self.nz * plane..(self.nz + 1) * plane]);
                    let got = comm
                        .sendrecv(&top, up, tag_base, down, tag_base)
                        .map_err(|e| e.to_string())?;
                    bytes_into_f64s(&got, &mut field[0..plane]);
                    // Send bottom owned plane down, receive top ghost.
                    let bottom = f64s_bytes(&field[plane..2 * plane]);
                    let got = comm
                        .sendrecv(&bottom, down, tag_base + 1, up, tag_base + 1)
                        .map_err(|e| e.to_string())?;
                    bytes_into_f64s(&got, &mut field[(self.nz + 1) * plane..(self.nz + 2) * plane]);
                }
                Ok(())
            }
        }
    }

    /// Advances one time step (ghosts must be current).
    pub fn step(&mut self) {
        let n = self.n;
        let p = &self.params;
        for lz in 0..self.nz {
            for y in 0..n {
                for x in 0..n {
                    let i = self.index(x, y, lz);
                    let xm = self.index((x + n - 1) % n, y, lz);
                    let xp = self.index((x + 1) % n, y, lz);
                    let ym = self.index(x, (y + n - 1) % n, lz);
                    let yp = self.index(x, (y + 1) % n, lz);
                    // z neighbors may live in ghost planes.
                    let zm = i - n * n;
                    let zp = i + n * n;
                    let (u, v) = (self.u[i], self.v[i]);
                    // The miniapp's normalized 7-point Laplacian keeps the
                    // explicit scheme stable at dt = 1.
                    let lap_u = (self.u[xm] + self.u[xp] + self.u[ym] + self.u[yp] + self.u[zm]
                        + self.u[zp])
                        / 6.0
                        - u;
                    let lap_v = (self.v[xm] + self.v[xp] + self.v[ym] + self.v[yp] + self.v[zm]
                        + self.v[zp])
                        / 6.0
                        - v;
                    let uvv = u * v * v;
                    self.u_next[i] = u + p.dt * (p.du * lap_u - uvv + p.f * (1.0 - u));
                    self.v_next[i] = v + p.dt * (p.dv * lap_v + uvv - (p.f + p.k) * v);
                }
            }
        }
        std::mem::swap(&mut self.u, &mut self.u_next);
        std::mem::swap(&mut self.v, &mut self.v_next);
    }

    /// Runs `iters` steps with ghost exchange.
    pub fn run(&mut self, iters: usize, comm: Option<&minimpi::MpiComm>) -> Result<(), String> {
        for _ in 0..iters {
            self.exchange_ghosts(comm)?;
            self.step();
        }
        Ok(())
    }

    /// Exports this rank's slab (both fields) as a dataset block.
    pub fn to_dataset(&self) -> DataSet {
        let mut img = ImageData::new([self.n, self.n, self.nz]);
        img.origin = [0.0, 0.0, self.z0 as f32];
        let plane = self.n * self.n;
        let mut u = Vec::with_capacity(self.nz * plane);
        let mut v = Vec::with_capacity(self.nz * plane);
        for lz in 0..self.nz {
            let start = (lz + 1) * plane;
            u.extend(self.u[start..start + plane].iter().map(|&x| x as f32));
            v.extend(self.v[start..start + plane].iter().map(|&x| x as f32));
        }
        img.point_data.set("u", DataArray::F32(u));
        img.point_data.set("v", DataArray::F32(v));
        DataSet::Image(img)
    }

    /// Mean of `v` over the owned slab (a cheap conservation probe).
    pub fn mean_v(&self) -> f64 {
        let plane = self.n * self.n;
        let owned = &self.v[plane..(self.nz + 1) * plane];
        owned.iter().sum::<f64>() / owned.len() as f64
    }
}

fn hash3(x: u64, y: u64, z: u64) -> u64 {
    let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ y.rotate_left(21).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ z.rotate_left(42).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h = h.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    h ^ (h >> 29)
}

fn f64s_bytes(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn bytes_into_f64s(b: &[u8], out: &mut [f64]) {
    assert_eq!(b.len(), out.len() * 8);
    for (slot, chunk) in out.iter_mut().zip(b.chunks_exact(8)) {
        *slot = f64::from_le_bytes(chunk.try_into().unwrap());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_is_deterministic() {
        let a = GrayScott::serial(16, GrayScottParams::default());
        let b = GrayScott::serial(16, GrayScottParams::default());
        assert_eq!(a.u, b.u);
        assert_eq!(a.v, b.v);
    }

    #[test]
    fn fields_stay_bounded() {
        let mut sim = GrayScott::serial(12, GrayScottParams::default());
        sim.run(30, None).unwrap();
        for (&u, &v) in sim.u.iter().zip(&sim.v) {
            assert!((-0.1..=1.5).contains(&u), "u escaped: {u}");
            assert!((-0.1..=1.5).contains(&v), "v escaped: {v}");
        }
    }

    #[test]
    fn reaction_spreads_from_seed() {
        let mut sim = GrayScott::serial(16, GrayScottParams::default());
        let before = sim.mean_v();
        sim.run(50, None).unwrap();
        // The autocatalytic reaction consumes u and makes structures in v;
        // the field must have evolved away from the seed state.
        assert!((sim.mean_v() - before).abs() > 1e-6);
    }

    #[test]
    fn parallel_run_matches_serial() {
        // 2-rank domain must evolve identically to the serial domain.
        let n = 8;
        let iters = 10;
        let mut serial = GrayScott::serial(n, GrayScottParams::default());
        serial.run(iters, None).unwrap();
        let serial_ds = serial.to_dataset();
        let out = minimpi::MpiWorld::run(2, minimpi::Profile::Vendor, move |comm| {
            let mut sim = GrayScott::new(n, comm.rank(), comm.size(), GrayScottParams::default());
            sim.run(iters, Some(&comm)).unwrap();
            let ds = sim.to_dataset();
            let DataSet::Image(img) = ds else { unreachable!() };
            let v = img.point_data.get("v").unwrap();
            (0..v.len()).map(|i| v.get_f32(i)).collect::<Vec<f32>>()
        });
        let DataSet::Image(full) = &serial_ds else {
            unreachable!()
        };
        let v_full = full.point_data.get("v").unwrap();
        let joined: Vec<f32> = out.into_iter().flatten().collect();
        assert_eq!(joined.len(), v_full.len());
        for (i, got) in joined.iter().enumerate() {
            let want = v_full.get_f32(i);
            assert!(
                (got - want).abs() < 1e-5,
                "divergence at {i}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn dataset_export_has_both_fields() {
        let sim = GrayScott::serial(8, GrayScottParams::default());
        let DataSet::Image(img) = sim.to_dataset() else {
            unreachable!()
        };
        assert_eq!(img.dims, [8, 8, 8]);
        assert_eq!(img.point_data.get("u").unwrap().len(), 512);
        assert_eq!(img.point_data.get("v").unwrap().len(), 512);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_partition_is_rejected() {
        GrayScott::new(10, 0, 3, GrayScottParams::default());
    }
}
