//! The Deep Water Impact proxy.
//!
//! The paper's DWI proxy replays 30 snapshots of LANL's Deep Water Impact
//! ensemble (an asteroid–ocean impact run with xRAGE), whose defining
//! property is that **both data size and rendering complexity grow as the
//! run progresses** (Fig. 1a: ~4 M cells growing to ~132 M, file sizes to
//! ~16 GiB). The dataset itself is a multi-hundred-GB LANL product, so —
//! per the substitution rule — this module generates a synthetic stand-in
//! with the same structure: 512 voxel-based unstructured blocks per
//! iteration whose total cell count follows the paper's growth curve, a
//! splash-like geometry expanding over time, and a `v02` velocity-
//! magnitude cell field for volume rendering.

use vizkit::data::{CellType, DataArray, UnstructuredGrid};

/// The synthetic Deep Water Impact series.
#[derive(Debug, Clone, Copy)]
pub struct DwiSeries {
    /// Number of blocks per iteration (the real dataset has 512 VTU files
    /// from a 512-process run).
    pub total_blocks: usize,
    /// Scale factor on cell counts (1.0 ≈ paper scale: up to ~132 M cells;
    /// use small values on laptop-class hosts).
    pub scale: f64,
    /// Number of iterations in the series (the paper replays 30).
    pub iterations: u64,
}

impl Default for DwiSeries {
    fn default() -> Self {
        Self {
            total_blocks: 512,
            scale: 1.0,
            iterations: 30,
        }
    }
}

impl DwiSeries {
    /// A laptop-scale series: 1/4096 of the paper's cell counts.
    pub fn scaled_down(total_blocks: usize) -> Self {
        Self {
            total_blocks,
            scale: 1.0 / 4096.0,
            iterations: 30,
        }
    }

    /// Total cell count at an iteration (1-based, following the paper's
    /// renumbering 1..=30). Calibrated to Fig. 1a: ~4 M cells early,
    /// accelerating growth to ~132 M at iteration 30.
    pub fn cells_at(&self, iteration: u64) -> u64 {
        let t = (iteration.clamp(1, self.iterations)) as f64 / self.iterations as f64;
        let paper_cells = 4.0e6 + 128.0e6 * t.powf(2.2);
        (paper_cells * self.scale) as u64
    }

    /// Approximate serialized size in bytes at an iteration (the "file
    /// size" series of Fig. 1a — roughly 128 bytes per cell in VTK form).
    pub fn bytes_at(&self, iteration: u64) -> u64 {
        self.cells_at(iteration) * 128
    }

    /// Grid resolution used internally at an iteration.
    fn resolution(&self, iteration: u64) -> usize {
        // The splash occupies ~35% of the bounding volume; solve
        // n³ * fill ≈ cells.
        let cells = self.cells_at(iteration) as f64;
        ((cells / 0.35).cbrt().ceil() as usize).max(8)
    }

    /// Generates block `block_id` of the given iteration: a z-slab of the
    /// splash region as voxel cells with the `v02` velocity field.
    pub fn generate_block(&self, iteration: u64, block_id: usize) -> UnstructuredGrid {
        assert!(block_id < self.total_blocks);
        let n = self.resolution(iteration);
        let t = iteration as f32 / self.iterations as f32;
        // Physical domain [0,1]³; ocean surface at z = 0.45; crown radius
        // and height grow with time.
        let spacing = 1.0 / n as f32;
        let zlo = (block_id * n) / self.total_blocks;
        let zhi = ((block_id + 1) * n) / self.total_blocks;

        let mut g = UnstructuredGrid::new();
        let mut vels = Vec::new();
        // Point dedup within the block via a lattice index map.
        let mut point_ids: std::collections::HashMap<(u32, u32, u32), u32> =
            std::collections::HashMap::new();
        let mut get_point = |g: &mut UnstructuredGrid, i: u32, j: u32, k: u32| -> u32 {
            *point_ids.entry((i, j, k)).or_insert_with(|| {
                g.points
                    .push([i as f32 * spacing, j as f32 * spacing, k as f32 * spacing]);
                (g.points.len() - 1) as u32
            })
        };

        for k in zlo..zhi.max(zlo) {
            for j in 0..n {
                for i in 0..n {
                    let x = (i as f32 + 0.5) * spacing;
                    let y = (j as f32 + 0.5) * spacing;
                    let z = (k as f32 + 0.5) * spacing;
                    let Some(v) = splash_velocity(x, y, z, t) else {
                        continue;
                    };
                    let (i, j, k) = (i as u32, j as u32, k as u32);
                    let c = [
                        get_point(&mut g, i, j, k),
                        get_point(&mut g, i + 1, j, k),
                        get_point(&mut g, i, j + 1, k),
                        get_point(&mut g, i + 1, j + 1, k),
                        get_point(&mut g, i, j, k + 1),
                        get_point(&mut g, i + 1, j, k + 1),
                        get_point(&mut g, i, j + 1, k + 1),
                        get_point(&mut g, i + 1, j + 1, k + 1),
                    ];
                    g.add_cell(CellType::Voxel, &c);
                    vels.push(v);
                }
            }
        }
        g.cell_data.set("v02", DataArray::F32(vels));
        debug_assert!(g.validate().is_ok());
        g
    }

    /// Actual generated cell count for an iteration (sum over blocks; the
    /// analytic [`DwiSeries::cells_at`] is the target the generator aims
    /// for).
    pub fn generated_cells(&self, iteration: u64) -> u64 {
        (0..self.total_blocks)
            .map(|b| self.generate_block(iteration, b).num_cells() as u64)
            .sum()
    }
}

/// The splash shape: water body + expanding crown + rising central jet.
/// Returns the velocity magnitude for cells inside water, `None` outside.
fn splash_velocity(x: f32, y: f32, z: f32, t: f32) -> Option<f32> {
    let (dx, dy) = (x - 0.5, y - 0.5);
    let r = (dx * dx + dy * dy).sqrt();
    let surface = 0.45;

    // Undisturbed ocean below the surface, with a growing transient
    // crater around the impact point.
    let crater_r = 0.08 + 0.25 * t;
    let crater_depth = 0.18 * (1.0 - (r / crater_r).min(1.0));
    if z < surface - crater_depth.max(0.0) {
        let v = 0.05 + 0.3 * t * (-r * 4.0).exp();
        return Some(v);
    }
    // Crown: an annular wall at radius ~crater_r, climbing with t.
    let crown_height = surface + 0.35 * t;
    let wall = (r - crater_r).abs() < 0.03 + 0.05 * t;
    if wall && z < crown_height {
        return Some(1.5 + 2.0 * t + (z - surface) * 2.0);
    }
    // Central jet appears mid-run.
    if t > 0.4 {
        let jet_r = 0.05 * (t - 0.4) / 0.6 + 0.02;
        let jet_h = surface + 0.5 * (t - 0.4);
        if r < jet_r && z >= surface && z < jet_h {
            return Some(3.0 + 4.0 * (t - 0.4));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_cell_counts_match_fig1a_shape() {
        let s = DwiSeries::default();
        assert!((3.5e6..6.0e6).contains(&(s.cells_at(1) as f64)));
        assert!((120.0e6..140.0e6).contains(&(s.cells_at(30) as f64)));
        // Monotone growth.
        for i in 1..30 {
            assert!(s.cells_at(i + 1) >= s.cells_at(i));
        }
        // File sizes land in the paper's GiB range at the end.
        assert!(s.bytes_at(30) > 10 << 30);
    }

    #[test]
    fn generated_blocks_grow_over_time() {
        let s = DwiSeries::scaled_down(8);
        let early = s.generated_cells(2);
        let late = s.generated_cells(28);
        assert!(early > 0);
        assert!(
            late > early * 3,
            "growth too weak: {early} -> {late}"
        );
    }

    #[test]
    fn generated_count_tracks_analytic_target() {
        let s = DwiSeries::scaled_down(4);
        for iter in [5, 15, 30] {
            let got = s.generated_cells(iter) as f64;
            let want = s.cells_at(iter) as f64;
            let ratio = got / want;
            assert!(
                (0.2..5.0).contains(&ratio),
                "iter {iter}: generated {got} vs target {want}"
            );
        }
    }

    #[test]
    fn blocks_have_velocity_field_and_valid_structure() {
        let s = DwiSeries::scaled_down(4);
        for b in 0..4 {
            let g = s.generate_block(10, b);
            g.validate().unwrap();
            if g.num_cells() > 0 {
                let v = g.cell_data.get("v02").unwrap();
                assert_eq!(v.len(), g.num_cells());
                let (lo, hi) = v.range().unwrap();
                assert!(lo >= 0.0 && hi < 20.0);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = DwiSeries::scaled_down(4);
        let a = s.generate_block(7, 1);
        let b = s.generate_block(7, 1);
        assert_eq!(a.points, b.points);
        assert_eq!(a.connectivity, b.connectivity);
    }

    #[test]
    fn jet_appears_only_in_late_iterations() {
        assert!(splash_velocity(0.5, 0.5, 0.6, 0.2).is_none());
        assert!(splash_velocity(0.5, 0.5, 0.6, 0.9).is_some());
    }
}
