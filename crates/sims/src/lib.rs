//! # sims — the paper's three data-source applications
//!
//! * [`gray_scott`] — a 3-D Gray–Scott reaction–diffusion solver (the
//!   ADIOS tutorial miniapp): regular grid, fixed data volume per
//!   iteration, halo exchange over `minimpi` exactly the way the original
//!   uses MPI — unchanged by Colza, as §III-D emphasizes.
//! * [`mandelbulb`] — the Mandelbulb miniapp: a power-8 3-D fractal
//!   escape-time field on a z-partitioned grid, stressing contouring with
//!   complex geometry.
//! * [`dwi`] — the Deep Water Impact proxy: a synthetic generator whose
//!   unstructured mesh *grows with the iteration number*, following the
//!   cell-count curve of the paper's Fig. 1a (the real LANL ensemble
//!   dataset is not redistributable; DESIGN.md §2 documents the
//!   substitution).

pub mod dwi;
pub mod gray_scott;
pub mod mandelbulb;
