//! One-shot blocking cells, mirroring `ABT_eventual`.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

struct Inner<T> {
    slot: Mutex<Option<T>>,
    ready: Condvar,
}

/// A one-shot value that tasks can block on.
///
/// Cloning yields another handle to the same cell. Setting twice panics —
/// an eventual is a single-assignment cell, as in Argobots.
pub struct Eventual<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Eventual<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for Eventual<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Eventual<T> {
    /// Creates an empty eventual.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                slot: Mutex::new(None),
                ready: Condvar::new(),
            }),
        }
    }

    /// Stores the value and wakes all waiters.
    ///
    /// # Panics
    /// Panics if the eventual was already set.
    pub fn set(&self, value: T) {
        let mut slot = self.inner.slot.lock();
        assert!(slot.is_none(), "Eventual::set called twice");
        *slot = Some(value);
        self.inner.ready.notify_all();
    }

    /// Blocks until the value is set, then takes it.
    ///
    /// Exactly one waiter obtains the value; use [`Eventual::wait_ref`]-style
    /// cloning of `T` externally if several tasks need it.
    pub fn wait(&self) -> T {
        let mut slot = self.inner.slot.lock();
        loop {
            if let Some(v) = slot.take() {
                return v;
            }
            self.inner.ready.wait(&mut slot);
        }
    }

    /// Non-blocking probe: takes the value if it is already set.
    pub fn test(&self) -> Option<T> {
        self.inner.slot.lock().take()
    }

    /// Whether a value is currently stored (false after it was taken).
    pub fn is_ready(&self) -> bool {
        self.inner.slot.lock().is_some()
    }
}

impl<T: Clone> Eventual<T> {
    /// Blocks until the value is set and returns a clone, leaving the value
    /// in place for other waiters.
    pub fn wait_cloned(&self) -> T {
        let mut slot = self.inner.slot.lock();
        loop {
            if let Some(v) = slot.as_ref() {
                return v.clone();
            }
            self.inner.ready.wait(&mut slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn set_then_wait() {
        let e = Eventual::new();
        e.set(42);
        assert_eq!(e.wait(), 42);
    }

    #[test]
    fn wait_blocks_until_set() {
        let e = Eventual::new();
        let e2 = e.clone();
        let h = thread::spawn(move || e2.wait());
        thread::sleep(Duration::from_millis(20));
        e.set("done");
        assert_eq!(h.join().unwrap(), "done");
    }

    #[test]
    fn test_probe_is_nonblocking() {
        let e: Eventual<u8> = Eventual::new();
        assert_eq!(e.test(), None);
        e.set(1);
        assert!(e.is_ready());
        assert_eq!(e.test(), Some(1));
        assert_eq!(e.test(), None);
    }

    #[test]
    #[should_panic(expected = "set called twice")]
    fn double_set_panics() {
        let e = Eventual::new();
        e.set(1);
        e.set(2);
    }

    #[test]
    fn wait_cloned_leaves_value() {
        let e = Eventual::new();
        e.set(vec![1, 2, 3]);
        assert_eq!(e.wait_cloned(), vec![1, 2, 3]);
        assert_eq!(e.wait_cloned(), vec![1, 2, 3]);
        assert!(e.is_ready());
    }

    #[test]
    fn many_waiters_one_winner() {
        let e: Eventual<u32> = Eventual::new();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let e = e.clone();
            handles.push(thread::spawn(move || e.wait_cloned()));
        }
        e.set(7);
        for h in handles {
            assert_eq!(h.join().unwrap(), 7);
        }
    }
}
