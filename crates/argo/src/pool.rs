//! Pools and execution streams.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::eventual::Eventual;

/// A unit of work posted to a pool.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Wrapper installed around every task execution (used to propagate the
/// simulated-process context onto pool threads).
pub type TaskWrapper = Arc<dyn Fn(Task) + Send + Sync + 'static>;

/// State shared with the worker threads. Deliberately does NOT hold the
/// task sender: the sender lives in [`Pool`] itself, so dropping the pool
/// disconnects the channel and the execution streams exit — pools never
/// leak threads.
struct Shared {
    pending: AtomicUsize,
    shutdown: AtomicBool,
}

/// Builder for [`Pool`].
pub struct PoolBuilder {
    name: String,
    xstreams: usize,
    wrapper: Option<TaskWrapper>,
}

impl PoolBuilder {
    /// Starts building a pool with the given diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            xstreams: 1,
            wrapper: None,
        }
    }

    /// Number of execution streams (worker threads) servicing the pool.
    pub fn xstreams(mut self, n: usize) -> Self {
        assert!(n > 0, "a pool needs at least one execution stream");
        self.xstreams = n;
        self
    }

    /// Installs a wrapper run around every task (ambient-context injection).
    pub fn task_wrapper(mut self, w: TaskWrapper) -> Self {
        self.wrapper = Some(w);
        self
    }

    /// Spawns the execution streams and returns the pool.
    pub fn build(self) -> Pool {
        let (tx, rx) = unbounded::<Task>();
        let shared = Arc::new(Shared {
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..self.xstreams)
            .map(|i| {
                let rx: Receiver<Task> = rx.clone();
                let shared = Arc::clone(&shared);
                let wrapper = self.wrapper.clone();
                std::thread::Builder::new()
                    .name(format!("{}-es{}", self.name, i))
                    .spawn(move || {
                        // Exits when every sender is gone (pool dropped).
                        while let Ok(task) = rx.recv() {
                            match &wrapper {
                                Some(w) => w(task),
                                None => task(),
                            }
                            shared.pending.fetch_sub(1, Ordering::Release);
                        }
                    })
                    .expect("failed to spawn execution stream")
            })
            .collect();
        Pool {
            tx,
            shared,
            workers: parking_lot::Mutex::new(workers),
        }
    }
}

/// A FIFO task pool serviced by dedicated execution streams.
///
/// Dropping the pool lets queued tasks finish and then terminates the
/// streams (the task channel disconnects).
pub struct Pool {
    tx: Sender<Task>,
    shared: Arc<Shared>,
    workers: parking_lot::Mutex<Vec<JoinHandle<()>>>,
}

impl Pool {
    /// A single-stream pool with default settings.
    pub fn new(name: impl Into<String>) -> Self {
        PoolBuilder::new(name).build()
    }

    /// Posts a fire-and-forget task.
    pub fn post(&self, task: impl FnOnce() + Send + 'static) {
        assert!(
            !self.shared.shutdown.load(Ordering::Acquire),
            "post on a shut-down pool"
        );
        self.shared.pending.fetch_add(1, Ordering::Acquire);
        self.tx.send(Box::new(task)).expect("pool channel closed");
    }

    /// Spawns a task and returns an [`Eventual`] for its result.
    pub fn spawn<R: Send + 'static>(
        &self,
        task: impl FnOnce() -> R + Send + 'static,
    ) -> Eventual<R> {
        let ev = Eventual::new();
        let ev2 = ev.clone();
        self.post(move || ev2.set(task()));
        ev
    }

    /// Number of tasks posted but not yet completed.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }

    /// Busy-waits (with yields) until all posted tasks have completed.
    pub fn drain(&self) {
        while self.pending() > 0 {
            std::thread::yield_now();
        }
    }

    /// Stops accepting tasks, finishes queued ones, and joins the
    /// execution streams. Idempotent; also runs on drop (without the
    /// drain, which drop cannot safely do from arbitrary threads).
    pub fn shutdown(&self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return; // already shut down
        }
        self.drain();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // `tx` drops with self: the workers' recv loops end once queued
        // tasks are consumed. Detach rather than join — a worker may be
        // the thread dropping the pool.
        self.workers.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn tasks_run_and_return_values() {
        let pool = Pool::new("t");
        let ev = pool.spawn(|| 6 * 7);
        assert_eq!(ev.wait(), 42);
    }

    #[test]
    fn many_tasks_all_execute() {
        let pool = PoolBuilder::new("t").xstreams(2).build();
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.post(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.drain();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn single_stream_pool_is_fifo() {
        let pool = Pool::new("fifo");
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..20 {
            let order = Arc::clone(&order);
            pool.post(move || order.lock().push(i));
        }
        pool.drain();
        assert_eq!(*order.lock(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn wrapper_runs_around_each_task() {
        let wrapped = Arc::new(AtomicU32::new(0));
        let w2 = Arc::clone(&wrapped);
        let pool = PoolBuilder::new("w")
            .task_wrapper(Arc::new(move |task| {
                w2.fetch_add(1, Ordering::Relaxed);
                task();
            }))
            .build();
        for _ in 0..5 {
            pool.post(|| {});
        }
        pool.drain();
        assert_eq!(wrapped.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn pending_counts_down() {
        let pool = Pool::new("p");
        let ev = pool.spawn(|| {});
        ev.wait();
        pool.drain();
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn blocked_task_does_not_starve_other_streams() {
        // The Argobots property the paper relies on: a task blocking on
        // communication must not prevent other work from running.
        let pool = PoolBuilder::new("b").xstreams(2).build();
        let gate: Eventual<()> = Eventual::new();
        let g2 = gate.clone();
        let blocked = pool.spawn(move || g2.wait());
        let free = pool.spawn(|| 99);
        assert_eq!(free.wait(), 99);
        gate.set(());
        blocked.wait();
    }

    #[test]
    fn dropping_a_pool_terminates_its_streams() {
        // Regression test for the thread leak that OOMed the benches:
        // worker threads must exit once the pool is gone.
        let before = count_threads();
        for _ in 0..50 {
            let pool = PoolBuilder::new("leak").xstreams(2).build();
            pool.post(|| {});
            pool.drain();
            drop(pool);
        }
        // Give the exiting threads a moment to be reaped.
        for _ in 0..200 {
            if count_threads() <= before + 4 {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        panic!(
            "thread leak: {} before, {} after",
            before,
            count_threads()
        );
    }

    fn count_threads() -> usize {
        std::fs::read_dir("/proc/self/task").map(|d| d.count()).unwrap_or(0)
    }
}
