//! # argo — an Argobots-inspired tasking runtime
//!
//! Mochi services run their RPC handlers and background work on Argobots
//! user-level threads grouped into pools serviced by execution streams.
//! This crate reproduces the subset Colza needs:
//!
//! * [`Pool`] — a FIFO work queue serviced by one or more execution
//!   streams (OS threads here; the paper's xstreams map to cores),
//! * [`Eventual`] — Argobots' `ABT_eventual`: a one-shot value a task can
//!   block on,
//! * task spawning returning an eventual for the task's result.
//!
//! The real Argobots advantage cited by the paper — a progress loop that
//! *yields* to other tasks while blocked on communication instead of
//! burning a core — maps here to parked threads: a pool's streams sleep on
//! a condvar whenever no task is runnable, so pipeline execution, control
//! messages, and communication progress interleave freely.
//!
//! Pools accept an optional *task wrapper* so an embedding layer (margo)
//! can install per-task ambient state — in this reproduction, the
//! simulated-process context of the process that owns the pool.

mod eventual;
mod pool;

pub use eventual::Eventual;
pub use pool::{Pool, PoolBuilder, Task, TaskWrapper};
