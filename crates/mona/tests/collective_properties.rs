//! Property tests: MoNA collectives must agree with a sequential oracle
//! for arbitrary communicator sizes, roots, payload sizes and contents.

use mona::{ops, testing::with_comm, MonaConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bcast_equals_root_payload(
        n in 1usize..9,
        root_pick in 0usize..8,
        payload in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let root = root_pick % n;
        let expect = payload.clone();
        let out = with_comm(n, MonaConfig::default(), move |comm| {
            let data = (comm.rank() == root).then(|| payload.clone());
            comm.bcast(data.as_deref(), root).unwrap().to_vec()
        });
        for v in out {
            prop_assert_eq!(&v, &expect);
        }
    }

    #[test]
    fn reduce_xor_equals_oracle(
        n in 1usize..9,
        root_pick in 0usize..8,
        len in 1usize..64,
        seed in any::<u64>(),
    ) {
        let root = root_pick % n;
        // Deterministic per-rank payloads derived from the seed.
        let payload = move |rank: usize| -> Vec<u8> {
            (0..len).map(|i| {
                (seed.wrapping_mul(rank as u64 + 1).wrapping_add(i as u64) >> 3) as u8
            }).collect()
        };
        let p2 = payload;
        let out = with_comm(n, MonaConfig::default(), move |comm| {
            comm.reduce(&payload(comm.rank()), &ops::bxor_u8, root).unwrap()
        });
        let mut oracle = p2(0);
        for r in 1..n {
            for (a, b) in oracle.iter_mut().zip(p2(r)) {
                *a ^= b;
            }
        }
        prop_assert_eq!(out[root].as_ref().unwrap(), &oracle);
        for (r, o) in out.iter().enumerate() {
            if r != root {
                prop_assert!(o.is_none());
            }
        }
    }

    #[test]
    fn allreduce_sum_equals_oracle(n in 1usize..8, len in 1usize..32) {
        let out = with_comm(n, MonaConfig::default(), move |comm| {
            let vals: Vec<u64> = (0..len).map(|i| (comm.rank() * 1000 + i) as u64).collect();
            ops::bytes_to_u64s(&comm.allreduce(&ops::u64s_to_bytes(&vals), &ops::sum_u64).unwrap())
        });
        let oracle: Vec<u64> = (0..len)
            .map(|i| (0..n).map(|r| (r * 1000 + i) as u64).sum())
            .collect();
        for v in out {
            prop_assert_eq!(&v, &oracle);
        }
    }

    #[test]
    fn gather_preserves_rank_order(n in 1usize..8, root_pick in 0usize..8) {
        let root = root_pick % n;
        let out = with_comm(n, MonaConfig::default(), move |comm| {
            comm.gather(&[comm.rank() as u8 + 1], root).unwrap()
        });
        let parts = out[root].as_ref().unwrap();
        for (r, p) in parts.iter().enumerate() {
            prop_assert_eq!(p[0], r as u8 + 1);
        }
    }

    #[test]
    fn allgather_matches_gather_everywhere(n in 1usize..8, width in 1usize..10) {
        let out = with_comm(n, MonaConfig::default(), move |comm| {
            let data = vec![comm.rank() as u8; width * (comm.rank() + 1)];
            comm.allgather(&data).unwrap().iter().map(|p| p.to_vec()).collect::<Vec<_>>()
        });
        for parts in out {
            for (r, p) in parts.iter().enumerate() {
                prop_assert_eq!(p, &vec![r as u8; width * (r + 1)]);
            }
        }
    }

    #[test]
    fn scatter_routes_each_part(n in 1usize..8, root_pick in 0usize..8) {
        let root = root_pick % n;
        let out = with_comm(n, MonaConfig::default(), move |comm| {
            let parts = (comm.rank() == root)
                .then(|| (0..comm.size()).map(|i| vec![(i * 3) as u8; i + 1]).collect::<Vec<_>>());
            comm.scatter(parts.as_deref(), root).unwrap().to_vec()
        });
        for (r, part) in out.iter().enumerate() {
            prop_assert_eq!(part, &vec![(r * 3) as u8; r + 1]);
        }
    }

    #[test]
    fn pooling_does_not_change_results(n in 2usize..6) {
        let run = move |pooling: bool| {
            with_comm(n, MonaConfig { pooling, ..Default::default() }, |comm| {
                let data = ops::u64s_to_bytes(&[comm.rank() as u64 + 7]);
                comm.allreduce(&data, &ops::sum_u64).unwrap()
            })
        };
        prop_assert_eq!(run(true), run(false));
    }
}

/// Dissemination/binomial round count: ⌈log₂ n⌉.
fn ceil_log2(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        n.next_power_of_two().trailing_zeros() as usize
    }
}

fn span_arg(s: &hpcsim::trace::SpanRec, key: &str) -> usize {
    s.args
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or_else(|| panic!("span {} missing arg {key}", s.name))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The trace is a faithful record of the collective algorithms: for a
    /// random communicator size, span counts match the predicted
    /// dissemination (barrier), binomial (bcast/reduce), linear
    /// (gather/scatter) and ring (allgather) schedules exactly, and the
    /// barrier's per-round partners are the dissemination pairs.
    #[test]
    fn trace_spans_match_predicted_collective_schedules(n in 1usize..=64) {
        let cluster = hpcsim::Cluster::default();
        cluster.shared().tracer().set_enabled(true);
        mona::testing::run_ranks(&cluster, n, 8, MonaConfig::default(), move |comm| {
            comm.barrier().unwrap();
            let data = (comm.rank() == 0).then(|| vec![7u8; 16]);
            comm.bcast(data.as_deref(), 0).unwrap();
            comm.reduce(&[comm.rank() as u8; 8], &ops::bxor_u8, 0).unwrap();
            comm.allreduce(&[comm.rank() as u8; 8], &ops::bxor_u8).unwrap();
            comm.gather(&[comm.rank() as u8], 0).unwrap();
            let parts = (comm.rank() == 0)
                .then(|| (0..comm.size()).map(|i| vec![i as u8; 4]).collect::<Vec<_>>());
            comm.scatter(parts.as_deref(), 0).unwrap();
            comm.allgather(&[comm.rank() as u8; 4]).unwrap();
        });
        let snap = cluster.shared().trace_snapshot();
        let count = |name: &str| snap.spans_named(name).count();
        let rounds = ceil_log2(n);
        let edges = n - 1; // edges of one binomial tree / linear fan

        // One collective span per rank per call — exactly one span (and
        // one sequence number) per public collective; allreduce's internal
        // reduce + bcast phases share its span. Barrier skips n == 1.
        prop_assert_eq!(count("mona.coll:barrier"), if n > 1 { n } else { 0 });
        prop_assert_eq!(count("mona.coll:bcast"), n);
        prop_assert_eq!(count("mona.coll:reduce"), n);
        prop_assert_eq!(count("mona.coll:allreduce"), n);
        prop_assert_eq!(count("mona.coll:gather"), n);
        prop_assert_eq!(count("mona.coll:scatter"), n);
        prop_assert_eq!(count("mona.coll:allgather"), n);

        // Rounds: every rank walks ⌈log₂ n⌉ dissemination rounds in the
        // barrier and n−1 ring steps in the allgather.
        prop_assert_eq!(count("mona.coll.round"), n * rounds + n * (n - 1));

        // Point-to-point volume: barrier n·⌈log₂n⌉ per side; the binomial
        // trees and linear fans one message per edge (bcast, reduce, the
        // pair inside allreduce, gather, scatter); the ring n·(n−1).
        let p2p = n * rounds + 6 * edges + n * (n - 1);
        prop_assert_eq!(count("mona.send"), p2p);
        prop_assert_eq!(count("mona.recv"), p2p);

        // Tree-round structure: inside each rank's barrier span, round k
        // must pair with partners rank ± 2^k (mod n), in order.
        for b in snap.spans_named("mona.coll:barrier") {
            let me = span_arg(b, "rank");
            let mut inner: Vec<_> = snap
                .spans
                .iter()
                .filter(|s| {
                    s.pid == b.pid
                        && s.name == "mona.coll.round"
                        && s.depth > b.depth
                        && s.start_ns >= b.start_ns
                        && s.end_ns <= b.end_ns
                })
                .collect();
            inner.sort_by_key(|s| span_arg(s, "round"));
            prop_assert_eq!(inner.len(), rounds);
            for (k, s) in inner.iter().enumerate() {
                prop_assert_eq!(span_arg(s, "round"), k);
                prop_assert_eq!(span_arg(s, "to"), (me + (1 << k)) % n);
                prop_assert_eq!(span_arg(s, "from"), (me + n - (1 << k)) % n);
            }
        }
    }
}

#[test]
fn virtual_time_of_reduce_grows_logarithmically() {
    // Structural sanity of the cost model: doubling the communicator adds
    // roughly one tree level, not double the time.
    let time_for = |n: usize| {
        let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
        let out = mona::testing::run_ranks(&cluster, n, 4, MonaConfig::default(), |comm| {
            let data = vec![1u8; 64];
            let before = hpcsim::current().now();
            for _ in 0..10 {
                comm.allreduce(&data, &ops::bxor_u8).unwrap();
            }
            hpcsim::current().now() - before
        });
        *out.iter().max().unwrap()
    };
    let t4 = time_for(4);
    let t16 = time_for(16);
    assert!(t16 > t4, "more ranks must cost more: {t4} vs {t16}");
    assert!(
        t16 < t4 * 6,
        "tree collectives must scale sublinearly: {t4} vs {t16}"
    );
}

/// Predicted number of wire frames for a `len`-byte payload under `t`.
fn frames_of(t: &mona::CollTuning, len: usize) -> usize {
    t.frames(len).count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Chunked-schedule observability: for payloads above the pipeline
    /// threshold the trace must show the exact chunk counts the frame plan
    /// predicts — per-chunk round spans in the trees, per-frame sends in
    /// the rings — with predictions computed from the public tuning API.
    #[test]
    fn trace_spans_match_predicted_chunked_schedules(n in 2usize..=10) {
        let cfg = MonaConfig::default();
        let tuning = cfg.coll;
        let tree_len = 40 * 1024; // 4 chunks of 12 KiB
        let ag_len = 24 * 1024; // 2 chunks
        let cluster = hpcsim::Cluster::default();
        cluster.shared().tracer().set_enabled(true);
        mona::testing::run_ranks(&cluster, n, 8, cfg, move |comm| {
            let data = (comm.rank() == 0).then(|| vec![3u8; tree_len]);
            comm.bcast(data.as_deref(), 0).unwrap();
            comm.reduce(&vec![comm.rank() as u8; tree_len], &ops::bxor_u8, 0).unwrap();
            comm.allreduce(&vec![comm.rank() as u8; tree_len], &ops::bxor_u8).unwrap();
            comm.allgather(&vec![comm.rank() as u8; ag_len]).unwrap();
        });
        let snap = cluster.shared().trace_snapshot();
        let count = |name: &str| snap.spans_named(name).count();

        let c_tree = frames_of(&tuning, tree_len);
        prop_assert_eq!(c_tree, 4);
        let edges = n - 1;

        // Rabenseifner must be selected for this size at every n here.
        prop_assert!(tuning.use_rabenseifner(tree_len, n));

        // Sends: trees move one frame per chunk per edge; the Rabenseifner
        // rings move the per-block frame plans of each step; the allgather
        // ring moves frames(ag_len) per step per rank.
        let mut rab_sends = 0usize;
        for me in 0..n {
            for s in 1..n {
                let b = mona::reduce_scatter_range(tree_len, n, (me + n - s) % n);
                rab_sends += frames_of(&tuning, b.len()); // reduce-scatter
            }
            for s in 0..n - 1 {
                let b = mona::reduce_scatter_range(tree_len, n, (me + n - s) % n);
                rab_sends += frames_of(&tuning, b.len()); // ring allgather
            }
        }
        let ag_sends = n * (n - 1) * frames_of(&tuning, ag_len);
        let p2p = 2 * edges * c_tree + rab_sends + ag_sends;
        prop_assert_eq!(count("mona.send"), p2p);
        prop_assert_eq!(count("mona.recv"), p2p);

        // Round spans: n·C per pipelined tree (bcast, reduce), one per
        // ring step per rank for both Rabenseifner phases and allgather.
        let rounds = 2 * n * c_tree + 2 * n * (n - 1) + n * (n - 1);
        prop_assert_eq!(count("mona.coll.round"), rounds);

        // Still exactly one collective span per public call per rank.
        prop_assert_eq!(count("mona.coll:bcast"), n);
        prop_assert_eq!(count("mona.coll:reduce"), n);
        prop_assert_eq!(count("mona.coll:allreduce"), n);
        prop_assert_eq!(count("mona.coll:allgather"), n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The size-adaptive algorithms must agree with the naive classic
    /// algorithms (pinned via `MonaConfig::naive_collectives`) for sizes
    /// straddling every switchover point, on non-power-of-two communicators
    /// up to 70 ranks, for exact operators (xor, wrapping u64 sum, u64
    /// min). Floating-point sums are compared only on the tree paths
    /// (reduce/bcast), where the pipelined fold order is bit-identical;
    /// Rabenseifner reassociates float sums by design.
    #[test]
    fn adaptive_algorithms_match_naive_oracle(
        n in prop_oneof![1usize..=9, 63usize..=70],
        len_sel in 0usize..6,
        seed in any::<u64>(),
    ) {
        let t = mona::CollTuning::default();
        // Both sides of the pipeline switchover and the Rabenseifner
        // switchover (which depends on n), all multiples of 8.
        let sizes = [
            512,
            t.pipeline_threshold - 64,
            t.pipeline_threshold,
            40 * 1024,
            (n * t.rabenseifner_block).saturating_sub(64).max(8),
            n * t.rabenseifner_block + 4096,
        ];
        let len = sizes[len_sel];
        let payload = move |rank: usize| -> Vec<u8> {
            (0..len)
                .map(|i| (seed ^ (rank as u64 + 1).wrapping_mul(i as u64 + 0x9E37)) as u8)
                .collect()
        };
        let root = seed as usize % n;
        let run = move |cfg: MonaConfig| {
            with_comm(n, cfg, move |comm| {
                let me = comm.rank();
                let data = payload(me);
                let ar_x = comm.allreduce(&data, &ops::bxor_u8).unwrap().to_vec();
                let ar_s = comm.allreduce(&data, &ops::sum_u64).unwrap().to_vec();
                let ar_m = comm.allreduce(&data, &ops::min_u64).unwrap().to_vec();
                let rd = comm.reduce(&data, &ops::sum_f64, root).unwrap();
                let bc = comm
                    .bcast((me == root).then(|| data.clone()).as_deref(), root)
                    .unwrap()
                    .to_vec();
                let ag = comm
                    .allgather(&data[..len.min(me * 8 + 8)])
                    .unwrap()
                    .iter()
                    .map(|p| p.to_vec())
                    .collect::<Vec<_>>();
                (ar_x, ar_s, ar_m, rd, bc, ag)
            })
        };
        let adaptive = run(MonaConfig::default());
        let naive = run(MonaConfig::naive_collectives());
        prop_assert_eq!(adaptive, naive);
    }
}

#[test]
fn seq_numbering_is_stable_across_algorithm_switch() {
    // The per-rank (operation, seq) history must be identical whether the
    // engine picks naive or adaptive algorithms — composite collectives
    // draw exactly one sequence number either way.
    let history = |cfg: MonaConfig| {
        let cluster = hpcsim::Cluster::default();
        cluster.shared().tracer().set_enabled(true);
        mona::testing::run_ranks(&cluster, 4, 8, cfg, |comm| {
            comm.barrier().unwrap();
            comm.allreduce(&vec![1u8; 32 * 1024], &ops::bxor_u8).unwrap();
            let data = (comm.rank() == 0).then(|| vec![2u8; 20 * 1024]);
            comm.bcast(data.as_deref(), 0).unwrap();
            comm.reduce(&vec![3u8; 16 * 1024], &ops::bxor_u8, 1).unwrap();
            comm.allgather(&[4u8; 64]).unwrap();
            comm.allreduce(&[5u8; 8], &ops::bxor_u8).unwrap();
        });
        let snap = cluster.shared().trace_snapshot();
        let mut colls: Vec<_> = snap
            .spans
            .iter()
            .filter(|s| s.name.starts_with("mona.coll:"))
            .collect();
        colls.sort_by_key(|s| (s.pid, s.start_ns, s.depth));
        colls
            .iter()
            .map(|s| (s.pid, s.name.clone(), span_arg(s, "seq")))
            .collect::<Vec<_>>()
    };
    let adaptive = history(MonaConfig::default());
    let naive = history(MonaConfig::naive_collectives());
    assert_eq!(adaptive, naive);
    // Six collectives per rank, seqs 0..=5 in issue order.
    let rank0: Vec<usize> = adaptive.iter().filter(|(p, _, _)| *p == adaptive[0].0).map(|(_, _, q)| *q).collect();
    assert_eq!(rank0, vec![0, 1, 2, 3, 4, 5]);
}
