//! Property tests: MoNA collectives must agree with a sequential oracle
//! for arbitrary communicator sizes, roots, payload sizes and contents.

use mona::{ops, testing::with_comm, MonaConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bcast_equals_root_payload(
        n in 1usize..9,
        root_pick in 0usize..8,
        payload in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let root = root_pick % n;
        let expect = payload.clone();
        let out = with_comm(n, MonaConfig::default(), move |comm| {
            let data = (comm.rank() == root).then(|| payload.clone());
            comm.bcast(data.as_deref(), root).unwrap().to_vec()
        });
        for v in out {
            prop_assert_eq!(&v, &expect);
        }
    }

    #[test]
    fn reduce_xor_equals_oracle(
        n in 1usize..9,
        root_pick in 0usize..8,
        len in 1usize..64,
        seed in any::<u64>(),
    ) {
        let root = root_pick % n;
        // Deterministic per-rank payloads derived from the seed.
        let payload = move |rank: usize| -> Vec<u8> {
            (0..len).map(|i| {
                (seed.wrapping_mul(rank as u64 + 1).wrapping_add(i as u64) >> 3) as u8
            }).collect()
        };
        let p2 = payload;
        let out = with_comm(n, MonaConfig::default(), move |comm| {
            comm.reduce(&payload(comm.rank()), &ops::bxor_u8, root).unwrap()
        });
        let mut oracle = p2(0);
        for r in 1..n {
            for (a, b) in oracle.iter_mut().zip(p2(r)) {
                *a ^= b;
            }
        }
        prop_assert_eq!(out[root].as_ref().unwrap(), &oracle);
        for (r, o) in out.iter().enumerate() {
            if r != root {
                prop_assert!(o.is_none());
            }
        }
    }

    #[test]
    fn allreduce_sum_equals_oracle(n in 1usize..8, len in 1usize..32) {
        let out = with_comm(n, MonaConfig::default(), move |comm| {
            let vals: Vec<u64> = (0..len).map(|i| (comm.rank() * 1000 + i) as u64).collect();
            ops::bytes_to_u64s(&comm.allreduce(&ops::u64s_to_bytes(&vals), &ops::sum_u64).unwrap())
        });
        let oracle: Vec<u64> = (0..len)
            .map(|i| (0..n).map(|r| (r * 1000 + i) as u64).sum())
            .collect();
        for v in out {
            prop_assert_eq!(&v, &oracle);
        }
    }

    #[test]
    fn gather_preserves_rank_order(n in 1usize..8, root_pick in 0usize..8) {
        let root = root_pick % n;
        let out = with_comm(n, MonaConfig::default(), move |comm| {
            comm.gather(&[comm.rank() as u8 + 1], root).unwrap()
        });
        let parts = out[root].as_ref().unwrap();
        for (r, p) in parts.iter().enumerate() {
            prop_assert_eq!(p[0], r as u8 + 1);
        }
    }

    #[test]
    fn allgather_matches_gather_everywhere(n in 1usize..8, width in 1usize..10) {
        let out = with_comm(n, MonaConfig::default(), move |comm| {
            let data = vec![comm.rank() as u8; width * (comm.rank() + 1)];
            comm.allgather(&data).unwrap().iter().map(|p| p.to_vec()).collect::<Vec<_>>()
        });
        for parts in out {
            for (r, p) in parts.iter().enumerate() {
                prop_assert_eq!(p, &vec![r as u8; width * (r + 1)]);
            }
        }
    }

    #[test]
    fn scatter_routes_each_part(n in 1usize..8, root_pick in 0usize..8) {
        let root = root_pick % n;
        let out = with_comm(n, MonaConfig::default(), move |comm| {
            let parts = (comm.rank() == root)
                .then(|| (0..comm.size()).map(|i| vec![(i * 3) as u8; i + 1]).collect::<Vec<_>>());
            comm.scatter(parts.as_deref(), root).unwrap().to_vec()
        });
        for (r, part) in out.iter().enumerate() {
            prop_assert_eq!(part, &vec![(r * 3) as u8; r + 1]);
        }
    }

    #[test]
    fn pooling_does_not_change_results(n in 2usize..6) {
        let run = move |pooling: bool| {
            with_comm(n, MonaConfig { pooling, ..Default::default() }, |comm| {
                let data = ops::u64s_to_bytes(&[comm.rank() as u64 + 7]);
                comm.allreduce(&data, &ops::sum_u64).unwrap()
            })
        };
        prop_assert_eq!(run(true), run(false));
    }
}

/// Dissemination/binomial round count: ⌈log₂ n⌉.
fn ceil_log2(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        n.next_power_of_two().trailing_zeros() as usize
    }
}

fn span_arg(s: &hpcsim::trace::SpanRec, key: &str) -> usize {
    s.args
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or_else(|| panic!("span {} missing arg {key}", s.name))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The trace is a faithful record of the collective algorithms: for a
    /// random communicator size, span counts match the predicted
    /// dissemination (barrier), binomial (bcast/reduce), linear
    /// (gather/scatter) and ring (allgather) schedules exactly, and the
    /// barrier's per-round partners are the dissemination pairs.
    #[test]
    fn trace_spans_match_predicted_collective_schedules(n in 1usize..=64) {
        let cluster = hpcsim::Cluster::default();
        cluster.shared().tracer().set_enabled(true);
        mona::testing::run_ranks(&cluster, n, 8, MonaConfig::default(), move |comm| {
            comm.barrier().unwrap();
            let data = (comm.rank() == 0).then(|| vec![7u8; 16]);
            comm.bcast(data.as_deref(), 0).unwrap();
            comm.reduce(&[comm.rank() as u8; 8], &ops::bxor_u8, 0).unwrap();
            comm.allreduce(&[comm.rank() as u8; 8], &ops::bxor_u8).unwrap();
            comm.gather(&[comm.rank() as u8], 0).unwrap();
            let parts = (comm.rank() == 0)
                .then(|| (0..comm.size()).map(|i| vec![i as u8; 4]).collect::<Vec<_>>());
            comm.scatter(parts.as_deref(), 0).unwrap();
            comm.allgather(&[comm.rank() as u8; 4]).unwrap();
        });
        let snap = cluster.shared().trace_snapshot();
        let count = |name: &str| snap.spans_named(name).count();
        let rounds = ceil_log2(n);
        let edges = n - 1; // edges of one binomial tree / linear fan

        // One collective span per rank per call; allreduce opens its own
        // span around an inner reduce + bcast; barrier skips n == 1.
        prop_assert_eq!(count("mona.coll:barrier"), if n > 1 { n } else { 0 });
        prop_assert_eq!(count("mona.coll:bcast"), 2 * n);
        prop_assert_eq!(count("mona.coll:reduce"), 2 * n);
        prop_assert_eq!(count("mona.coll:allreduce"), n);
        prop_assert_eq!(count("mona.coll:gather"), n);
        prop_assert_eq!(count("mona.coll:scatter"), n);
        prop_assert_eq!(count("mona.coll:allgather"), n);

        // Rounds: every rank walks ⌈log₂ n⌉ dissemination rounds in the
        // barrier and n−1 ring steps in the allgather.
        prop_assert_eq!(count("mona.coll.round"), n * rounds + n * (n - 1));

        // Point-to-point volume: barrier n·⌈log₂n⌉ per side; the binomial
        // trees and linear fans one message per edge (bcast, reduce, the
        // pair inside allreduce, gather, scatter); the ring n·(n−1).
        let p2p = n * rounds + 6 * edges + n * (n - 1);
        prop_assert_eq!(count("mona.send"), p2p);
        prop_assert_eq!(count("mona.recv"), p2p);

        // Tree-round structure: inside each rank's barrier span, round k
        // must pair with partners rank ± 2^k (mod n), in order.
        for b in snap.spans_named("mona.coll:barrier") {
            let me = span_arg(b, "rank");
            let mut inner: Vec<_> = snap
                .spans
                .iter()
                .filter(|s| {
                    s.pid == b.pid
                        && s.name == "mona.coll.round"
                        && s.depth > b.depth
                        && s.start_ns >= b.start_ns
                        && s.end_ns <= b.end_ns
                })
                .collect();
            inner.sort_by_key(|s| span_arg(s, "round"));
            prop_assert_eq!(inner.len(), rounds);
            for (k, s) in inner.iter().enumerate() {
                prop_assert_eq!(span_arg(s, "round"), k);
                prop_assert_eq!(span_arg(s, "to"), (me + (1 << k)) % n);
                prop_assert_eq!(span_arg(s, "from"), (me + n - (1 << k)) % n);
            }
        }
    }
}

#[test]
fn virtual_time_of_reduce_grows_logarithmically() {
    // Structural sanity of the cost model: doubling the communicator adds
    // roughly one tree level, not double the time.
    let time_for = |n: usize| {
        let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
        let out = mona::testing::run_ranks(&cluster, n, 4, MonaConfig::default(), |comm| {
            let data = vec![1u8; 64];
            let before = hpcsim::current().now();
            for _ in 0..10 {
                comm.allreduce(&data, &ops::bxor_u8).unwrap();
            }
            hpcsim::current().now() - before
        });
        *out.iter().max().unwrap()
    };
    let t4 = time_for(4);
    let t16 = time_for(16);
    assert!(t16 > t4, "more ranks must cost more: {t4} vs {t16}");
    assert!(
        t16 < t4 * 6,
        "tree collectives must scale sublinearly: {t4} vs {t16}"
    );
}
