//! # mona — MoNA, the Mochi Network Adapter for collectives
//!
//! The paper's key enabler: a collective communication library built on NA
//! (not MPI) so that **communicators can be created from a plain address
//! list at any time** — there is no world communicator, which is what makes
//! the staging area elastic.
//!
//! This crate reproduces MoNA's design points:
//!
//! * [`MonaInstance`] — the progress-loop handle (`mona_instance_t`);
//! * [`Communicator`] — built via [`MonaInstance::comm_create`] from a list
//!   of [`na::Address`]es (obtained from SSG in Colza);
//! * point-to-point `send`/`recv`/`isend`/`irecv` with an eager→RDMA
//!   protocol switch at a configurable threshold;
//! * tree-based collectives modeled on MPICH's binomial algorithms:
//!   `barrier`, `bcast`, `reduce`, `allreduce`, `gather`, `allgather`,
//!   `scatter`, `sendrecv`, plus non-blocking counterparts;
//! * request and buffer caching ([`pool::BufferPool`]) — the optimization
//!   that makes MoNA outperform raw NA in the paper's Table I.
//!
//! ## Cost model
//!
//! MoNA pays a small software overhead per operation on top of the NA
//! endpoint costs (its progress loop runs through Argobots). The constants
//! live in [`MonaConfig`] and are calibrated so the Table I/II harnesses
//! reproduce the paper's relative ordering: slower than a vendor MPI,
//! competitive with an open-source MPI, faster than raw NA thanks to
//! buffer pooling (disable with [`MonaConfig::pooling`] for the ablation).

mod comm;
mod coll;
pub mod ops;
pub mod pool;
mod request;
pub mod testing;

pub use coll::reduce_scatter_range;
pub use comm::{
    CollTuning, Communicator, FaultConfig, FramePlan, MonaConfig, MonaInstance, COLL_ALIGN,
};
pub use request::{wait_all, Request};

/// Leading marker of [`MonaError::Revoked`]'s `Display` output. Layers
/// that stringify errors on their way up (the VTK comm adapters, pipeline
/// backends) cannot pattern-match the enum, so they detect a revoked
/// communicator by this prefix instead — the same convention the provider
/// uses for its `"server draining"` refusals.
pub const REVOKED_MARKER: &str = "mona: communicator revoked";

/// Errors surfaced by MoNA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonaError {
    /// A transport-level NA failure (unreachable peer, truncated frame,
    /// closed endpoint, ...).
    Na(na::NaError),
    /// The communicator was revoked: the listed members are known (or
    /// suspected) dead, so the collective cannot complete on this
    /// membership. Recover by building a survivor communicator with
    /// [`Communicator::shrink`] and re-running the operation.
    Revoked {
        /// The revoked communicator's epoch (shrink generation).
        epoch: u64,
        /// Members known dead when the operation aborted.
        dead: Vec<na::Address>,
    },
    /// Received traffic violated a protocol invariant (e.g. an incomplete
    /// gather under injected faults). Not retryable on this communicator.
    Protocol(&'static str),
}

impl From<na::NaError> for MonaError {
    fn from(e: na::NaError) -> Self {
        MonaError::Na(e)
    }
}

impl std::fmt::Display for MonaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MonaError::Na(e) => write!(f, "{e}"),
            MonaError::Revoked { epoch, dead } => {
                write!(f, "{REVOKED_MARKER} (epoch {epoch}; dead: {dead:?})")
            }
            MonaError::Protocol(m) => write!(f, "mona protocol violation: {m}"),
        }
    }
}

impl std::error::Error for MonaError {}

impl MonaError {
    /// Whether this is a revocation (recoverable by shrink + retry).
    pub fn is_revoked(&self) -> bool {
        matches!(self, MonaError::Revoked { .. })
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, MonaError>;

/// A reduction operator over raw element buffers.
///
/// `apply(acc, other)` must fold `other` into `acc` elementwise; both
/// slices always have identical length. Implemented for any matching
/// closure; the [`ops`] module provides the usual typed operators,
/// including the binary-xor used by the paper's Table II and image
/// compositing operators used by IceT.
///
/// **Sub-range contract:** the collective engine may fold *aligned
/// sub-ranges* of the payload (pipeline chunks and Rabenseifner blocks,
/// both cut on [`COLL_ALIGN`]-byte boundaries). An operator must therefore
/// be elementwise with a record width that divides [`COLL_ALIGN`] (64
/// bytes) — true of every operator in [`ops`] — so that any aligned
/// sub-slice is itself a whole number of records.
pub trait ReduceOp: Sync {
    /// Folds `other` into `acc`.
    fn apply(&self, acc: &mut [u8], other: &[u8]);
}

impl<F: Fn(&mut [u8], &[u8]) + Sync> ReduceOp for F {
    fn apply(&self, acc: &mut [u8], other: &[u8]) {
        self(acc, other)
    }
}
