//! Collective operations.
//!
//! The algorithms mirror MPICH's classic implementations, as the paper
//! says MoNA's do: binomial trees for broadcast and reduce, a dissemination
//! barrier, a ring allgather, and linear gather/scatter. Every operation
//! draws a fresh sequence number from the communicator, so concurrent
//! collectives on the same communicator are impossible to confuse as long
//! as all ranks issue them in the same order (the MPI rule).

use std::sync::Arc;

use bytes::Bytes;

use crate::comm::Communicator;
use crate::{ReduceOp, Request, Result};

/// Opcode constants embedded in collective wire tags.
mod opcode {
    pub const BARRIER: u16 = 1;
    pub const BCAST: u16 = 2;
    pub const REDUCE: u16 = 3;
    pub const GATHER: u16 = 4;
    pub const ALLGATHER: u16 = 5;
    pub const SCATTER: u16 = 6;
}

impl Communicator {
    /// Opens a collective-level trace span tagged with the operation name,
    /// sequence number, communicator size and calling rank.
    fn coll_span(&self, op: &'static str, seq: u64) -> hpcsim::trace::SpanGuard {
        let mut sp = hpcsim::trace::span("mona", format!("mona.coll:{op}"));
        if sp.active() {
            sp.arg("seq", seq);
            sp.arg("size", self.size());
            sp.arg("rank", self.rank());
        }
        sp
    }

    /// Dissemination barrier: log₂(n) rounds of paired messages.
    pub fn barrier(&self) -> Result<()> {
        let n = self.size();
        if n <= 1 {
            return Ok(());
        }
        let seq = self.next_seq();
        let _sp = self.coll_span("barrier", seq);
        let me = self.rank();
        let mut step = 1usize;
        let mut round: u16 = 0;
        while step < n {
            let to = (me + step) % n;
            let from = (me + n - step) % n;
            let tag = self.coll_tag(seq, opcode::BARRIER + (round << 4));
            let mut rsp = hpcsim::trace::span("mona", "mona.coll.round");
            if rsp.active() {
                rsp.arg("round", round);
                rsp.arg("to", to);
                rsp.arg("from", from);
            }
            self.raw_send(to, tag, &[])?;
            self.raw_recv(Some(from), tag)?;
            drop(rsp);
            step <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Binomial-tree broadcast. The root passes the payload; every rank
    /// returns the broadcast bytes.
    pub fn bcast(&self, data: Option<&[u8]>, root: usize) -> Result<Bytes> {
        let n = self.size();
        let me = self.rank();
        if me == root {
            assert!(data.is_some(), "root must supply the broadcast payload");
        }
        let seq = self.next_seq();
        let _sp = self.coll_span("bcast", seq);
        let tag = self.coll_tag(seq, opcode::BCAST);
        let relative = (me + n - root) % n;
        let mut buf: Option<Bytes> = data.map(Bytes::copy_from_slice);

        // Phase 1: receive from the parent (non-roots only).
        let mut mask = 1usize;
        while mask < n {
            if relative & mask != 0 {
                let src = (relative - mask + root) % n;
                let (got, _) = self.raw_recv(Some(src), tag)?;
                buf = Some(got);
                break;
            }
            mask <<= 1;
        }
        // Phase 2: forward to children.
        mask >>= 1;
        let payload = buf.expect("bcast payload present after receive phase");
        while mask > 0 {
            if relative + mask < n {
                let dst = (relative + mask + root) % n;
                self.raw_send(dst, tag, &payload)?;
            }
            mask >>= 1;
        }
        Ok(payload)
    }

    /// Binomial-tree reduce with a commutative operator. Returns the
    /// reduction at the root, `None` elsewhere.
    pub fn reduce(&self, data: &[u8], op: &dyn ReduceOp, root: usize) -> Result<Option<Vec<u8>>> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let _sp = self.coll_span("reduce", seq);
        let tag = self.coll_tag(seq, opcode::REDUCE);
        let relative = (me + n - root) % n;

        let mut acc = self.inst.buffers.take(data.len());
        acc.extend_from_slice(data);

        let mut mask = 1usize;
        loop {
            if mask >= n {
                break; // only the root exits here
            }
            if relative & mask == 0 {
                let child_rel = relative | mask;
                if child_rel < n {
                    let src = (child_rel + root) % n;
                    let (got, _) = self.raw_recv(Some(src), tag)?;
                    op.apply(&mut acc, &got);
                }
            } else {
                let parent_rel = relative & !mask;
                let dst = (parent_rel + root) % n;
                self.raw_send(dst, tag, &acc)?;
                self.inst.buffers.put(acc);
                return Ok(None);
            }
            mask <<= 1;
        }
        Ok(Some(std::mem::take(&mut acc)))
    }

    /// Reduce-then-broadcast allreduce; every rank returns the reduction.
    pub fn allreduce(&self, data: &[u8], op: &dyn ReduceOp) -> Result<Vec<u8>> {
        let _sp = self.coll_span("allreduce", self.next_seq());
        let reduced = self.reduce(data, op, 0)?;
        let out = self.bcast(reduced.as_deref(), 0)?;
        Ok(out.to_vec())
    }

    /// Linear gather to the root. Payload sizes may differ per rank
    /// (gatherv semantics). The root receives `Some(parts)` in rank order.
    pub fn gather(&self, data: &[u8], root: usize) -> Result<Option<Vec<Bytes>>> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let _sp = self.coll_span("gather", seq);
        let tag = self.coll_tag(seq, opcode::GATHER);
        if me == root {
            let mut parts: Vec<Option<Bytes>> = vec![None; n];
            parts[me] = Some(Bytes::copy_from_slice(data));
            for _ in 0..n - 1 {
                let (got, src) = self.raw_recv(None, tag)?;
                parts[src] = Some(got);
            }
            Ok(Some(parts.into_iter().map(|p| p.expect("all ranks sent")).collect()))
        } else {
            self.raw_send(root, tag, data)?;
            Ok(None)
        }
    }

    /// Ring allgather: n−1 steps, each forwarding the block received in
    /// the previous step. Handles per-rank size differences.
    pub fn allgather(&self, data: &[u8]) -> Result<Vec<Bytes>> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let _sp = self.coll_span("allgather", seq);
        let mut parts: Vec<Option<Bytes>> = vec![None; n];
        parts[me] = Some(Bytes::copy_from_slice(data));
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let mut carry: Bytes = parts[me].clone().expect("own part set");
        for step in 0..n.saturating_sub(1) {
            let tag = self.coll_tag(seq, opcode::ALLGATHER + ((step as u16 & 0x3F) << 4));
            let mut rsp = hpcsim::trace::span("mona", "mona.coll.round");
            if rsp.active() {
                rsp.arg("round", step);
                rsp.arg("to", right);
                rsp.arg("from", left);
            }
            // Deadlock-safe pairwise exchange around the ring.
            let req = self.instance_isend_raw(carry.to_vec(), right, tag);
            let (got, _) = self.raw_recv(Some(left), tag)?;
            req.wait()?;
            drop(rsp);
            let origin = (me + n - 1 - step) % n;
            parts[origin] = Some(got.clone());
            carry = got;
        }
        Ok(parts.into_iter().map(|p| p.expect("ring complete")).collect())
    }

    /// Linear scatter from the root: rank `i` receives `parts[i]`.
    pub fn scatter(&self, parts: Option<&[Vec<u8>]>, root: usize) -> Result<Bytes> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let _sp = self.coll_span("scatter", seq);
        let tag = self.coll_tag(seq, opcode::SCATTER);
        if me == root {
            let parts = parts.expect("root must supply scatter parts");
            assert_eq!(parts.len(), n, "scatter needs one part per rank");
            for (dst, part) in parts.iter().enumerate() {
                if dst != me {
                    self.raw_send(dst, tag, part)?;
                }
            }
            Ok(Bytes::copy_from_slice(&parts[me]))
        } else {
            let (got, _) = self.raw_recv(Some(root), tag)?;
            Ok(got)
        }
    }

    /// Non-blocking broadcast.
    pub fn ibcast(&self, data: Option<Vec<u8>>, root: usize) -> Request {
        let this = self.clone();
        Request::pending(self.instance().task_pool().spawn(move || {
            this.bcast(data.as_deref(), root).map(Some)
        }))
    }

    /// Non-blocking reduce (operator must be shareable).
    pub fn ireduce(
        &self,
        data: Vec<u8>,
        op: Arc<dyn ReduceOp + Send + Sync>,
        root: usize,
    ) -> Request {
        let this = self.clone();
        Request::pending(self.instance().task_pool().spawn(move || {
            this.reduce(&data, op.as_ref(), root)
                .map(|o| o.map(Bytes::from))
        }))
    }

    /// Non-blocking barrier.
    pub fn ibarrier(&self) -> Request {
        let this = self.clone();
        Request::pending(
            self.instance()
                .task_pool()
                .spawn(move || this.barrier().map(|()| None)),
        )
    }

    /// Internal raw isend used by the ring allgather (collective tags).
    fn instance_isend_raw(&self, data: Vec<u8>, dst: usize, wire_tag: u64) -> Request {
        if data.len() < self.instance().config().rdma_threshold {
            Request::ready(self.raw_send(dst, wire_tag, &data).map(|()| None))
        } else {
            let this = self.clone();
            Request::pending(
                self.instance()
                    .task_pool()
                    .spawn(move || this.raw_send(dst, wire_tag, &data).map(|()| None)),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::tests::with_comm;
    use crate::comm::MonaConfig;
    use crate::ops;

    #[test]
    fn bcast_from_every_root() {
        for root in 0..4 {
            let out = with_comm(4, MonaConfig::default(), move |comm| {
                let data = if comm.rank() == root {
                    Some(vec![root as u8, 42])
                } else {
                    None
                };
                comm.bcast(data.as_deref(), root).unwrap().to_vec()
            });
            assert!(out.iter().all(|v| v == &vec![root as u8, 42]), "root {root}");
        }
    }

    #[test]
    fn bcast_large_payload_uses_rdma_path() {
        let payload = vec![0xAB; 100 * 1024];
        let expect = payload.clone();
        let out = with_comm(5, MonaConfig::default(), move |comm| {
            let data = (comm.rank() == 0).then(|| payload.clone());
            comm.bcast(data.as_deref(), 0).unwrap().len()
        });
        assert!(out.iter().all(|&l| l == expect.len()));
    }

    #[test]
    fn reduce_xor_matches_oracle() {
        let out = with_comm(7, MonaConfig::default(), |comm| {
            let data = vec![comm.rank() as u8 + 1; 16];
            comm.reduce(&data, &ops::bxor_u8, 0).unwrap()
        });
        let expect = (1..=7u8).fold(0, |a, b| a ^ b);
        assert_eq!(out[0].as_ref().unwrap(), &vec![expect; 16]);
        assert!(out[1..].iter().all(|o| o.is_none()));
    }

    #[test]
    fn reduce_to_nonzero_root() {
        let out = with_comm(5, MonaConfig::default(), |comm| {
            let data = ops::u64s_to_bytes(&[comm.rank() as u64]);
            comm.reduce(&data, &ops::sum_u64, 3).unwrap()
        });
        assert_eq!(ops::bytes_to_u64s(out[3].as_ref().unwrap()), vec![10]);
    }

    #[test]
    fn allreduce_sums_everywhere() {
        let out = with_comm(6, MonaConfig::default(), |comm| {
            let data = ops::f64s_to_bytes(&[comm.rank() as f64, 1.0]);
            ops::bytes_to_f64s(&comm.allreduce(&data, &ops::sum_f64).unwrap())
        });
        for v in out {
            assert_eq!(v, vec![15.0, 6.0]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order_with_varied_sizes() {
        let out = with_comm(4, MonaConfig::default(), |comm| {
            let data = vec![comm.rank() as u8; comm.rank() + 1];
            comm.gather(&data, 2)
                .unwrap()
                .map(|parts| parts.iter().map(|p| p.to_vec()).collect::<Vec<_>>())
        });
        let gathered = out[2].as_ref().unwrap();
        assert_eq!(gathered.len(), 4);
        for (rank, part) in gathered.iter().enumerate() {
            assert_eq!(part, &vec![rank as u8; rank + 1]);
        }
        assert!(out[0].is_none() && out[1].is_none() && out[3].is_none());
    }

    #[test]
    fn allgather_ring_delivers_all_parts() {
        let out = with_comm(5, MonaConfig::default(), |comm| {
            let data = vec![comm.rank() as u8 * 10; 3];
            comm.allgather(&data)
                .unwrap()
                .iter()
                .map(|p| p.to_vec())
                .collect::<Vec<_>>()
        });
        for parts in out {
            for (rank, part) in parts.iter().enumerate() {
                assert_eq!(part, &vec![rank as u8 * 10; 3]);
            }
        }
    }

    #[test]
    fn scatter_delivers_rank_parts() {
        let out = with_comm(4, MonaConfig::default(), |comm| {
            let parts = (comm.rank() == 1)
                .then(|| (0..4).map(|i| vec![i as u8; 2]).collect::<Vec<_>>());
            comm.scatter(parts.as_deref(), 1).unwrap().to_vec()
        });
        for (rank, part) in out.iter().enumerate() {
            assert_eq!(part, &vec![rank as u8; 2]);
        }
    }

    #[test]
    fn barrier_completes_at_many_sizes() {
        for n in [1, 2, 3, 5, 8] {
            let out = with_comm(n, MonaConfig::default(), |comm| {
                for _ in 0..3 {
                    comm.barrier().unwrap();
                }
                true
            });
            assert!(out.into_iter().all(|b| b), "n={n}");
        }
    }

    #[test]
    fn barrier_actually_synchronizes_virtual_time() {
        // After a barrier, every rank's virtual clock must be >= the
        // pre-barrier maximum across ranks (information flowed from all).
        let out = with_comm(4, MonaConfig::default(), |comm| {
            hpcsim::current().advance(1_000 * (comm.rank() as u64 + 1));
            let before_max = 4_000;
            comm.barrier().unwrap();
            hpcsim::current().now() >= before_max
        });
        assert!(out.into_iter().all(|b| b));
    }

    #[test]
    fn nonblocking_collectives_complete() {
        let out = with_comm(4, MonaConfig::default(), |comm| {
            let b = comm.ibarrier();
            b.wait().unwrap();
            let data = (comm.rank() == 0).then(|| vec![5u8; 8]);
            let r = comm.ibcast(data, 0);
            let got = r.wait().unwrap().unwrap();
            got.len()
        });
        assert!(out.into_iter().all(|l| l == 8));
    }

    #[test]
    fn consecutive_collectives_do_not_cross_talk() {
        let out = with_comm(3, MonaConfig::default(), |comm| {
            let mut results = Vec::new();
            for i in 0..10u8 {
                let data = (comm.rank() == (i as usize) % 3).then(|| vec![i; 4]);
                let got = comm.bcast(data.as_deref(), (i as usize) % 3).unwrap();
                results.push(got[0]);
            }
            results
        });
        for r in out {
            assert_eq!(r, (0..10).collect::<Vec<u8>>());
        }
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let out = with_comm(1, MonaConfig::default(), |comm| {
            comm.barrier().unwrap();
            let b = comm.bcast(Some(&[1, 2]), 0).unwrap().to_vec();
            let r = comm.reduce(&[3, 4], &ops::bxor_u8, 0).unwrap().unwrap();
            let g = comm.gather(&[5], 0).unwrap().unwrap();
            (b, r, g[0].to_vec())
        });
        assert_eq!(out[0], (vec![1, 2], vec![3, 4], vec![5]));
    }
}
