//! Collective operations: the size-adaptive collective engine.
//!
//! Small payloads use MPICH's classic algorithms, as the paper says MoNA's
//! do: binomial trees for broadcast and reduce, a dissemination barrier, a
//! ring allgather, and linear gather/scatter. Above the thresholds in
//! [`crate::comm::CollTuning`] the engine switches to bandwidth-frugal
//! large-message algorithms:
//!
//! * **Chunked pipelining** — payloads at or above `pipeline_threshold`
//!   are segmented into `pipeline_chunk`-byte frames so an intermediate
//!   tree rank forwards chunk *k* while chunk *k+1* is still in flight
//!   (the chunks ride the non-blocking eager path), overlapping link time
//!   across tree levels in bcast and reduce.
//! * **Rabenseifner allreduce** — once the per-rank block `len / n`
//!   reaches `rabenseifner_block`, allreduce runs a ring reduce-scatter
//!   followed by a ring allgather, moving `2·len·(n−1)/n` bytes per rank
//!   instead of the tree's `len·log₂(n)`.
//!
//! Chunk schedules are deterministic functions of the payload size and the
//! tuning alone ([`crate::comm::CollTuning::frames`]) — never of wall-clock
//! state — so same-seed runs produce byte-identical traces.
//!
//! # Sequence-number discipline
//!
//! Every *public* collective draws exactly **one** sequence number from the
//! communicator and opens exactly one `mona.coll:*` span. Composite
//! operations (allreduce = reduce phase + bcast phase, or reduce-scatter +
//! allgather phases under Rabenseifner) share that single sequence number
//! across their phases, disambiguated by the opcode and round fields of the
//! wire tag — they never draw extra sequence numbers, so seq numbering is
//! stable regardless of which algorithm the selection table picks.
//! Concurrent collectives on the same communicator are impossible to
//! confuse as long as all ranks issue them in the same order (the MPI
//! rule). Sequence numbers wrap at 128 (the tag field width); this is safe
//! because collectives are issued in order and the NA mailbox is FIFO per
//! (source, tag).

use std::ops::Range;
use std::sync::Arc;

use bytes::Bytes;

use na::NaError;

use crate::comm::{Communicator, Payload, COLL_ALIGN};
use crate::{MonaError, ReduceOp, Request, Result};

/// Opcode constants embedded in collective wire tags (5-bit field).
pub(crate) mod opcode {
    pub const BARRIER: u16 = 1;
    pub const BCAST: u16 = 2;
    pub const REDUCE: u16 = 3;
    pub const GATHER: u16 = 4;
    pub const ALLGATHER: u16 = 5;
    pub const SCATTER: u16 = 6;
    pub const REDUCE_SCATTER: u16 = 7;
    /// Revoke notices: the control channel the fault-tolerance layer uses
    /// to propagate an abort across a communicator (DESIGN.md §12).
    pub const REVOKE: u16 = 8;
}

/// The contiguous byte range rank `rank` owns after a reduce-scatter over a
/// `len`-byte payload on `n` ranks. Blocks start on [`COLL_ALIGN`]
/// boundaries (so elementwise operators whose record width divides 64 can
/// fold sub-ranges); trailing blocks may be short or empty when the payload
/// does not split evenly.
pub fn reduce_scatter_range(len: usize, n: usize, rank: usize) -> Range<usize> {
    let step = len.div_ceil(n).div_ceil(COLL_ALIGN) * COLL_ALIGN;
    let start = (rank * step).min(len);
    let end = rank
        .checked_add(1)
        .and_then(|r| r.checked_mul(step))
        .map_or(len, |e| e.min(len));
    start..end
}

/// Checks a received chunk against the length the frame plan promised —
/// an injected fault (truncation, cross-talk) must surface as a typed
/// protocol error before the chunk reaches `ReduceOp::apply` or a
/// `copy_from_slice`, both of which panic on length mismatch.
fn check_chunk_len(got: usize, want: usize) -> Result<()> {
    if got == want {
        Ok(())
    } else {
        Err(MonaError::Protocol("collective chunk length mismatch"))
    }
}

/// Unwraps a gathered/ring part list, surfacing a typed protocol error
/// (instead of the old `expect` panic) if any slot is unfilled — which can
/// only happen when injected faults deliver a duplicate source.
fn collect_parts(parts: Vec<Option<Bytes>>, msg: &'static str) -> Result<Vec<Bytes>> {
    parts
        .into_iter()
        .map(|p| p.ok_or(MonaError::Protocol(msg)))
        .collect()
}

/// Reads the u64 little-endian total-length prefix off a framed payload.
fn frame_len_prefix(frame: &Bytes) -> Result<usize> {
    match frame.get(..8) {
        Some(s) => Ok(u64::from_le_bytes(s.try_into().expect("slice is 8 bytes")) as usize),
        None => Err(NaError::ShortFrame {
            need: 8,
            have: frame.len(),
        }
        .into()),
    }
}

impl Communicator {
    /// Opens a collective-level trace span tagged with the operation name,
    /// sequence number, communicator size and calling rank.
    fn coll_span(&self, op: &'static str, seq: u64) -> hpcsim::trace::SpanGuard {
        let mut sp = hpcsim::trace::span("mona", format!("mona.coll:{op}"));
        if sp.active() {
            sp.arg("seq", seq);
            sp.arg("size", self.size());
            sp.arg("rank", self.rank());
        }
        sp
    }

    /// A per-chunk round span for pipelined tree collectives (only emitted
    /// when a payload is actually segmented, so single-frame schedules keep
    /// their historical span counts).
    fn chunk_span(&self, round: usize) -> hpcsim::trace::SpanGuard {
        let mut rsp = hpcsim::trace::span("mona", "mona.coll.round");
        if rsp.active() {
            rsp.arg("round", round);
        }
        rsp
    }

    /// Dissemination barrier: log₂(n) rounds of paired messages.
    pub fn barrier(&self) -> Result<()> {
        let n = self.size();
        if n <= 1 {
            return Ok(());
        }
        let seq = self.next_seq();
        let _sp = self.coll_span("barrier", seq);
        let me = self.rank();
        let mut step = 1usize;
        let mut round: u32 = 0;
        while step < n {
            let to = (me + step) % n;
            let from = (me + n - step) % n;
            let tag = self.coll_tag(seq, opcode::BARRIER, round);
            let mut rsp = hpcsim::trace::span("mona", "mona.coll.round");
            if rsp.active() {
                rsp.arg("round", round);
                rsp.arg("to", to);
                rsp.arg("from", from);
            }
            self.raw_send(to, tag, &[])?;
            self.raw_recv(Some(from), tag)?;
            drop(rsp);
            step <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Binomial-tree broadcast (pipelined above the chunking threshold).
    /// The root passes the payload; every rank returns the broadcast bytes.
    pub fn bcast(&self, data: Option<&[u8]>, root: usize) -> Result<Bytes> {
        self.bcast_owned(data.map(Bytes::copy_from_slice), root)
    }

    /// [`bcast`](Self::bcast) without the root-side copy: the root hands
    /// over an owned buffer which is sliced (not copied) into wire frames
    /// and returned as the result.
    pub fn bcast_owned(&self, data: Option<Bytes>, root: usize) -> Result<Bytes> {
        if self.rank() == root {
            assert!(data.is_some(), "root must supply the broadcast payload");
        }
        let seq = self.next_seq();
        let _sp = self.coll_span("bcast", seq);
        if self.size() <= 1 {
            return Ok(data.expect("single-rank bcast payload"));
        }
        // Standalone bcast receivers cannot know the payload length, so
        // frame 0 carries a length prefix.
        self.bcast_phase(seq, data, root, None)
    }

    /// The broadcast dataflow under an externally supplied sequence number.
    /// `known_len` elides the frame-0 length prefix when every rank already
    /// knows the payload size (the allreduce bcast phase).
    fn bcast_phase(
        &self,
        seq: u64,
        data: Option<Bytes>,
        root: usize,
        known_len: Option<usize>,
    ) -> Result<Bytes> {
        let n = self.size();
        let me = self.rank();
        if n <= 1 {
            return Ok(data.expect("bcast payload present"));
        }
        let relative = (me + n - root) % n;
        let tuning = self.instance().config().coll;

        // Tree structure: parent via the ascending-mask scan, children the
        // descending masks below it — identical to the classic shape, so a
        // single-frame schedule reproduces the old message sequence.
        let mut mask = 1usize;
        let mut parent: Option<usize> = None;
        while mask < n {
            if relative & mask != 0 {
                parent = Some((relative - mask + root) % n);
                break;
            }
            mask <<= 1;
        }
        let mut children = Vec::new();
        let mut m = mask >> 1;
        while m > 0 {
            if relative + m < n {
                children.push((relative + m + root) % n);
            }
            m >>= 1;
        }

        let prefixed = known_len.is_none();
        match parent {
            None => {
                let payload = data.expect("root bcast payload");
                let len = payload.len();
                let plan = tuning.frames(len);
                for k in 0..plan.count {
                    let rsp = (plan.count > 1).then(|| self.chunk_span(k));
                    let tag = self.coll_tag(seq, opcode::BCAST, k as u32);
                    let r = plan.range(k, len);
                    for &dst in &children {
                        self.send_bcast_frame(dst, tag, k, prefixed, len, payload.slice(r.clone()))?;
                    }
                    drop(rsp);
                }
                Ok(payload)
            }
            Some(parent) => {
                let tag0 = self.coll_tag(seq, opcode::BCAST, 0);
                let (frame0, _) = self.raw_recv(Some(parent), tag0)?;
                let (len, chunk0) = match known_len {
                    Some(l) => (l, frame0),
                    None => (frame_len_prefix(&frame0)?, frame0.slice(8..)),
                };
                let plan = tuning.frames(len);
                if plan.count == 1 {
                    // Fast path: forward the single frame and hand the
                    // received buffer straight back (zero-copy).
                    for &dst in &children {
                        self.send_bcast_frame(dst, tag0, 0, prefixed, len, chunk0.clone())?;
                    }
                    return Ok(chunk0);
                }
                let mut out = self.inst.buffers.take(len);
                {
                    let _rsp = self.chunk_span(0);
                    for &dst in &children {
                        self.send_bcast_frame(dst, tag0, 0, prefixed, len, chunk0.clone())?;
                    }
                    out.extend_from_slice(&chunk0);
                }
                for k in 1..plan.count {
                    let _rsp = self.chunk_span(k);
                    let tag = self.coll_tag(seq, opcode::BCAST, k as u32);
                    let (chunk, _) = self.raw_recv(Some(parent), tag)?;
                    for &dst in &children {
                        self.raw_send_owned(dst, tag, chunk.clone())?;
                    }
                    out.extend_from_slice(&chunk);
                }
                check_chunk_len(out.len(), len)?;
                Ok(Bytes::from(out))
            }
        }
    }

    fn send_bcast_frame(
        &self,
        dst: usize,
        tag: u64,
        k: usize,
        prefixed: bool,
        len: usize,
        chunk: Bytes,
    ) -> Result<()> {
        if k == 0 && prefixed {
            let prefix = (len as u64).to_le_bytes();
            self.raw_send_prefixed(dst, tag, &prefix, Payload::Owned(chunk))
        } else {
            self.raw_send_owned(dst, tag, chunk)
        }
    }

    /// Binomial-tree reduce with a commutative operator (pipelined above
    /// the chunking threshold; the per-chunk fold order matches the
    /// whole-message fold order, so results are bit-identical either way).
    /// Returns the reduction at the root, `None` elsewhere.
    pub fn reduce(&self, data: &[u8], op: &dyn ReduceOp, root: usize) -> Result<Option<Vec<u8>>> {
        let seq = self.next_seq();
        let _sp = self.coll_span("reduce", seq);
        self.reduce_phase(seq, data, op, root)
    }

    /// The reduce dataflow under an externally supplied sequence number.
    fn reduce_phase(
        &self,
        seq: u64,
        data: &[u8],
        op: &dyn ReduceOp,
        root: usize,
    ) -> Result<Option<Vec<u8>>> {
        let n = self.size();
        let me = self.rank();
        let relative = (me + n - root) % n;

        // Tree structure: children in ascending-mask order (the fold
        // order), then the parent — the classic interleave.
        let mut children = Vec::new();
        let mut parent: Option<usize> = None;
        let mut mask = 1usize;
        while mask < n {
            if relative & mask == 0 {
                let child_rel = relative | mask;
                if child_rel < n {
                    children.push((child_rel + root) % n);
                }
            } else {
                parent = Some(((relative & !mask) + root) % n);
                break;
            }
            mask <<= 1;
        }

        let len = data.len();
        let plan = self.instance().config().coll.frames(len);
        let mut acc = self.inst.buffers.take_copy(data);
        for k in 0..plan.count {
            let rsp = (plan.count > 1).then(|| self.chunk_span(k));
            let tag = self.coll_tag(seq, opcode::REDUCE, k as u32);
            let r = plan.range(k, len);
            for &child in &children {
                let (got, _) = self.raw_recv(Some(child), tag)?;
                check_chunk_len(got.len(), r.len())?;
                op.apply(&mut acc[r.clone()], &got);
            }
            if let Some(p) = parent {
                self.raw_send(p, tag, &acc[r.clone()])?;
            }
            drop(rsp);
        }
        if parent.is_some() {
            self.inst.buffers.put(acc);
            Ok(None)
        } else {
            Ok(Some(acc))
        }
    }

    /// Allreduce; every rank returns the reduction. Draws a single
    /// sequence number and selects reduce+bcast (small), pipelined
    /// reduce+bcast (large), or Rabenseifner reduce-scatter + ring
    /// allgather (large with big-enough per-rank blocks). Note the
    /// Rabenseifner path folds in ring order, which reassociates
    /// floating-point sums relative to the tree (ulp-level differences).
    pub fn allreduce(&self, data: &[u8], op: &dyn ReduceOp) -> Result<Bytes> {
        let n = self.size();
        let seq = self.next_seq();
        let _sp = self.coll_span("allreduce", seq);
        if n <= 1 {
            return Ok(Bytes::copy_from_slice(data));
        }
        if self.instance().config().coll.use_rabenseifner(data.len(), n) {
            self.allreduce_rabenseifner(seq, data, op)
        } else {
            let reduced = self.reduce_phase(seq, data, op, 0)?;
            self.bcast_phase(seq, reduced.map(Bytes::from), 0, Some(data.len()))
        }
    }

    /// Ring reduce-scatter: every rank returns the fully reduced block
    /// [`reduce_scatter_range`]`(len, n, rank)` of the elementwise
    /// reduction (empty for ranks past the end of a short payload).
    pub fn reduce_scatter(&self, data: &[u8], op: &dyn ReduceOp) -> Result<Bytes> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let _sp = self.coll_span("reduce_scatter", seq);
        if n <= 1 {
            return Ok(Bytes::copy_from_slice(data));
        }
        let len = data.len();
        let acc = self.rs_phase(seq, data, op)?;
        Ok(Bytes::from(acc).slice(reduce_scatter_range(len, n, me)))
    }

    /// The ring reduce-scatter rounds: after n−1 steps rank `me` holds the
    /// fully reduced block `me` inside the returned accumulator. Step `s`
    /// sends block `(me+n−s) mod n` right and folds block `(me+n−s−1) mod n`
    /// arriving from the left.
    fn rs_phase(&self, seq: u64, data: &[u8], op: &dyn ReduceOp) -> Result<Vec<u8>> {
        let n = self.size();
        let me = self.rank();
        let len = data.len();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let tuning = self.instance().config().coll;
        let mut acc = self.inst.buffers.take_copy(data);
        for s in 1..n {
            let send_b = (me + n - s) % n;
            let recv_b = (me + n - s - 1) % n;
            let tag = self.coll_tag(seq, opcode::REDUCE_SCATTER, (s - 1) as u32);
            let mut rsp = hpcsim::trace::span("mona", "mona.coll.round");
            if rsp.active() {
                rsp.arg("round", s - 1);
                rsp.arg("to", right);
                rsp.arg("from", left);
            }
            let sr = reduce_scatter_range(len, n, send_b);
            let rr = reduce_scatter_range(len, n, recv_b);
            let req = self.ring_send_slice(right, tag, &acc[sr])?;
            let rplan = tuning.frames(rr.len());
            for j in 0..rplan.count {
                let (chunk, _) = self.raw_recv(Some(left), tag)?;
                let sub = rplan.range(j, rr.len());
                check_chunk_len(chunk.len(), sub.len())?;
                op.apply(&mut acc[rr.start + sub.start..rr.start + sub.end], &chunk);
            }
            if let Some(req) = req {
                req.wait()?;
            }
            drop(rsp);
        }
        Ok(acc)
    }

    /// Rabenseifner allreduce: ring reduce-scatter, then a ring allgather
    /// of the reduced blocks.
    fn allreduce_rabenseifner(&self, seq: u64, data: &[u8], op: &dyn ReduceOp) -> Result<Bytes> {
        let n = self.size();
        let me = self.rank();
        let len = data.len();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let tuning = self.instance().config().coll;
        let acc = self.rs_phase(seq, data, op)?;
        let mut out = self.inst.buffers.take(len);
        out.resize(len, 0);
        let own = reduce_scatter_range(len, n, me);
        out[own.clone()].copy_from_slice(&acc[own]);
        self.inst.buffers.put(acc);
        for s in 0..n - 1 {
            let send_b = (me + n - s) % n;
            let recv_b = (me + n - s - 1) % n;
            let tag = self.coll_tag(seq, opcode::ALLGATHER, s as u32);
            let mut rsp = hpcsim::trace::span("mona", "mona.coll.round");
            if rsp.active() {
                rsp.arg("round", s);
                rsp.arg("to", right);
                rsp.arg("from", left);
            }
            let sr = reduce_scatter_range(len, n, send_b);
            let rr = reduce_scatter_range(len, n, recv_b);
            let req = self.ring_send_slice(right, tag, &out[sr])?;
            let rplan = tuning.frames(rr.len());
            for j in 0..rplan.count {
                let (chunk, _) = self.raw_recv(Some(left), tag)?;
                let sub = rplan.range(j, rr.len());
                check_chunk_len(chunk.len(), sub.len())?;
                out[rr.start + sub.start..rr.start + sub.end].copy_from_slice(&chunk);
            }
            if let Some(req) = req {
                req.wait()?;
            }
            drop(rsp);
        }
        Ok(Bytes::from(out))
    }

    /// Linear gather to the root. Payload sizes may differ per rank
    /// (gatherv semantics). The root receives `Some(parts)` in rank order.
    pub fn gather(&self, data: &[u8], root: usize) -> Result<Option<Vec<Bytes>>> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let _sp = self.coll_span("gather", seq);
        let tag = self.coll_tag(seq, opcode::GATHER, 0);
        if me == root {
            let mut parts: Vec<Option<Bytes>> = vec![None; n];
            parts[me] = Some(Bytes::copy_from_slice(data));
            for _ in 0..n - 1 {
                let (got, src) = self.raw_recv(None, tag)?;
                parts[src] = Some(got);
            }
            collect_parts(parts, "gather: duplicate sender left a rank unfilled").map(Some)
        } else {
            self.raw_send(root, tag, data)?;
            Ok(None)
        }
    }

    /// [`gather`](Self::gather) without copies: the root keeps its own
    /// part by move, non-roots hand the buffer to the RDMA path un-copied.
    pub fn gather_owned(&self, data: Bytes, root: usize) -> Result<Option<Vec<Bytes>>> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let _sp = self.coll_span("gather", seq);
        let tag = self.coll_tag(seq, opcode::GATHER, 0);
        if me == root {
            let mut parts: Vec<Option<Bytes>> = vec![None; n];
            parts[me] = Some(data);
            for _ in 0..n - 1 {
                let (got, src) = self.raw_recv(None, tag)?;
                parts[src] = Some(got);
            }
            collect_parts(parts, "gather: duplicate sender left a rank unfilled").map(Some)
        } else {
            self.raw_send_owned(root, tag, data)?;
            Ok(None)
        }
    }

    /// Ring allgather: n−1 steps, each forwarding the block received in
    /// the previous step without copying it (the carry is a refcounted
    /// `Bytes`). Handles per-rank size differences via a frame-0 length
    /// prefix; large carries are segmented by the frame plan.
    pub fn allgather(&self, data: &[u8]) -> Result<Vec<Bytes>> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let _sp = self.coll_span("allgather", seq);
        let mut parts: Vec<Option<Bytes>> = vec![None; n];
        let own = Bytes::copy_from_slice(data);
        parts[me] = Some(own.clone());
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let mut carry: Bytes = own;
        for step in 0..n.saturating_sub(1) {
            let tag = self.coll_tag(seq, opcode::ALLGATHER, step as u32);
            let mut rsp = hpcsim::trace::span("mona", "mona.coll.round");
            if rsp.active() {
                rsp.arg("round", step);
                rsp.arg("to", right);
                rsp.arg("from", left);
            }
            // Deadlock-safe pairwise exchange around the ring.
            let req = self.ring_send_bytes(right, tag, carry.clone(), true)?;
            let got = self.recv_framed(left, tag)?;
            req.wait()?;
            drop(rsp);
            let origin = (me + n - 1 - step) % n;
            carry = got;
            parts[origin] = Some(carry.clone());
        }
        collect_parts(parts, "allgather: ring left a rank unfilled")
    }

    /// Linear scatter from the root: rank `i` receives `parts[i]`.
    pub fn scatter(&self, parts: Option<&[Vec<u8>]>, root: usize) -> Result<Bytes> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let _sp = self.coll_span("scatter", seq);
        let tag = self.coll_tag(seq, opcode::SCATTER, 0);
        if me == root {
            let parts = parts.expect("root must supply scatter parts");
            assert_eq!(parts.len(), n, "scatter needs one part per rank");
            for (dst, part) in parts.iter().enumerate() {
                if dst != me {
                    self.raw_send(dst, tag, part)?;
                }
            }
            Ok(Bytes::copy_from_slice(&parts[me]))
        } else {
            let (got, _) = self.raw_recv(Some(root), tag)?;
            Ok(got)
        }
    }

    /// [`scatter`](Self::scatter) without copies: the root moves each part
    /// onto the wire (RDMA exposes the buffer directly) and keeps its own
    /// part by move.
    pub fn scatter_owned(&self, parts: Option<Vec<Bytes>>, root: usize) -> Result<Bytes> {
        let n = self.size();
        let me = self.rank();
        let seq = self.next_seq();
        let _sp = self.coll_span("scatter", seq);
        let tag = self.coll_tag(seq, opcode::SCATTER, 0);
        if me == root {
            let parts = parts.expect("root must supply scatter parts");
            assert_eq!(parts.len(), n, "scatter needs one part per rank");
            let mut own = None;
            for (dst, part) in parts.into_iter().enumerate() {
                if dst == me {
                    own = Some(part);
                } else {
                    self.raw_send_owned(dst, tag, part)?;
                }
            }
            Ok(own.expect("own part present"))
        } else {
            let (got, _) = self.raw_recv(Some(root), tag)?;
            Ok(got)
        }
    }

    /// Non-blocking broadcast.
    pub fn ibcast(&self, data: Option<Vec<u8>>, root: usize) -> Request {
        let this = self.clone();
        Request::pending(self.instance().task_pool().spawn(move || {
            this.bcast_owned(data.map(Bytes::from), root).map(Some)
        }))
    }

    /// Non-blocking reduce (operator must be shareable).
    pub fn ireduce(
        &self,
        data: Vec<u8>,
        op: Arc<dyn ReduceOp + Send + Sync>,
        root: usize,
    ) -> Request {
        let this = self.clone();
        Request::pending(self.instance().task_pool().spawn(move || {
            this.reduce(&data, op.as_ref(), root)
                .map(|o| o.map(Bytes::from))
        }))
    }

    /// Non-blocking allreduce (operator must be shareable).
    pub fn iallreduce(&self, data: Vec<u8>, op: Arc<dyn ReduceOp + Send + Sync>) -> Request {
        let this = self.clone();
        Request::pending(
            self.instance()
                .task_pool()
                .spawn(move || this.allreduce(&data, op.as_ref()).map(Some)),
        )
    }

    /// Non-blocking barrier.
    pub fn ibarrier(&self) -> Request {
        let this = self.clone();
        Request::pending(
            self.instance()
                .task_pool()
                .spawn(move || this.barrier().map(|()| None)),
        )
    }

    /// Sends a borrowed ring block, segmented by the frame plan. Eager
    /// frames are sent inline (they never block); if a frame would take the
    /// blocking RDMA path the whole block is shipped from a background task
    /// instead — a ring where every rank blocks on its right neighbour's
    /// ack would deadlock. Returns the request to wait on in that case.
    fn ring_send_slice(&self, dst: usize, tag: u64, block: &[u8]) -> Result<Option<Request>> {
        let threshold = self.instance().config().rdma_threshold;
        let plan = self.instance().config().coll.frames(block.len());
        if block.len().min(plan.chunk) >= threshold {
            let owned = Bytes::copy_from_slice(block);
            let this = self.clone();
            Ok(Some(Request::pending(
                self.instance()
                    .task_pool()
                    .spawn(move || this.send_frames(dst, tag, owned, false).map(|()| None)),
            )))
        } else {
            for k in 0..plan.count {
                let r = plan.range(k, block.len());
                self.raw_send(dst, tag, &block[r])?;
            }
            Ok(None)
        }
    }

    /// Sends an owned ring block (the allgather carry), segmented by the
    /// frame plan with a frame-0 length prefix. Spawns a task only when a
    /// frame would take the blocking RDMA path.
    fn ring_send_bytes(&self, dst: usize, tag: u64, data: Bytes, prefixed: bool) -> Result<Request> {
        let threshold = self.instance().config().rdma_threshold;
        let plan = self.instance().config().coll.frames(data.len());
        let frame0 = data.len().min(plan.chunk) + if prefixed { 8 } else { 0 };
        if frame0 >= threshold {
            let this = self.clone();
            Ok(Request::pending(
                self.instance()
                    .task_pool()
                    .spawn(move || this.send_frames(dst, tag, data, prefixed).map(|()| None)),
            ))
        } else {
            self.send_frames(dst, tag, data, prefixed)?;
            Ok(Request::ready(Ok(None)))
        }
    }

    /// Sends `data` as frame-plan segments on one tag (chunk order is
    /// preserved by the FIFO mailbox); frame 0 optionally carries the
    /// total-length prefix.
    fn send_frames(&self, dst: usize, tag: u64, data: Bytes, prefixed: bool) -> Result<()> {
        let len = data.len();
        let plan = self.instance().config().coll.frames(len);
        for k in 0..plan.count {
            let r = plan.range(k, len);
            if k == 0 && prefixed {
                let prefix = (len as u64).to_le_bytes();
                self.raw_send_prefixed(dst, tag, &prefix, Payload::Owned(data.slice(r)))?;
            } else {
                self.raw_send_owned(dst, tag, data.slice(r))?;
            }
        }
        Ok(())
    }

    /// Receives a length-prefixed, frame-plan-segmented payload from `src`
    /// on one tag. Single-frame payloads are returned as a zero-copy slice
    /// of the received buffer.
    fn recv_framed(&self, src: usize, tag: u64) -> Result<Bytes> {
        let (frame0, _) = self.raw_recv(Some(src), tag)?;
        let len = frame_len_prefix(&frame0)?;
        let chunk0 = frame0.slice(8..);
        let plan = self.instance().config().coll.frames(len);
        if plan.count == 1 {
            check_chunk_len(chunk0.len(), len)?;
            return Ok(chunk0);
        }
        let mut out = self.inst.buffers.take(len);
        out.extend_from_slice(&chunk0);
        for _ in 1..plan.count {
            let (chunk, _) = self.raw_recv(Some(src), tag)?;
            out.extend_from_slice(&chunk);
        }
        check_chunk_len(out.len(), len)?;
        Ok(Bytes::from(out))
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::tests::with_comm;
    use crate::comm::{CollTuning, MonaConfig};
    use crate::ops;
    use std::sync::Arc;

    #[test]
    fn bcast_from_every_root() {
        for root in 0..4 {
            let out = with_comm(4, MonaConfig::default(), move |comm| {
                let data = if comm.rank() == root {
                    Some(vec![root as u8, 42])
                } else {
                    None
                };
                comm.bcast(data.as_deref(), root).unwrap().to_vec()
            });
            assert!(out.iter().all(|v| v == &vec![root as u8, 42]), "root {root}");
        }
    }

    #[test]
    fn bcast_large_payload_is_pipelined_and_intact() {
        let payload: Vec<u8> = (0..100 * 1024usize).map(|i| (i * 31 % 251) as u8).collect();
        let expect = payload.clone();
        let out = with_comm(5, MonaConfig::default(), move |comm| {
            let data = (comm.rank() == 0).then(|| payload.clone());
            comm.bcast(data.as_deref(), 0).unwrap().to_vec()
        });
        assert!(out.iter().all(|got| got == &expect));
    }

    #[test]
    fn reduce_xor_matches_oracle() {
        let out = with_comm(7, MonaConfig::default(), |comm| {
            let data = vec![comm.rank() as u8 + 1; 16];
            comm.reduce(&data, &ops::bxor_u8, 0).unwrap()
        });
        let expect = (1..=7u8).fold(0, |a, b| a ^ b);
        assert_eq!(out[0].as_ref().unwrap(), &vec![expect; 16]);
        assert!(out[1..].iter().all(|o| o.is_none()));
    }

    #[test]
    fn reduce_large_payload_is_pipelined_and_exact() {
        // 96 KiB => 8 chunks of 12 KiB; pipelined fold order matches the
        // whole-message fold order bit for bit.
        let out = with_comm(6, MonaConfig::default(), |comm| {
            let vals: Vec<u64> = (0..96 * 1024 / 8).map(|i| i as u64 + comm.rank() as u64).collect();
            comm.reduce(&ops::u64s_to_bytes(&vals), &ops::sum_u64, 2).unwrap()
        });
        let got = ops::bytes_to_u64s(out[2].as_ref().unwrap());
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, 6 * i as u64 + 15, "element {i}");
        }
        assert!(out.iter().enumerate().all(|(r, o)| (r == 2) == o.is_some()));
    }

    #[test]
    fn reduce_to_nonzero_root() {
        let out = with_comm(5, MonaConfig::default(), |comm| {
            let data = ops::u64s_to_bytes(&[comm.rank() as u64]);
            comm.reduce(&data, &ops::sum_u64, 3).unwrap()
        });
        assert_eq!(ops::bytes_to_u64s(out[3].as_ref().unwrap()), vec![10]);
    }

    #[test]
    fn allreduce_sums_everywhere() {
        let out = with_comm(6, MonaConfig::default(), |comm| {
            let data = ops::f64s_to_bytes(&[comm.rank() as f64, 1.0]);
            ops::bytes_to_f64s(&comm.allreduce(&data, &ops::sum_f64).unwrap())
        });
        for v in out {
            assert_eq!(v, vec![15.0, 6.0]);
        }
    }

    #[test]
    fn allreduce_large_takes_rabenseifner_and_matches_naive() {
        // 64 KiB on 4 ranks => 16 KiB blocks >= rabenseifner_block.
        let cfg = MonaConfig::default();
        assert!(cfg.coll.use_rabenseifner(64 * 1024, 4));
        let run = |config: MonaConfig| {
            with_comm(4, config, |comm| {
                let vals: Vec<u64> =
                    (0..64 * 1024 / 8).map(|i| (i as u64) << (comm.rank() as u64)).collect();
                comm.allreduce(&ops::u64s_to_bytes(&vals), &ops::sum_u64)
                    .unwrap()
                    .to_vec()
            })
        };
        let adaptive = run(cfg);
        let naive = run(MonaConfig::naive_collectives());
        assert_eq!(adaptive, naive);
        for v in adaptive {
            let got = ops::bytes_to_u64s(&v);
            assert_eq!(got[3], 3 * 15); // 3 * (1+2+4+8)
        }
    }

    #[test]
    fn reduce_scatter_returns_reduced_own_block() {
        let len = 3 * 64 * 10;
        let out = with_comm(3, MonaConfig::default(), move |comm| {
            let data = vec![1u8 << comm.rank(); len];
            comm.reduce_scatter(&data, &ops::bxor_u8).unwrap().to_vec()
        });
        for (rank, block) in out.iter().enumerate() {
            let r = super::reduce_scatter_range(len, 3, rank);
            assert_eq!(block.len(), r.len(), "rank {rank}");
            assert!(block.iter().all(|&b| b == 0b111), "rank {rank}");
        }
    }

    #[test]
    fn gather_collects_in_rank_order_with_varied_sizes() {
        let out = with_comm(4, MonaConfig::default(), |comm| {
            let data = vec![comm.rank() as u8; comm.rank() + 1];
            comm.gather(&data, 2)
                .unwrap()
                .map(|parts| parts.iter().map(|p| p.to_vec()).collect::<Vec<_>>())
        });
        let gathered = out[2].as_ref().unwrap();
        assert_eq!(gathered.len(), 4);
        for (rank, part) in gathered.iter().enumerate() {
            assert_eq!(part, &vec![rank as u8; rank + 1]);
        }
        assert!(out[0].is_none() && out[1].is_none() && out[3].is_none());
    }

    #[test]
    fn allgather_ring_delivers_all_parts() {
        let out = with_comm(5, MonaConfig::default(), |comm| {
            let data = vec![comm.rank() as u8 * 10; 3];
            comm.allgather(&data)
                .unwrap()
                .iter()
                .map(|p| p.to_vec())
                .collect::<Vec<_>>()
        });
        for parts in out {
            for (rank, part) in parts.iter().enumerate() {
                assert_eq!(part, &vec![rank as u8 * 10; 3]);
            }
        }
    }

    #[test]
    fn allgather_at_seventy_ranks_has_no_round_tag_crosstalk() {
        // Regression: the old tag layout masked the ring step to 6 bits,
        // so steps k and k+64 shared a wire tag past 64 ranks.
        let out = with_comm(70, MonaConfig::default(), |comm| {
            let data = vec![comm.rank() as u8; 4];
            comm.allgather(&data)
                .unwrap()
                .iter()
                .map(|p| p.to_vec())
                .collect::<Vec<_>>()
        });
        for parts in out {
            assert_eq!(parts.len(), 70);
            for (rank, part) in parts.iter().enumerate() {
                assert_eq!(part, &vec![rank as u8; 4]);
            }
        }
    }

    #[test]
    fn allgather_large_ragged_payloads() {
        let out = with_comm(3, MonaConfig::default(), |comm| {
            let data = vec![comm.rank() as u8 + 1; 20 * 1024 * (comm.rank() + 1)];
            comm.allgather(&data)
                .unwrap()
                .iter()
                .map(|p| (p.len(), p[0]))
                .collect::<Vec<_>>()
        });
        for parts in out {
            for (rank, &(len, first)) in parts.iter().enumerate() {
                assert_eq!(len, 20 * 1024 * (rank + 1));
                assert_eq!(first, rank as u8 + 1);
            }
        }
    }

    #[test]
    fn scatter_delivers_rank_parts() {
        let out = with_comm(4, MonaConfig::default(), |comm| {
            let parts = (comm.rank() == 1)
                .then(|| (0..4).map(|i| vec![i as u8; 2]).collect::<Vec<_>>());
            comm.scatter(parts.as_deref(), 1).unwrap().to_vec()
        });
        for (rank, part) in out.iter().enumerate() {
            assert_eq!(part, &vec![rank as u8; 2]);
        }
    }

    #[test]
    fn owned_collective_variants_roundtrip() {
        use bytes::Bytes;
        let out = with_comm(3, MonaConfig::default(), |comm| {
            let payload = (comm.rank() == 0).then(|| Bytes::from(vec![9u8; 40 * 1024]));
            let b = comm.bcast_owned(payload, 0).unwrap();
            let g = comm.gather_owned(Bytes::from(vec![comm.rank() as u8; 2]), 1).unwrap();
            let parts = (comm.rank() == 2)
                .then(|| (0..3).map(|i| Bytes::from(vec![i as u8; 3])).collect::<Vec<_>>());
            let s = comm.scatter_owned(parts, 2).unwrap();
            (b.len(), g.map(|ps| ps.len()), s.to_vec())
        });
        for (rank, (blen, g, s)) in out.iter().enumerate() {
            assert_eq!(*blen, 40 * 1024);
            assert_eq!(g.is_some(), rank == 1);
            assert_eq!(s, &vec![rank as u8; 3]);
        }
    }

    #[test]
    fn barrier_completes_at_many_sizes() {
        for n in [1, 2, 3, 5, 8] {
            let out = with_comm(n, MonaConfig::default(), |comm| {
                for _ in 0..3 {
                    comm.barrier().unwrap();
                }
                true
            });
            assert!(out.into_iter().all(|b| b), "n={n}");
        }
    }

    #[test]
    fn barrier_actually_synchronizes_virtual_time() {
        // After a barrier, every rank's virtual clock must be >= the
        // pre-barrier maximum across ranks (information flowed from all).
        let out = with_comm(4, MonaConfig::default(), |comm| {
            hpcsim::current().advance(1_000 * (comm.rank() as u64 + 1));
            let before_max = 4_000;
            comm.barrier().unwrap();
            hpcsim::current().now() >= before_max
        });
        assert!(out.into_iter().all(|b| b));
    }

    #[test]
    fn nonblocking_collectives_complete() {
        let out = with_comm(4, MonaConfig::default(), |comm| {
            let b = comm.ibarrier();
            b.wait().unwrap();
            let data = (comm.rank() == 0).then(|| vec![5u8; 8]);
            let r = comm.ibcast(data, 0);
            let got = r.wait().unwrap().unwrap();
            let ar = comm.iallreduce(vec![comm.rank() as u8; 4], Arc::new(ops::bxor_u8));
            let reduced = ar.wait().unwrap().unwrap();
            (got.len(), reduced[0])
        });
        let expect = (0..4u8).fold(0, |a, b| a ^ b);
        assert!(out.into_iter().all(|(l, x)| l == 8 && x == expect));
    }

    #[test]
    fn consecutive_collectives_do_not_cross_talk() {
        let out = with_comm(3, MonaConfig::default(), |comm| {
            let mut results = Vec::new();
            for i in 0..10u8 {
                let data = (comm.rank() == (i as usize) % 3).then(|| vec![i; 4]);
                let got = comm.bcast(data.as_deref(), (i as usize) % 3).unwrap();
                results.push(got[0]);
            }
            results
        });
        for r in out {
            assert_eq!(r, (0..10).collect::<Vec<u8>>());
        }
    }

    #[test]
    fn mixed_size_collectives_interleave_cleanly() {
        // Alternating small (binomial) and large (pipelined / Rabenseifner)
        // collectives on one communicator must not confuse tags.
        let out = with_comm(4, MonaConfig::default(), |comm| {
            let mut ok = true;
            for i in 0..4u8 {
                let small = comm.allreduce(&[i; 8], &ops::bxor_u8).unwrap();
                ok &= small[0] == 0; // i ^ i ^ i ^ i
                let big = comm
                    .allreduce(&vec![1u8; 32 * 1024], &ops::bxor_u8)
                    .unwrap();
                ok &= big.iter().all(|&b| b == 0);
                let bc = comm
                    .bcast((comm.rank() == 0).then(|| vec![i; 24 * 1024]).as_deref(), 0)
                    .unwrap();
                ok &= bc.len() == 24 * 1024 && bc[0] == i;
            }
            ok
        });
        assert!(out.into_iter().all(|b| b));
    }

    #[test]
    fn naive_tuning_disables_pipelining_and_rabenseifner() {
        let t = CollTuning::naive();
        assert_eq!(t.frames(8 * 1024 * 1024).count, 1);
        assert!(!t.use_rabenseifner(8 * 1024 * 1024, 64));
        let d = CollTuning::default();
        assert_eq!(d.frames(4 * 1024).count, 1);
        assert!(d.frames(48 * 1024).count > 1);
        assert!(d.use_rabenseifner(256 * 1024, 64));
        assert!(!d.use_rabenseifner(16 * 1024, 64));
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        let out = with_comm(1, MonaConfig::default(), |comm| {
            comm.barrier().unwrap();
            let b = comm.bcast(Some(&[1, 2]), 0).unwrap().to_vec();
            let r = comm.reduce(&[3, 4], &ops::bxor_u8, 0).unwrap().unwrap();
            let g = comm.gather(&[5], 0).unwrap().unwrap();
            let a = comm.allreduce(&[7], &ops::bxor_u8).unwrap().to_vec();
            let rs = comm.reduce_scatter(&[8, 9], &ops::bxor_u8).unwrap().to_vec();
            (b, r, g[0].to_vec(), a, rs)
        });
        assert_eq!(
            out[0],
            (vec![1, 2], vec![3, 4], vec![5], vec![7], vec![8, 9])
        );
    }

    #[test]
    fn reduce_scatter_range_is_aligned_and_covering() {
        for (len, n) in [(0usize, 4usize), (100, 3), (4096, 3), (192, 70), (1 << 20, 7)] {
            let mut covered = 0;
            for r in 0..n {
                let range = super::reduce_scatter_range(len, n, r);
                assert!(
                    range.start % super::COLL_ALIGN == 0 || range.start == len,
                    "unaligned interior start {range:?} len={len} n={n}"
                );
                assert_eq!(range.start, covered.min(len));
                covered = covered.max(range.end);
            }
            assert_eq!(covered, len, "len={len} n={n}");
        }
    }
}
