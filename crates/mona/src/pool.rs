//! Buffer pooling.
//!
//! The paper attributes MoNA's advantage over raw NA to "caching and
//! reusing requests and message buffers, avoiding many small allocations".
//! This module is that cache: collectives draw their scratch buffers from
//! here instead of allocating per operation.

use parking_lot::Mutex;

/// A size-bucketed pool of byte buffers.
pub struct BufferPool {
    /// Buffers kept for reuse, roughly sorted by capacity.
    free: Mutex<Vec<Vec<u8>>>,
    /// Maximum number of cached buffers.
    max_cached: usize,
    /// Pool hit/miss counters (diagnostics + tests).
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl BufferPool {
    /// Creates a pool caching at most `max_cached` buffers.
    pub fn new(max_cached: usize) -> Self {
        Self {
            free: Mutex::new(Vec::new()),
            max_cached,
            hits: Default::default(),
            misses: Default::default(),
        }
    }

    /// Takes a zeroed-length buffer with at least `capacity` bytes of
    /// capacity, reusing a cached one when possible.
    pub fn take(&self, capacity: usize) -> Vec<u8> {
        let mut free = self.free.lock();
        if let Some(pos) = free.iter().position(|b| b.capacity() >= capacity) {
            let mut buf = free.swap_remove(pos);
            drop(free);
            buf.clear();
            self.hits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            buf
        } else {
            drop(free);
            self.misses
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Vec::with_capacity(capacity)
        }
    }

    /// Takes a pooled buffer pre-filled with a copy of `data` — the common
    /// "accumulator starts as my contribution" pattern in collectives.
    pub fn take_copy(&self, data: &[u8]) -> Vec<u8> {
        let mut buf = self.take(data.len());
        buf.extend_from_slice(data);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut free = self.free.lock();
        if free.len() < self.max_cached {
            free.push(buf);
        }
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(std::sync::atomic::Ordering::Relaxed),
            self.misses.load(std::sync::atomic::Ordering::Relaxed),
        )
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_hits_the_cache() {
        let p = BufferPool::new(8);
        let b = p.take(100);
        assert_eq!(p.stats(), (0, 1));
        p.put(b);
        let b2 = p.take(50);
        assert!(b2.capacity() >= 50);
        assert_eq!(p.stats(), (1, 1));
    }

    #[test]
    fn undersized_buffers_are_not_reused() {
        let p = BufferPool::new(8);
        p.put(Vec::with_capacity(10));
        let b = p.take(100);
        assert!(b.capacity() >= 100);
        assert_eq!(p.stats(), (0, 1));
    }

    #[test]
    fn cache_is_bounded() {
        let p = BufferPool::new(2);
        for _ in 0..5 {
            p.put(Vec::with_capacity(16));
        }
        assert!(p.free.lock().len() <= 2);
    }

    #[test]
    fn taken_buffers_are_empty() {
        let p = BufferPool::new(8);
        let mut b = p.take(4);
        b.extend_from_slice(&[1, 2, 3]);
        p.put(b);
        assert!(p.take(2).is_empty());
    }
}
