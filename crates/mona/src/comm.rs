//! MoNA instances and communicators: lifecycle plus the point-to-point
//! protocol layer (eager vs RDMA) that collectives build on.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::{BufMut, Bytes, BytesMut};

use na::{Address, Endpoint, Fabric, NaError, RecvSelector};

use crate::pool::BufferPool;
use crate::Result;

/// Tunables and calibrated cost constants for a MoNA instance.
#[derive(Debug, Clone, Copy)]
pub struct MonaConfig {
    /// Messages of at least this many bytes use the RDMA path (expose +
    /// notice + remote get + ack) instead of the eager path.
    pub rdma_threshold: usize,
    /// Software overhead charged per send or receive operation: MoNA's
    /// progress loop runs through Argobots and a generic request layer.
    pub sw_op_ns: u64,
    /// Extra overhead per operation when buffer pooling is disabled — the
    /// "many small allocations" the paper says raw NA suffers from.
    pub alloc_ns: u64,
    /// Whether request/buffer caching is active. Disabling it reproduces
    /// the raw-NA rows of Table I and is one of the DESIGN.md ablations.
    pub pooling: bool,
    /// Extra initiator-side cost of MoNA's RDMA path: NA-level memory
    /// registration and handle marshaling are costlier than a vendor
    /// MPI's pre-registered pools (calibrated from Table I's 16 KiB row).
    pub rdma_extra_ns: u64,
    /// Algorithm-selection table for the collective engine (DESIGN.md §11).
    pub coll: CollTuning,
}

impl Default for MonaConfig {
    fn default() -> Self {
        Self {
            rdma_threshold: 16 * 1024,
            sw_op_ns: 380,
            alloc_ns: 90,
            pooling: true,
            rdma_extra_ns: 3_800,
            coll: CollTuning::default(),
        }
    }
}

impl MonaConfig {
    /// The configuration modelling *raw NA* usage: no request/buffer
    /// caching and no RDMA protocol switch (NA alone has no matching
    /// rendezvous logic — the paper's NA column stops at 2 KiB).
    pub fn raw_na() -> Self {
        Self {
            pooling: false,
            ..Default::default()
        }
    }

    /// A configuration that pins every collective to the naive MPICH
    /// "classic" algorithm (whole-payload binomial trees, reduce-then-bcast
    /// allreduce). Used as the oracle/baseline by tests and `bench_coll`.
    pub fn naive_collectives() -> Self {
        Self {
            coll: CollTuning::naive(),
            ..Default::default()
        }
    }
}

/// Every split the collective engine makes (pipeline chunks, Rabenseifner
/// blocks) falls on a multiple of this, so any elementwise [`crate::ReduceOp`]
/// whose record width divides 64 bytes can be applied to sub-ranges.
pub const COLL_ALIGN: usize = 64;

/// The widest round/chunk index a collective wire tag can carry (12 bits).
pub(crate) const MAX_ROUNDS: usize = 1 << 12;

/// The size-adaptive collective engine's selection table: which algorithm
/// each collective uses as a function of message size and communicator
/// size, mirroring MPICH's switchover design (the paper says MoNA follows
/// it). See DESIGN.md §11 for the calibration.
#[derive(Debug, Clone, Copy)]
pub struct CollTuning {
    /// Payloads of at least this many bytes are segmented into pipeline
    /// chunks so intermediate tree ranks forward chunk *k* while chunk
    /// *k+1* is still in flight. Chunks ride the non-blocking eager path,
    /// which is what lets tree levels overlap.
    pub pipeline_threshold: usize,
    /// Pipeline segment size. Rounded up to [`COLL_ALIGN`]; grown when a
    /// payload would otherwise need more than 4096 chunks (the round-field
    /// width). 12 KiB keeps chunks under the RDMA threshold and the
    /// per-chunk CPU cost below the RDMA per-byte wire cost.
    pub pipeline_chunk: usize,
    /// Upper end of the pipelining window: payloads of this many bytes or
    /// more go back to whole-payload trees. Above here the eager chunks'
    /// per-byte copy cost outweighs the tree-level overlap they buy, and
    /// the single zero-copy RDMA transfer per edge wins (measured
    /// crossover ≈ 170 KiB at 16 ranks, higher at 64 — see
    /// `results/BENCH_coll.json`).
    pub pipeline_max: usize,
    /// `allreduce` switches to Rabenseifner (ring reduce-scatter + ring
    /// allgather) once the per-rank block `len / n` reaches this size —
    /// below it the 2(n−1) ring messages cost more than they save.
    pub rabenseifner_block: usize,
}

impl Default for CollTuning {
    fn default() -> Self {
        Self {
            pipeline_threshold: 12 * 1024,
            pipeline_chunk: 12 * 1024,
            pipeline_max: 160 * 1024,
            rabenseifner_block: 4 * 1024,
        }
    }
}

/// How a payload is segmented on the wire: `count` frames of at most
/// `chunk` bytes (the last one ragged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FramePlan {
    /// Frame payload size (multiple of [`COLL_ALIGN`]).
    pub chunk: usize,
    /// Number of frames (≥ 1; 1 means "not pipelined").
    pub count: usize,
}

impl FramePlan {
    /// Byte range of frame `k` within a `len`-byte payload.
    pub fn range(&self, k: usize, len: usize) -> std::ops::Range<usize> {
        let start = (k * self.chunk).min(len);
        let end = ((k + 1) * self.chunk).min(len);
        start..end
    }
}

fn align_up(v: usize, to: usize) -> usize {
    v.div_ceil(to) * to
}

impl CollTuning {
    /// A tuning that never pipelines and never selects Rabenseifner —
    /// i.e. the pre-engine naive algorithms.
    pub fn naive() -> Self {
        Self {
            pipeline_threshold: usize::MAX,
            pipeline_chunk: 12 * 1024,
            pipeline_max: usize::MAX,
            rabenseifner_block: usize::MAX,
        }
    }

    /// The wire segmentation for a `len`-byte payload: a single frame
    /// below `pipeline_threshold`, chunked above it. Both sides of an
    /// edge compute this from `len` alone, so it is a deterministic
    /// function of size — never of wall-clock state.
    pub fn frames(&self, len: usize) -> FramePlan {
        if len < self.pipeline_threshold || len >= self.pipeline_max || len == 0 {
            return FramePlan {
                chunk: len.max(1),
                count: 1,
            };
        }
        let mut chunk = align_up(self.pipeline_chunk.max(1), COLL_ALIGN);
        let min_chunk = len.div_ceil(MAX_ROUNDS);
        if chunk < min_chunk {
            chunk = align_up(min_chunk, COLL_ALIGN);
        }
        FramePlan {
            chunk,
            count: len.div_ceil(chunk).max(1),
        }
    }

    /// Whether `allreduce(len)` on an `n`-rank communicator uses
    /// Rabenseifner. Division keeps the `usize::MAX` sentinel overflow-free.
    pub fn use_rabenseifner(&self, len: usize, n: usize) -> bool {
        n > 1 && len / n >= self.rabenseifner_block
    }

    /// The algorithm `bcast`/`reduce` will use (bench/test labeling).
    pub fn tree_algorithm(&self, len: usize, n: usize) -> &'static str {
        if n <= 1 {
            "identity"
        } else if self.frames(len).count > 1 {
            "pipelined-binomial"
        } else {
            "binomial"
        }
    }

    /// The algorithm `allreduce` will use (bench/test labeling).
    pub fn allreduce_algorithm(&self, len: usize, n: usize) -> &'static str {
        if n <= 1 {
            "identity"
        } else if self.use_rabenseifner(len, n) {
            "rabenseifner"
        } else if self.frames(len).count > 1 {
            "pipelined-reduce+bcast"
        } else {
            "reduce+bcast"
        }
    }

    /// The algorithm `allgather` will use for `len`-byte per-rank blocks.
    pub fn allgather_algorithm(&self, len: usize, n: usize) -> &'static str {
        if n <= 1 {
            "identity"
        } else if self.frames(len).count > 1 {
            "ring-pipelined"
        } else {
            "ring"
        }
    }
}

/// A MoNA progress-loop instance (the `mona_instance_t` of the C library).
pub struct MonaInstance {
    endpoint: Arc<Endpoint>,
    config: MonaConfig,
    task_pool: argo::Pool,
    pub(crate) buffers: BufferPool,
}

impl MonaInstance {
    /// Initializes MoNA for the calling simulated process, opening a fresh
    /// NA endpoint on `fabric`.
    pub fn init(fabric: &Fabric) -> Arc<Self> {
        Self::from_endpoint(Arc::new(fabric.open()), MonaConfig::default())
    }

    /// Initializes with an explicit configuration.
    pub fn init_with(fabric: &Fabric, config: MonaConfig) -> Arc<Self> {
        Self::from_endpoint(Arc::new(fabric.open()), config)
    }

    /// Wraps an already-open endpoint (shared with margo, as Colza does).
    pub fn from_endpoint(endpoint: Arc<Endpoint>, config: MonaConfig) -> Arc<Self> {
        let ctx = Arc::clone(endpoint.ctx());
        let task_pool = argo::PoolBuilder::new(format!("mona-{}", endpoint.address()))
            .xstreams(2)
            .task_wrapper(Arc::new(move |task| {
                hpcsim::process::enter(Arc::clone(&ctx), task)
            }))
            .build();
        Arc::new(Self {
            endpoint,
            config,
            task_pool,
            buffers: BufferPool::default(),
        })
    }

    /// This instance's NA address.
    pub fn address(&self) -> Address {
        self.endpoint.address()
    }

    /// The underlying endpoint.
    pub fn endpoint(&self) -> &Arc<Endpoint> {
        &self.endpoint
    }

    /// The active configuration.
    pub fn config(&self) -> &MonaConfig {
        &self.config
    }

    pub(crate) fn task_pool(&self) -> &argo::Pool {
        &self.task_pool
    }

    /// Charges the per-operation software overhead to the caller's clock.
    pub(crate) fn charge_op(&self) {
        let mut ns = self.config.sw_op_ns;
        if !self.config.pooling {
            ns += self.config.alloc_ns;
        }
        self.endpoint.ctx().advance(ns);
    }

    /// Builds a communicator over `members` (context 0). The caller's own
    /// address must appear in the list; its index becomes the rank.
    pub fn comm_create(self: &Arc<Self>, members: Vec<Address>) -> Result<Communicator> {
        self.comm_create_with_context(members, 0)
    }

    /// Builds a communicator with an explicit context id, allowing several
    /// communicators over the same member list to coexist.
    pub fn comm_create_with_context(
        self: &Arc<Self>,
        members: Vec<Address>,
        context: u64,
    ) -> Result<Communicator> {
        let me = self.address();
        let rank = members
            .iter()
            .position(|&a| a == me)
            .unwrap_or_else(|| panic!("{me} is not in the member list"));
        let cid = comm_id(&members, context);
        Ok(Communicator {
            inst: Arc::clone(self),
            members: Arc::new(members),
            rank,
            cid,
            context,
            seq: Arc::new(AtomicU64::new(0)),
        })
    }
}

/// Deterministic communicator id from the membership and a context value.
fn comm_id(members: &[Address], context: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ context.wrapping_mul(0x1000_0000_01b3);
    for a in members {
        h ^= a.0;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h & CID_MASK
}

const CID_MASK: u64 = (1 << 18) - 1;
const SUB_BITS: u64 = 26;
const P2P_ACK_BIT: u64 = 1 << 16;
const COLL_BIT: u64 = 1 << 25;
// Collective wire-tag layout (below COLL_BIT): bits 0..=4 opcode,
// bits 5..=16 round/chunk index, bit 17 ack, bits 18..=24 sequence
// number mod 128. The 12-bit round field is what fixes the old
// 6-bit allgather step mask that cross-talked past 64 ranks.
const COLL_ACK_BIT: u64 = 1 << 17;
const COLL_ROUND_SHIFT: u64 = 5;
const COLL_SEQ_SHIFT: u64 = 18;
const COLL_SEQ_MASK: u64 = 0x7F;

/// Message kinds on the wire.
const KIND_EAGER: u8 = 0;
const KIND_RDMA: u8 = 1;

/// A send payload that is either borrowed (copied into the wire frame) or
/// owned (handed to the fabric without a copy where the path allows it).
pub(crate) enum Payload<'a> {
    Borrowed(&'a [u8]),
    Owned(Bytes),
}

impl Payload<'_> {
    fn len(&self) -> usize {
        match self {
            Payload::Borrowed(s) => s.len(),
            Payload::Owned(b) => b.len(),
        }
    }

    fn as_slice(&self) -> &[u8] {
        match self {
            Payload::Borrowed(s) => s,
            Payload::Owned(b) => b,
        }
    }
}

/// A MoNA communicator: a rank within an explicit member list.
///
/// Cloning is cheap and yields a handle sharing the collective sequence
/// counter — clones are for moving into non-blocking tasks, not for
/// concurrent independent use.
#[derive(Clone)]
pub struct Communicator {
    pub(crate) inst: Arc<MonaInstance>,
    members: Arc<Vec<Address>>,
    rank: usize,
    cid: u64,
    context: u64,
    seq: Arc<AtomicU64>,
}

impl Communicator {
    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The member list, in rank order.
    pub fn members(&self) -> &[Address] {
        &self.members
    }

    /// The address of a rank.
    pub fn address_of(&self, rank: usize) -> Address {
        self.members[rank]
    }

    /// The owning instance.
    pub fn instance(&self) -> &Arc<MonaInstance> {
        &self.inst
    }

    /// A new communicator over the same members with a fresh context
    /// (disjoint tag space).
    pub fn dup(&self) -> Communicator {
        self.inst
            .comm_create_with_context((*self.members).clone(), self.context.wrapping_add(1))
            .expect("self is a member")
    }

    fn p2p_tag(&self, tag: u16) -> u64 {
        na::tags::MONA_BASE | (self.cid << SUB_BITS) | tag as u64
    }

    /// The wire tag for round `round` of opcode `op` within collective
    /// number `seq`. Sequence numbers wrap at 128, which is safe because
    /// collectives are issued in order on each communicator and the NA
    /// mailbox is FIFO per (source, tag) — a tag cannot be reused while a
    /// message wearing it is still queued.
    pub(crate) fn coll_tag(&self, seq: u64, op: u16, round: u32) -> u64 {
        debug_assert!(op < 32, "collective opcode field is 5 bits");
        debug_assert!((round as usize) < MAX_ROUNDS, "round field is 12 bits");
        na::tags::MONA_BASE
            | (self.cid << SUB_BITS)
            | COLL_BIT
            | ((seq & COLL_SEQ_MASK) << COLL_SEQ_SHIFT)
            | ((round as u64) << COLL_ROUND_SHIFT)
            | op as u64
    }

    pub(crate) fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Sends `data` to `dst` with a user tag. Eager below the RDMA
    /// threshold (buffered, returns immediately); RDMA above it (blocks
    /// until the receiver has pulled the data).
    pub fn send(&self, data: &[u8], dst: usize, tag: u16) -> Result<()> {
        self.raw_send(dst, self.p2p_tag(tag), data)
    }

    /// Receives a message from `src` with a user tag.
    pub fn recv(&self, src: usize, tag: u16) -> Result<Bytes> {
        self.raw_recv(Some(src), self.p2p_tag(tag)).map(|(b, _)| b)
    }

    /// Receives a message with the given tag from any rank, returning the
    /// payload and the source rank.
    pub fn recv_any(&self, tag: u16) -> Result<(Bytes, usize)> {
        self.raw_recv(None, self.p2p_tag(tag))
    }

    /// Simultaneous send and receive (deadlock-safe even for large
    /// messages: the send side runs as a background task).
    pub fn sendrecv(
        &self,
        data: &[u8],
        dst: usize,
        send_tag: u16,
        src: usize,
        recv_tag: u16,
    ) -> Result<Bytes> {
        let req = self.isend(data.to_vec(), dst, send_tag);
        let out = self.recv(src, recv_tag)?;
        req.wait()?;
        Ok(out)
    }

    /// Non-blocking send; completion means the data is delivered (eager)
    /// or pulled by the receiver (RDMA).
    pub fn isend(&self, data: Vec<u8>, dst: usize, tag: u16) -> crate::Request {
        let wire_tag = self.p2p_tag(tag);
        if data.len() < self.inst.config.rdma_threshold {
            // Eager sends are buffered; complete immediately.
            crate::Request::ready(self.raw_send(dst, wire_tag, &data).map(|()| None))
        } else {
            let this = self.clone();
            crate::Request::pending(
                self.inst
                    .task_pool()
                    .spawn(move || this.raw_send(dst, wire_tag, &data).map(|()| None)),
            )
        }
    }

    /// Non-blocking receive.
    pub fn irecv(&self, src: usize, tag: u16) -> crate::Request {
        let wire_tag = self.p2p_tag(tag);
        let this = self.clone();
        crate::Request::pending(
            self.inst
                .task_pool()
                .spawn(move || this.raw_recv(Some(src), wire_tag).map(|(b, _)| Some(b))),
        )
    }

    /// Low-level tagged send used by both p2p and collectives.
    pub(crate) fn raw_send(&self, dst: usize, wire_tag: u64, data: &[u8]) -> Result<()> {
        self.send_frame(dst, wire_tag, &[], Payload::Borrowed(data))
    }

    /// Like [`raw_send`], but takes ownership so the RDMA path can expose
    /// the buffer directly instead of `copy_from_slice`-ing it — the
    /// zero-copy hot path for payloads a collective already owns.
    pub(crate) fn raw_send_owned(&self, dst: usize, wire_tag: u64, data: Bytes) -> Result<()> {
        self.send_frame(dst, wire_tag, &[], Payload::Owned(data))
    }

    /// Sends `[prefix | data]` as one contiguous frame without the caller
    /// materialising the concatenation. Collectives use an 8-byte length
    /// prefix on frames whose receiver cannot otherwise know the total
    /// payload size (bcast and allgather frame 0).
    pub(crate) fn raw_send_prefixed(
        &self,
        dst: usize,
        wire_tag: u64,
        prefix: &[u8],
        data: Payload<'_>,
    ) -> Result<()> {
        self.send_frame(dst, wire_tag, prefix, data)
    }

    fn send_frame(&self, dst: usize, wire_tag: u64, prefix: &[u8], data: Payload<'_>) -> Result<()> {
        let ep = &self.inst.endpoint;
        let dst_addr = self.members[dst];
        let len = prefix.len() + data.len();
        let eager = len < self.inst.config.rdma_threshold;
        let mut sp = hpcsim::trace::span("mona", "mona.send");
        if sp.active() {
            sp.arg("kind", if eager { "eager" } else { "rdma" });
            sp.arg("bytes", len);
            sp.arg("dst", dst);
        }
        self.inst.charge_op();
        if eager {
            let mut buf = BytesMut::with_capacity(len + 1);
            buf.put_u8(KIND_EAGER);
            buf.put_slice(prefix);
            buf.put_slice(data.as_slice());
            ep.send(dst_addr, wire_tag, buf.freeze())
        } else {
            // RDMA path: expose, notify, wait for the receiver's ack. An
            // owned unprefixed payload is exposed as-is (no copy).
            ep.ctx().advance(self.inst.config.rdma_extra_ns);
            let exposed = match data {
                Payload::Owned(b) if prefix.is_empty() => b,
                other => {
                    let mut buf = BytesMut::with_capacity(len);
                    buf.put_slice(prefix);
                    buf.put_slice(other.as_slice());
                    buf.freeze()
                }
            };
            let handle = ep.expose(exposed);
            let mut notice = BytesMut::with_capacity(25);
            notice.put_u8(KIND_RDMA);
            notice.put_u64_le(handle.owner.0);
            notice.put_u64_le(handle.key);
            notice.put_u64_le(handle.size as u64);
            ep.send_control(dst_addr, wire_tag, notice.freeze())?;
            let ack = ep.recv(RecvSelector::exact(dst_addr, ack_tag(wire_tag)));
            ep.unexpose(handle).ok();
            ack.map(|_| ())
        }
    }

    /// Low-level tagged receive used by both p2p and collectives. Returns
    /// the payload and the source *rank*.
    pub(crate) fn raw_recv(&self, src: Option<usize>, wire_tag: u64) -> Result<(Bytes, usize)> {
        let ep = &self.inst.endpoint;
        let mut sp = hpcsim::trace::span("mona", "mona.recv");
        self.inst.charge_op();
        let sel = match src {
            Some(r) => RecvSelector::exact(self.members[r], wire_tag),
            None => RecvSelector::tag(wire_tag),
        };
        let msg = ep.recv(sel)?;
        let src_rank = self
            .members
            .iter()
            .position(|&a| a == msg.src)
            .ok_or(NaError::Unreachable(msg.src))?;
        let (kind, body) = msg
            .data
            .split_first()
            .map(|(k, _)| (*k, msg.data.slice(1..)))
            .ok_or(NaError::ShortFrame { need: 1, have: 0 })?;
        match kind {
            KIND_EAGER => {
                if sp.active() {
                    sp.arg("kind", "eager");
                    sp.arg("bytes", body.len());
                    sp.arg("src", src_rank);
                }
                Ok((body, src_rank))
            }
            KIND_RDMA => {
                let owner = Address(u64_at(&body, 0)?);
                let key = u64_at(&body, 8)?;
                let size = u64_at(&body, 16)? as usize;
                if sp.active() {
                    sp.arg("kind", "rdma");
                    sp.arg("bytes", size);
                    sp.arg("src", src_rank);
                }
                let handle = na::BulkHandle { owner, key, size };
                let data = ep.rdma_get(handle, 0, size)?;
                ep.send_control(msg.src, ack_tag(wire_tag), Bytes::new())?;
                Ok((data, src_rank))
            }
            other => Err(NaError::BadFrameKind(other)),
        }
    }
}

fn ack_tag(wire_tag: u64) -> u64 {
    if wire_tag & COLL_BIT != 0 {
        wire_tag | COLL_ACK_BIT
    } else {
        wire_tag | P2P_ACK_BIT
    }
}

/// Reads a little-endian u64 at `off`, surfacing a typed [`NaError::ShortFrame`]
/// instead of panicking when the frame is truncated.
fn u64_at(b: &[u8], off: usize) -> Result<u64> {
    match b.get(off..off + 8) {
        Some(s) => Ok(u64::from_le_bytes(s.try_into().expect("slice is 8 bytes"))),
        None => Err(NaError::ShortFrame {
            need: off + 8,
            have: b.len(),
        }),
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    pub(crate) use crate::testing::with_comm;

    #[test]
    fn p2p_eager_roundtrip() {
        let out = with_comm(2, MonaConfig::default(), |comm| {
            if comm.rank() == 0 {
                comm.send(b"ping", 1, 5).unwrap();
                Vec::new()
            } else {
                comm.recv(0, 5).unwrap().to_vec()
            }
        });
        assert_eq!(out[1], b"ping");
    }

    #[test]
    fn p2p_rdma_roundtrip() {
        let big = vec![7u8; 64 * 1024];
        let expect = big.clone();
        let out = with_comm(2, MonaConfig::default(), move |comm| {
            if comm.rank() == 0 {
                comm.send(&big, 1, 1).unwrap();
                Vec::new()
            } else {
                comm.recv(0, 1).unwrap().to_vec()
            }
        });
        assert_eq!(out[1], expect);
    }

    #[test]
    fn rdma_send_leaves_no_exposure() {
        // After a completed large send the exposure table must be empty.
        let out = with_comm(2, MonaConfig::default(), |comm| {
            if comm.rank() == 0 {
                comm.send(&vec![1u8; 32 * 1024], 1, 0).unwrap();
                comm.instance().endpoint().fabric().exposure_count()
            } else {
                comm.recv(0, 0).unwrap();
                0
            }
        });
        assert_eq!(out[0], 0);
    }

    #[test]
    fn sendrecv_crossing_large_messages_does_not_deadlock() {
        let out = with_comm(2, MonaConfig::default(), |comm| {
            let peer = 1 - comm.rank();
            let data = vec![comm.rank() as u8; 100 * 1024];
            let got = comm.sendrecv(&data, peer, 3, peer, 3).unwrap();
            got[0]
        });
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn isend_irecv_complete() {
        let out = with_comm(2, MonaConfig::default(), |comm| {
            if comm.rank() == 0 {
                let r = comm.isend(vec![9u8; 10], 1, 2);
                r.wait().unwrap();
                0
            } else {
                let r = comm.irecv(0, 2);
                r.wait().unwrap().unwrap()[0]
            }
        });
        assert_eq!(out[1], 9);
    }

    #[test]
    fn recv_any_reports_source_rank() {
        let out = with_comm(3, MonaConfig::default(), |comm| {
            if comm.rank() == 0 {
                let mut seen = Vec::new();
                for _ in 0..2 {
                    let (data, src) = comm.recv_any(9).unwrap();
                    seen.push((data[0], src));
                }
                seen.sort_unstable();
                seen
            } else {
                comm.send(&[comm.rank() as u8], 0, 9).unwrap();
                Vec::new()
            }
        });
        assert_eq!(out[0], vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn communicators_with_different_contexts_do_not_collide() {
        let out = with_comm(2, MonaConfig::default(), |comm| {
            let comm2 = comm.dup();
            if comm.rank() == 0 {
                // Send on comm2 first, then comm; receiver reads comm first.
                comm2.send(b"two", 1, 0).unwrap();
                comm.send(b"one", 1, 0).unwrap();
                Vec::new()
            } else {
                let a = comm.recv(0, 0).unwrap().to_vec();
                let b = comm2.recv(0, 0).unwrap().to_vec();
                vec![a, b]
            }
        });
        assert_eq!(out[1], vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn truncated_rdma_notice_is_a_typed_error_not_a_panic() {
        // A KIND_RDMA frame carrying only the owner field (8 of the 24
        // header bytes) must surface ShortFrame, not panic the receiver.
        let out = with_comm(2, MonaConfig::default(), |comm| {
            if comm.rank() == 0 {
                let mut buf = BytesMut::with_capacity(9);
                buf.put_u8(KIND_RDMA);
                buf.put_u64_le(42);
                let ep = comm.instance().endpoint();
                ep.send(comm.address_of(1), comm.p2p_tag(4), buf.freeze())
                    .unwrap();
                String::new()
            } else {
                match comm.recv(0, 4) {
                    Err(NaError::ShortFrame { need: 16, have: 8 }) => "short".into(),
                    other => format!("unexpected: {other:?}"),
                }
            }
        });
        assert_eq!(out[1], "short");
    }

    #[test]
    fn unknown_frame_kind_is_a_typed_error() {
        let out = with_comm(2, MonaConfig::default(), |comm| {
            if comm.rank() == 0 {
                let ep = comm.instance().endpoint();
                ep.send(
                    comm.address_of(1),
                    comm.p2p_tag(4),
                    Bytes::from_static(&[9, 0, 0]),
                )
                .unwrap();
                String::new()
            } else {
                match comm.recv(0, 4) {
                    Err(NaError::BadFrameKind(9)) => "bad-kind".into(),
                    other => format!("unexpected: {other:?}"),
                }
            }
        });
        assert_eq!(out[1], "bad-kind");
    }

    #[test]
    fn empty_frame_is_a_typed_error() {
        let out = with_comm(2, MonaConfig::default(), |comm| {
            if comm.rank() == 0 {
                let ep = comm.instance().endpoint();
                ep.send(comm.address_of(1), comm.p2p_tag(4), Bytes::new())
                    .unwrap();
                String::new()
            } else {
                match comm.recv(0, 4) {
                    Err(NaError::ShortFrame { need: 1, have: 0 }) => "empty".into(),
                    other => format!("unexpected: {other:?}"),
                }
            }
        });
        assert_eq!(out[1], "empty");
    }

    #[test]
    fn comm_id_depends_on_members_and_context() {
        let a = vec![Address(1), Address(2)];
        let b = vec![Address(1), Address(3)];
        assert_ne!(comm_id(&a, 0), comm_id(&b, 0));
        assert_ne!(comm_id(&a, 0), comm_id(&a, 1));
        assert_eq!(comm_id(&a, 0), comm_id(&a, 0));
    }

    #[test]
    #[should_panic(expected = "not in the member list")]
    fn creating_a_comm_without_self_panics() {
        with_comm(1, MonaConfig::default(), |comm| {
            let inst = Arc::clone(comm.instance());
            let _ = inst.comm_create(vec![Address(u64::MAX)]);
        });
    }
}
