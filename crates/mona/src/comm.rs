//! MoNA instances and communicators: lifecycle plus the point-to-point
//! protocol layer (eager vs RDMA) that collectives build on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::{BufMut, Bytes, BytesMut};
use parking_lot::Mutex;

use na::{Address, Endpoint, Fabric, NaError, RecvSelector};

use crate::coll::opcode;
use crate::pool::BufferPool;
use crate::{MonaError, Result};

/// Tunables and calibrated cost constants for a MoNA instance.
#[derive(Debug, Clone, Copy)]
pub struct MonaConfig {
    /// Messages of at least this many bytes use the RDMA path (expose +
    /// notice + remote get + ack) instead of the eager path.
    pub rdma_threshold: usize,
    /// Software overhead charged per send or receive operation: MoNA's
    /// progress loop runs through Argobots and a generic request layer.
    pub sw_op_ns: u64,
    /// Extra overhead per operation when buffer pooling is disabled — the
    /// "many small allocations" the paper says raw NA suffers from.
    pub alloc_ns: u64,
    /// Whether request/buffer caching is active. Disabling it reproduces
    /// the raw-NA rows of Table I and is one of the DESIGN.md ablations.
    pub pooling: bool,
    /// Extra initiator-side cost of MoNA's RDMA path: NA-level memory
    /// registration and handle marshaling are costlier than a vendor
    /// MPI's pre-registered pools (calibrated from Table I's 16 KiB row).
    pub rdma_extra_ns: u64,
    /// Algorithm-selection table for the collective engine (DESIGN.md §11).
    pub coll: CollTuning,
    /// Fault-tolerance knobs (DESIGN.md §12): crash-aware receives and the
    /// per-operation deadline backstop.
    pub fault: FaultConfig,
}

impl Default for MonaConfig {
    fn default() -> Self {
        Self {
            rdma_threshold: 16 * 1024,
            sw_op_ns: 380,
            alloc_ns: 90,
            pooling: true,
            rdma_extra_ns: 3_800,
            coll: CollTuning::default(),
            fault: FaultConfig::default(),
        }
    }
}

/// Fault-tolerance configuration for receives (DESIGN.md §12).
///
/// Crash awareness proper is event-driven: once the instance is armed
/// ([`MonaInstance::arm_fault_detection`], done by Colza when it wires the
/// SSG observer), blocked receives re-check the dead-member set and the
/// communicator's revoke-notice channel every `poll`, so an SSG death
/// verdict or a peer's revoke broadcast unblocks them with
/// [`MonaError::Revoked`]. `recv_deadline` is only the backstop for the
/// case where no detector ever fires.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Real-time ceiling for one blocked receive. When it expires the
    /// awaited peer is suspected dead, the communicator is revoked, and
    /// the receive returns [`MonaError::Revoked`] (or a plain NA timeout
    /// for a wildcard receive with no one to suspect). `None` waits
    /// forever, as MoNA historically did.
    pub recv_deadline: Option<Duration>,
    /// How often a blocked receive re-checks crash notifications. Polling
    /// exchanges no messages and advances no virtual clock, so it cannot
    /// perturb deterministic traces.
    pub poll: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            recv_deadline: None,
            poll: Duration::from_millis(2),
        }
    }
}

impl MonaConfig {
    /// The configuration modelling *raw NA* usage: no request/buffer
    /// caching and no RDMA protocol switch (NA alone has no matching
    /// rendezvous logic — the paper's NA column stops at 2 KiB).
    pub fn raw_na() -> Self {
        Self {
            pooling: false,
            ..Default::default()
        }
    }

    /// A configuration that pins every collective to the naive MPICH
    /// "classic" algorithm (whole-payload binomial trees, reduce-then-bcast
    /// allreduce). Used as the oracle/baseline by tests and `bench_coll`.
    pub fn naive_collectives() -> Self {
        Self {
            coll: CollTuning::naive(),
            ..Default::default()
        }
    }
}

/// Every split the collective engine makes (pipeline chunks, Rabenseifner
/// blocks) falls on a multiple of this, so any elementwise [`crate::ReduceOp`]
/// whose record width divides 64 bytes can be applied to sub-ranges.
pub const COLL_ALIGN: usize = 64;

/// The widest round/chunk index a collective wire tag can carry (12 bits).
pub(crate) const MAX_ROUNDS: usize = 1 << 12;

/// The size-adaptive collective engine's selection table: which algorithm
/// each collective uses as a function of message size and communicator
/// size, mirroring MPICH's switchover design (the paper says MoNA follows
/// it). See DESIGN.md §11 for the calibration.
#[derive(Debug, Clone, Copy)]
pub struct CollTuning {
    /// Payloads of at least this many bytes are segmented into pipeline
    /// chunks so intermediate tree ranks forward chunk *k* while chunk
    /// *k+1* is still in flight. Chunks ride the non-blocking eager path,
    /// which is what lets tree levels overlap.
    pub pipeline_threshold: usize,
    /// Pipeline segment size. Rounded up to [`COLL_ALIGN`]; grown when a
    /// payload would otherwise need more than 4096 chunks (the round-field
    /// width). 12 KiB keeps chunks under the RDMA threshold and the
    /// per-chunk CPU cost below the RDMA per-byte wire cost.
    pub pipeline_chunk: usize,
    /// Upper end of the pipelining window: payloads of this many bytes or
    /// more go back to whole-payload trees. Above here the eager chunks'
    /// per-byte copy cost outweighs the tree-level overlap they buy, and
    /// the single zero-copy RDMA transfer per edge wins (measured
    /// crossover ≈ 170 KiB at 16 ranks, higher at 64 — see
    /// `results/BENCH_coll.json`).
    pub pipeline_max: usize,
    /// `allreduce` switches to Rabenseifner (ring reduce-scatter + ring
    /// allgather) once the per-rank block `len / n` reaches this size —
    /// below it the 2(n−1) ring messages cost more than they save.
    pub rabenseifner_block: usize,
}

impl Default for CollTuning {
    fn default() -> Self {
        Self {
            pipeline_threshold: 12 * 1024,
            pipeline_chunk: 12 * 1024,
            pipeline_max: 160 * 1024,
            rabenseifner_block: 4 * 1024,
        }
    }
}

/// How a payload is segmented on the wire: `count` frames of at most
/// `chunk` bytes (the last one ragged).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FramePlan {
    /// Frame payload size (multiple of [`COLL_ALIGN`]).
    pub chunk: usize,
    /// Number of frames (≥ 1; 1 means "not pipelined").
    pub count: usize,
}

impl FramePlan {
    /// Byte range of frame `k` within a `len`-byte payload.
    pub fn range(&self, k: usize, len: usize) -> std::ops::Range<usize> {
        let start = (k * self.chunk).min(len);
        let end = ((k + 1) * self.chunk).min(len);
        start..end
    }
}

fn align_up(v: usize, to: usize) -> usize {
    v.div_ceil(to) * to
}

impl CollTuning {
    /// A tuning that never pipelines and never selects Rabenseifner —
    /// i.e. the pre-engine naive algorithms.
    pub fn naive() -> Self {
        Self {
            pipeline_threshold: usize::MAX,
            pipeline_chunk: 12 * 1024,
            pipeline_max: usize::MAX,
            rabenseifner_block: usize::MAX,
        }
    }

    /// The wire segmentation for a `len`-byte payload: a single frame
    /// below `pipeline_threshold`, chunked above it. Both sides of an
    /// edge compute this from `len` alone, so it is a deterministic
    /// function of size — never of wall-clock state.
    pub fn frames(&self, len: usize) -> FramePlan {
        if len < self.pipeline_threshold || len >= self.pipeline_max || len == 0 {
            return FramePlan {
                chunk: len.max(1),
                count: 1,
            };
        }
        let mut chunk = align_up(self.pipeline_chunk.max(1), COLL_ALIGN);
        let min_chunk = len.div_ceil(MAX_ROUNDS);
        if chunk < min_chunk {
            chunk = align_up(min_chunk, COLL_ALIGN);
        }
        FramePlan {
            chunk,
            count: len.div_ceil(chunk).max(1),
        }
    }

    /// Whether `allreduce(len)` on an `n`-rank communicator uses
    /// Rabenseifner. Division keeps the `usize::MAX` sentinel overflow-free.
    pub fn use_rabenseifner(&self, len: usize, n: usize) -> bool {
        n > 1 && len / n >= self.rabenseifner_block
    }

    /// The algorithm `bcast`/`reduce` will use (bench/test labeling).
    pub fn tree_algorithm(&self, len: usize, n: usize) -> &'static str {
        if n <= 1 {
            "identity"
        } else if self.frames(len).count > 1 {
            "pipelined-binomial"
        } else {
            "binomial"
        }
    }

    /// The algorithm `allreduce` will use (bench/test labeling).
    pub fn allreduce_algorithm(&self, len: usize, n: usize) -> &'static str {
        if n <= 1 {
            "identity"
        } else if self.use_rabenseifner(len, n) {
            "rabenseifner"
        } else if self.frames(len).count > 1 {
            "pipelined-reduce+bcast"
        } else {
            "reduce+bcast"
        }
    }

    /// The algorithm `allgather` will use for `len`-byte per-rank blocks.
    pub fn allgather_algorithm(&self, len: usize, n: usize) -> &'static str {
        if n <= 1 {
            "identity"
        } else if self.frames(len).count > 1 {
            "ring-pipelined"
        } else {
            "ring"
        }
    }
}

/// A MoNA progress-loop instance (the `mona_instance_t` of the C library).
pub struct MonaInstance {
    endpoint: Arc<Endpoint>,
    config: MonaConfig,
    task_pool: argo::Pool,
    pub(crate) buffers: BufferPool,
    /// Addresses known (or suspected) dead, fed from SSG observers via
    /// [`MonaInstance::mark_dead`]. Instance-wide: every communicator on
    /// this instance consults it.
    dead: Mutex<Vec<Address>>,
    /// Whether crash detection is wired up. Until armed, receives take the
    /// plain blocking fast path — polling only starts once somebody (the
    /// Colza provider, a test harness) can actually deliver death verdicts.
    armed: AtomicBool,
}

impl MonaInstance {
    /// Initializes MoNA for the calling simulated process, opening a fresh
    /// NA endpoint on `fabric`.
    pub fn init(fabric: &Fabric) -> Arc<Self> {
        Self::from_endpoint(Arc::new(fabric.open()), MonaConfig::default())
    }

    /// Initializes with an explicit configuration.
    pub fn init_with(fabric: &Fabric, config: MonaConfig) -> Arc<Self> {
        Self::from_endpoint(Arc::new(fabric.open()), config)
    }

    /// Wraps an already-open endpoint (shared with margo, as Colza does).
    pub fn from_endpoint(endpoint: Arc<Endpoint>, config: MonaConfig) -> Arc<Self> {
        let ctx = Arc::clone(endpoint.ctx());
        let task_pool = argo::PoolBuilder::new(format!("mona-{}", endpoint.address()))
            .xstreams(2)
            .task_wrapper(Arc::new(move |task| {
                hpcsim::process::enter(Arc::clone(&ctx), task)
            }))
            .build();
        Arc::new(Self {
            endpoint,
            config,
            task_pool,
            buffers: BufferPool::default(),
            dead: Mutex::new(Vec::new()),
            armed: AtomicBool::new(false),
        })
    }

    /// This instance's NA address.
    pub fn address(&self) -> Address {
        self.endpoint.address()
    }

    /// The underlying endpoint.
    pub fn endpoint(&self) -> &Arc<Endpoint> {
        &self.endpoint
    }

    /// The active configuration.
    pub fn config(&self) -> &MonaConfig {
        &self.config
    }

    pub(crate) fn task_pool(&self) -> &argo::Pool {
        &self.task_pool
    }

    /// Charges the per-operation software overhead to the caller's clock.
    pub(crate) fn charge_op(&self) {
        let mut ns = self.config.sw_op_ns;
        if !self.config.pooling {
            ns += self.config.alloc_ns;
        }
        self.endpoint.ctx().advance(ns);
    }

    /// Builds a communicator over `members` (context 0). The caller's own
    /// address must appear in the list; its index becomes the rank.
    pub fn comm_create(self: &Arc<Self>, members: Vec<Address>) -> Result<Communicator> {
        self.comm_create_with_context(members, 0)
    }

    /// Builds a communicator with an explicit context id, allowing several
    /// communicators over the same member list to coexist.
    pub fn comm_create_with_context(
        self: &Arc<Self>,
        members: Vec<Address>,
        context: u64,
    ) -> Result<Communicator> {
        self.comm_create_inner(members, context, 0)
    }

    fn comm_create_inner(
        self: &Arc<Self>,
        members: Vec<Address>,
        context: u64,
        epoch: u64,
    ) -> Result<Communicator> {
        let me = self.address();
        let rank = members
            .iter()
            .position(|&a| a == me)
            .unwrap_or_else(|| panic!("{me} is not in the member list"));
        let cid = comm_id(&members, context, epoch);
        Ok(Communicator {
            inst: Arc::clone(self),
            members: Arc::new(members),
            rank,
            cid,
            context,
            epoch,
            seq: Arc::new(AtomicU64::new(0)),
            notified: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Enables crash-aware receives on this instance. Colza calls this
    /// when it wires the SSG observer into [`MonaInstance::mark_dead`];
    /// until then blocked receives never poll, matching the historical
    /// behaviour exactly.
    pub fn arm_fault_detection(&self) {
        self.armed.store(true, Ordering::Release);
    }

    /// Whether crash detection is armed (observer wired or a death seen).
    pub fn fault_armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// Records `addr` as dead. Idempotent; arms fault detection so that
    /// receives already blocked start noticing. Fed from SSG `Died`/`Left`
    /// observer events and from MoNA's own send failures / deadline
    /// expiries.
    pub fn mark_dead(&self, addr: Address) {
        let mut dead = self.dead.lock();
        if !dead.contains(&addr) {
            dead.push(addr);
            hpcsim::trace::counter_add("mona.revoke.marked", 1);
        }
        drop(dead);
        self.arm_fault_detection();
    }

    /// Addresses currently marked dead.
    pub fn dead_members(&self) -> Vec<Address> {
        self.dead.lock().clone()
    }

    /// Whether `addr` is marked dead.
    pub fn is_dead(&self, addr: Address) -> bool {
        self.dead.lock().contains(&addr)
    }
}

/// Deterministic communicator id from the membership, a context value and
/// the shrink epoch. Folding the epoch in moves the *entire* collective
/// tag region when a communicator is shrunk, so traffic from the revoked
/// generation can never match a receive on the new one.
fn comm_id(members: &[Address], context: u64, epoch: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325
        ^ context.wrapping_mul(0x1000_0000_01b3)
        ^ epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for a in members {
        h ^= a.0;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h & CID_MASK
}

const CID_MASK: u64 = (1 << 18) - 1;
const SUB_BITS: u64 = 26;
const P2P_ACK_BIT: u64 = 1 << 16;
const COLL_BIT: u64 = 1 << 25;
// Collective wire-tag layout (below COLL_BIT): bits 0..=4 opcode,
// bits 5..=16 round/chunk index, bit 17 ack, bits 18..=24 sequence
// number mod 128. The 12-bit round field is what fixes the old
// 6-bit allgather step mask that cross-talked past 64 ranks.
const COLL_ACK_BIT: u64 = 1 << 17;
const COLL_ROUND_SHIFT: u64 = 5;
const COLL_SEQ_SHIFT: u64 = 18;
const COLL_SEQ_MASK: u64 = 0x7F;

/// Message kinds on the wire.
const KIND_EAGER: u8 = 0;
const KIND_RDMA: u8 = 1;

/// A send payload that is either borrowed (copied into the wire frame) or
/// owned (handed to the fabric without a copy where the path allows it).
pub(crate) enum Payload<'a> {
    Borrowed(&'a [u8]),
    Owned(Bytes),
}

impl Payload<'_> {
    fn len(&self) -> usize {
        match self {
            Payload::Borrowed(s) => s.len(),
            Payload::Owned(b) => b.len(),
        }
    }

    fn as_slice(&self) -> &[u8] {
        match self {
            Payload::Borrowed(s) => s,
            Payload::Owned(b) => b,
        }
    }
}

/// A MoNA communicator: a rank within an explicit member list.
///
/// Cloning is cheap and yields a handle sharing the collective sequence
/// counter — clones are for moving into non-blocking tasks, not for
/// concurrent independent use.
#[derive(Clone)]
pub struct Communicator {
    pub(crate) inst: Arc<MonaInstance>,
    members: Arc<Vec<Address>>,
    rank: usize,
    cid: u64,
    context: u64,
    epoch: u64,
    seq: Arc<AtomicU64>,
    /// Whether this communicator has already broadcast revoke notices —
    /// shared across clones so the abort storm is sent exactly once.
    notified: Arc<AtomicBool>,
}

impl Communicator {
    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The member list, in rank order.
    pub fn members(&self) -> &[Address] {
        &self.members
    }

    /// The address of a rank.
    pub fn address_of(&self, rank: usize) -> Address {
        self.members[rank]
    }

    /// The owning instance.
    pub fn instance(&self) -> &Arc<MonaInstance> {
        &self.inst
    }

    /// A new communicator over the same members with a fresh context
    /// (disjoint tag space).
    pub fn dup(&self) -> Communicator {
        self.inst
            .comm_create_inner(
                (*self.members).clone(),
                self.context.wrapping_add(1),
                self.epoch,
            )
            .expect("self is a member")
    }

    /// The shrink generation of this communicator (0 for a fresh one).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Rebuilds a usable communicator over `survivors` without a fresh
    /// 2PC: same context, next epoch, fresh sequence counter. The epoch
    /// is folded into the communicator id, so the new tag region is
    /// disjoint from the revoked one and stale traffic is simply never
    /// matched.
    pub fn shrink(&self, survivors: &[Address]) -> Result<Communicator> {
        let me = self.inst.address();
        if !survivors.contains(&me) {
            return Err(MonaError::Protocol("shrink: caller not in survivor list"));
        }
        if let Some(&d) = survivors.iter().find(|&&a| self.inst.is_dead(a)) {
            let _ = d;
            return Err(MonaError::Protocol(
                "shrink: survivor list contains a member marked dead",
            ));
        }
        hpcsim::trace::counter_add("mona.comm.shrink", 1);
        self.inst
            .comm_create_inner(survivors.to_vec(), self.context, self.epoch.wrapping_add(1))
    }

    /// The control tag revoke notices for this communicator travel on.
    /// Round and seq 0 keep it constant for the communicator's lifetime,
    /// so a receiver can drain it with a plain tag selector.
    fn revoke_tag(&self) -> u64 {
        self.coll_tag(0, opcode::REVOKE, 0)
    }

    /// Members of *this communicator* currently marked dead.
    fn dead_here(&self) -> Vec<Address> {
        self.members
            .iter()
            .copied()
            .filter(|&a| self.inst.is_dead(a))
            .collect()
    }

    /// Returns `Revoked` if any member of this communicator is marked
    /// dead, broadcasting revoke notices to the survivors first.
    fn check_revoked(&self) -> Result<()> {
        let dead = self.dead_here();
        if dead.is_empty() {
            return Ok(());
        }
        self.broadcast_revoke(&dead);
        Err(MonaError::Revoked {
            epoch: self.epoch,
            dead,
        })
    }

    /// Consumes queued revoke notices for this communicator. A notice
    /// carries `[epoch u64 | n u64 | n * addr u64]`; notices from an
    /// older epoch are stale traffic from a revoked generation and are
    /// discarded (counted, not acted on). Fresh ones feed the instance
    /// dead-set so `check_revoked` fires.
    fn drain_revoke_notices(&self) {
        let ep = &self.inst.endpoint;
        while let Some(msg) = ep.try_recv(RecvSelector::tag(self.revoke_tag())) {
            let body = &msg.data[..];
            let Ok(epoch) = u64_at(body, 0) else { continue };
            if epoch < self.epoch {
                hpcsim::trace::counter_add("mona.revoke.stale", 1);
                continue;
            }
            hpcsim::trace::counter_add("mona.revoke.recv", 1);
            let n = u64_at(body, 8).unwrap_or(0) as usize;
            for i in 0..n {
                if let Ok(raw) = u64_at(body, 16 + 8 * i) {
                    self.inst.mark_dead(Address(raw));
                }
            }
        }
    }

    /// Propagates the abort: sends one revoke notice to every *live*
    /// member (never to the dead — a send to a crashed endpoint would
    /// perturb the fault trace), in rank order, exactly once per
    /// communicator. Send failures are ignored: an unreachable survivor
    /// will discover the revocation through its own detector.
    fn broadcast_revoke(&self, dead: &[Address]) {
        if self.notified.swap(true, Ordering::AcqRel) {
            return;
        }
        let mut sp = hpcsim::trace::span("mona", "mona.revoke");
        if sp.active() {
            sp.arg("epoch", self.epoch);
            sp.arg("dead", dead.len());
        }
        let ep = &self.inst.endpoint;
        let me = self.inst.address();
        let mut notice = BytesMut::with_capacity(16 + 8 * dead.len());
        notice.put_u64_le(self.epoch);
        notice.put_u64_le(dead.len() as u64);
        for d in dead {
            notice.put_u64_le(d.0);
        }
        let notice = notice.freeze();
        let mut sent = 0u64;
        for &m in self.members.iter() {
            if m == me || dead.contains(&m) {
                continue;
            }
            if ep.send_control(m, self.revoke_tag(), notice.clone()).is_ok() {
                sent += 1;
            }
        }
        hpcsim::trace::counter_add("mona.revoke.sent", sent);
    }

    /// Crash-aware blocking receive. The fast path (detection not armed,
    /// no deadline configured) is a plain blocking `recv`, byte-for-byte
    /// the historical behaviour. Otherwise the wait is sliced into short
    /// polls; each slice re-checks the dead-set and drains revoke
    /// notices, so an SSG death verdict or a peer's abort unblocks this
    /// receive with [`MonaError::Revoked`]. `waiting_on` names the peer
    /// to suspect if the `recv_deadline` backstop expires; a wildcard
    /// receive has no one to suspect and surfaces a plain NA timeout.
    fn recv_msg(&self, sel: RecvSelector, waiting_on: Option<Address>) -> Result<na::InMsg> {
        let ep = &self.inst.endpoint;
        let deadline = self.inst.config.fault.recv_deadline;
        if !self.inst.fault_armed() && deadline.is_none() {
            return ep.recv(sel).map_err(MonaError::from);
        }
        self.check_revoked()?;
        let poll = self.inst.config.fault.poll;
        let started = std::time::Instant::now();
        loop {
            match ep.recv_timeout(sel, Some(poll)) {
                Ok(msg) => return Ok(msg),
                Err(NaError::Timeout) => {}
                Err(e) => return Err(e.into()),
            }
            self.drain_revoke_notices();
            self.check_revoked()?;
            if let Some(limit) = deadline {
                if started.elapsed() >= limit {
                    return match waiting_on {
                        Some(peer) => {
                            hpcsim::trace::counter_add("mona.revoke.deadline", 1);
                            self.inst.mark_dead(peer);
                            self.check_revoked()?;
                            unreachable!("awaited peer was just marked dead")
                        }
                        None => Err(NaError::Timeout.into()),
                    };
                }
            }
        }
    }

    /// Marks `dst_addr` dead after a send failure, revokes, and returns
    /// the typed revocation for the caller to propagate.
    fn fail_send(&self, dst_addr: Address) -> MonaError {
        self.inst.mark_dead(dst_addr);
        let dead = self.dead_here();
        self.broadcast_revoke(&dead);
        MonaError::Revoked {
            epoch: self.epoch,
            dead,
        }
    }

    fn p2p_tag(&self, tag: u16) -> u64 {
        na::tags::MONA_BASE | (self.cid << SUB_BITS) | tag as u64
    }

    /// The wire tag for round `round` of opcode `op` within collective
    /// number `seq`. Sequence numbers wrap at 128, which is safe because
    /// collectives are issued in order on each communicator and the NA
    /// mailbox is FIFO per (source, tag) — a tag cannot be reused while a
    /// message wearing it is still queued.
    pub(crate) fn coll_tag(&self, seq: u64, op: u16, round: u32) -> u64 {
        debug_assert!(op < 32, "collective opcode field is 5 bits");
        debug_assert!((round as usize) < MAX_ROUNDS, "round field is 12 bits");
        na::tags::MONA_BASE
            | (self.cid << SUB_BITS)
            | COLL_BIT
            | ((seq & COLL_SEQ_MASK) << COLL_SEQ_SHIFT)
            | ((round as u64) << COLL_ROUND_SHIFT)
            | op as u64
    }

    pub(crate) fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Sends `data` to `dst` with a user tag. Eager below the RDMA
    /// threshold (buffered, returns immediately); RDMA above it (blocks
    /// until the receiver has pulled the data).
    pub fn send(&self, data: &[u8], dst: usize, tag: u16) -> Result<()> {
        self.raw_send(dst, self.p2p_tag(tag), data)
    }

    /// Receives a message from `src` with a user tag.
    pub fn recv(&self, src: usize, tag: u16) -> Result<Bytes> {
        self.raw_recv(Some(src), self.p2p_tag(tag)).map(|(b, _)| b)
    }

    /// Receives a message with the given tag from any rank, returning the
    /// payload and the source rank.
    pub fn recv_any(&self, tag: u16) -> Result<(Bytes, usize)> {
        self.raw_recv(None, self.p2p_tag(tag))
    }

    /// Simultaneous send and receive (deadlock-safe even for large
    /// messages: the send side runs as a background task).
    pub fn sendrecv(
        &self,
        data: &[u8],
        dst: usize,
        send_tag: u16,
        src: usize,
        recv_tag: u16,
    ) -> Result<Bytes> {
        let req = self.isend(data.to_vec(), dst, send_tag);
        let out = self.recv(src, recv_tag)?;
        req.wait()?;
        Ok(out)
    }

    /// Non-blocking send; completion means the data is delivered (eager)
    /// or pulled by the receiver (RDMA).
    pub fn isend(&self, data: Vec<u8>, dst: usize, tag: u16) -> crate::Request {
        let wire_tag = self.p2p_tag(tag);
        if data.len() < self.inst.config.rdma_threshold {
            // Eager sends are buffered; complete immediately.
            crate::Request::ready(self.raw_send(dst, wire_tag, &data).map(|()| None))
        } else {
            let this = self.clone();
            crate::Request::pending(
                self.inst
                    .task_pool()
                    .spawn(move || this.raw_send(dst, wire_tag, &data).map(|()| None)),
            )
        }
    }

    /// Non-blocking receive.
    pub fn irecv(&self, src: usize, tag: u16) -> crate::Request {
        let wire_tag = self.p2p_tag(tag);
        let this = self.clone();
        crate::Request::pending(
            self.inst
                .task_pool()
                .spawn(move || this.raw_recv(Some(src), wire_tag).map(|(b, _)| Some(b))),
        )
    }

    /// Low-level tagged send used by both p2p and collectives.
    pub(crate) fn raw_send(&self, dst: usize, wire_tag: u64, data: &[u8]) -> Result<()> {
        self.send_frame(dst, wire_tag, &[], Payload::Borrowed(data))
    }

    /// Like [`raw_send`], but takes ownership so the RDMA path can expose
    /// the buffer directly instead of `copy_from_slice`-ing it — the
    /// zero-copy hot path for payloads a collective already owns.
    pub(crate) fn raw_send_owned(&self, dst: usize, wire_tag: u64, data: Bytes) -> Result<()> {
        self.send_frame(dst, wire_tag, &[], Payload::Owned(data))
    }

    /// Sends `[prefix | data]` as one contiguous frame without the caller
    /// materialising the concatenation. Collectives use an 8-byte length
    /// prefix on frames whose receiver cannot otherwise know the total
    /// payload size (bcast and allgather frame 0).
    pub(crate) fn raw_send_prefixed(
        &self,
        dst: usize,
        wire_tag: u64,
        prefix: &[u8],
        data: Payload<'_>,
    ) -> Result<()> {
        self.send_frame(dst, wire_tag, prefix, data)
    }

    fn send_frame(&self, dst: usize, wire_tag: u64, prefix: &[u8], data: Payload<'_>) -> Result<()> {
        let ep = &self.inst.endpoint;
        let dst_addr = self.members[dst];
        if self.inst.fault_armed() {
            self.check_revoked()?;
        }
        let len = prefix.len() + data.len();
        let eager = len < self.inst.config.rdma_threshold;
        let mut sp = hpcsim::trace::span("mona", "mona.send");
        if sp.active() {
            sp.arg("kind", if eager { "eager" } else { "rdma" });
            sp.arg("bytes", len);
            sp.arg("dst", dst);
        }
        self.inst.charge_op();
        if eager {
            let mut buf = BytesMut::with_capacity(len + 1);
            buf.put_u8(KIND_EAGER);
            buf.put_slice(prefix);
            buf.put_slice(data.as_slice());
            match ep.send(dst_addr, wire_tag, buf.freeze()) {
                Ok(()) => Ok(()),
                // The peer's endpoint is gone: it crashed (or left without
                // a goodbye). Revoke instead of surfacing a raw NA error.
                Err(NaError::Unreachable(_)) => Err(self.fail_send(dst_addr)),
                Err(e) => Err(e.into()),
            }
        } else {
            // RDMA path: expose, notify, wait for the receiver's ack. An
            // owned unprefixed payload is exposed as-is (no copy).
            ep.ctx().advance(self.inst.config.rdma_extra_ns);
            let exposed = match data {
                Payload::Owned(b) if prefix.is_empty() => b,
                other => {
                    let mut buf = BytesMut::with_capacity(len);
                    buf.put_slice(prefix);
                    buf.put_slice(other.as_slice());
                    buf.freeze()
                }
            };
            let handle = ep.expose(exposed);
            let notice_res = {
                let mut notice = BytesMut::with_capacity(25);
                notice.put_u8(KIND_RDMA);
                notice.put_u64_le(handle.owner.0);
                notice.put_u64_le(handle.key);
                notice.put_u64_le(handle.size as u64);
                ep.send_control(dst_addr, wire_tag, notice.freeze())
            };
            if let Err(e) = notice_res {
                ep.unexpose(handle).ok();
                return match e {
                    NaError::Unreachable(_) => Err(self.fail_send(dst_addr)),
                    other => Err(other.into()),
                };
            }
            let ack = self.recv_msg(
                RecvSelector::exact(dst_addr, ack_tag(wire_tag)),
                Some(dst_addr),
            );
            ep.unexpose(handle).ok();
            ack.map(|_| ())
        }
    }

    /// Low-level tagged receive used by both p2p and collectives. Returns
    /// the payload and the source *rank*.
    pub(crate) fn raw_recv(&self, src: Option<usize>, wire_tag: u64) -> Result<(Bytes, usize)> {
        let ep = &self.inst.endpoint;
        let mut sp = hpcsim::trace::span("mona", "mona.recv");
        self.inst.charge_op();
        let (sel, waiting_on) = match src {
            Some(r) => (
                RecvSelector::exact(self.members[r], wire_tag),
                Some(self.members[r]),
            ),
            None => (RecvSelector::tag(wire_tag), None),
        };
        let msg = self.recv_msg(sel, waiting_on)?;
        let src_rank = self
            .members
            .iter()
            .position(|&a| a == msg.src)
            .ok_or(NaError::Unreachable(msg.src))?;
        let (kind, body) = msg
            .data
            .split_first()
            .map(|(k, _)| (*k, msg.data.slice(1..)))
            .ok_or(NaError::ShortFrame { need: 1, have: 0 })?;
        match kind {
            KIND_EAGER => {
                if sp.active() {
                    sp.arg("kind", "eager");
                    sp.arg("bytes", body.len());
                    sp.arg("src", src_rank);
                }
                Ok((body, src_rank))
            }
            KIND_RDMA => {
                let owner = Address(u64_at(&body, 0)?);
                let key = u64_at(&body, 8)?;
                let size = u64_at(&body, 16)? as usize;
                if sp.active() {
                    sp.arg("kind", "rdma");
                    sp.arg("bytes", size);
                    sp.arg("src", src_rank);
                }
                let handle = na::BulkHandle { owner, key, size };
                let data = ep.rdma_get(handle, 0, size)?;
                ep.send_control(msg.src, ack_tag(wire_tag), Bytes::new())?;
                Ok((data, src_rank))
            }
            other => Err(NaError::BadFrameKind(other).into()),
        }
    }
}

fn ack_tag(wire_tag: u64) -> u64 {
    if wire_tag & COLL_BIT != 0 {
        wire_tag | COLL_ACK_BIT
    } else {
        wire_tag | P2P_ACK_BIT
    }
}

/// Reads a little-endian u64 at `off`, surfacing a typed [`NaError::ShortFrame`]
/// instead of panicking when the frame is truncated.
fn u64_at(b: &[u8], off: usize) -> Result<u64> {
    match b.get(off..off + 8) {
        Some(s) => Ok(u64::from_le_bytes(s.try_into().expect("slice is 8 bytes"))),
        None => Err(NaError::ShortFrame {
            need: off + 8,
            have: b.len(),
        }
        .into()),
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    pub(crate) use crate::testing::with_comm;

    #[test]
    fn p2p_eager_roundtrip() {
        let out = with_comm(2, MonaConfig::default(), |comm| {
            if comm.rank() == 0 {
                comm.send(b"ping", 1, 5).unwrap();
                Vec::new()
            } else {
                comm.recv(0, 5).unwrap().to_vec()
            }
        });
        assert_eq!(out[1], b"ping");
    }

    #[test]
    fn p2p_rdma_roundtrip() {
        let big = vec![7u8; 64 * 1024];
        let expect = big.clone();
        let out = with_comm(2, MonaConfig::default(), move |comm| {
            if comm.rank() == 0 {
                comm.send(&big, 1, 1).unwrap();
                Vec::new()
            } else {
                comm.recv(0, 1).unwrap().to_vec()
            }
        });
        assert_eq!(out[1], expect);
    }

    #[test]
    fn rdma_send_leaves_no_exposure() {
        // After a completed large send the exposure table must be empty.
        let out = with_comm(2, MonaConfig::default(), |comm| {
            if comm.rank() == 0 {
                comm.send(&vec![1u8; 32 * 1024], 1, 0).unwrap();
                comm.instance().endpoint().fabric().exposure_count()
            } else {
                comm.recv(0, 0).unwrap();
                0
            }
        });
        assert_eq!(out[0], 0);
    }

    #[test]
    fn sendrecv_crossing_large_messages_does_not_deadlock() {
        let out = with_comm(2, MonaConfig::default(), |comm| {
            let peer = 1 - comm.rank();
            let data = vec![comm.rank() as u8; 100 * 1024];
            let got = comm.sendrecv(&data, peer, 3, peer, 3).unwrap();
            got[0]
        });
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn isend_irecv_complete() {
        let out = with_comm(2, MonaConfig::default(), |comm| {
            if comm.rank() == 0 {
                let r = comm.isend(vec![9u8; 10], 1, 2);
                r.wait().unwrap();
                0
            } else {
                let r = comm.irecv(0, 2);
                r.wait().unwrap().unwrap()[0]
            }
        });
        assert_eq!(out[1], 9);
    }

    #[test]
    fn recv_any_reports_source_rank() {
        let out = with_comm(3, MonaConfig::default(), |comm| {
            if comm.rank() == 0 {
                let mut seen = Vec::new();
                for _ in 0..2 {
                    let (data, src) = comm.recv_any(9).unwrap();
                    seen.push((data[0], src));
                }
                seen.sort_unstable();
                seen
            } else {
                comm.send(&[comm.rank() as u8], 0, 9).unwrap();
                Vec::new()
            }
        });
        assert_eq!(out[0], vec![(1, 1), (2, 2)]);
    }

    #[test]
    fn communicators_with_different_contexts_do_not_collide() {
        let out = with_comm(2, MonaConfig::default(), |comm| {
            let comm2 = comm.dup();
            if comm.rank() == 0 {
                // Send on comm2 first, then comm; receiver reads comm first.
                comm2.send(b"two", 1, 0).unwrap();
                comm.send(b"one", 1, 0).unwrap();
                Vec::new()
            } else {
                let a = comm.recv(0, 0).unwrap().to_vec();
                let b = comm2.recv(0, 0).unwrap().to_vec();
                vec![a, b]
            }
        });
        assert_eq!(out[1], vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn truncated_rdma_notice_is_a_typed_error_not_a_panic() {
        // A KIND_RDMA frame carrying only the owner field (8 of the 24
        // header bytes) must surface ShortFrame, not panic the receiver.
        let out = with_comm(2, MonaConfig::default(), |comm| {
            if comm.rank() == 0 {
                let mut buf = BytesMut::with_capacity(9);
                buf.put_u8(KIND_RDMA);
                buf.put_u64_le(42);
                let ep = comm.instance().endpoint();
                ep.send(comm.address_of(1), comm.p2p_tag(4), buf.freeze())
                    .unwrap();
                String::new()
            } else {
                match comm.recv(0, 4) {
                    Err(MonaError::Na(NaError::ShortFrame { need: 16, have: 8 })) => "short".into(),
                    other => format!("unexpected: {other:?}"),
                }
            }
        });
        assert_eq!(out[1], "short");
    }

    #[test]
    fn unknown_frame_kind_is_a_typed_error() {
        let out = with_comm(2, MonaConfig::default(), |comm| {
            if comm.rank() == 0 {
                let ep = comm.instance().endpoint();
                ep.send(
                    comm.address_of(1),
                    comm.p2p_tag(4),
                    Bytes::from_static(&[9, 0, 0]),
                )
                .unwrap();
                String::new()
            } else {
                match comm.recv(0, 4) {
                    Err(MonaError::Na(NaError::BadFrameKind(9))) => "bad-kind".into(),
                    other => format!("unexpected: {other:?}"),
                }
            }
        });
        assert_eq!(out[1], "bad-kind");
    }

    #[test]
    fn empty_frame_is_a_typed_error() {
        let out = with_comm(2, MonaConfig::default(), |comm| {
            if comm.rank() == 0 {
                let ep = comm.instance().endpoint();
                ep.send(comm.address_of(1), comm.p2p_tag(4), Bytes::new())
                    .unwrap();
                String::new()
            } else {
                match comm.recv(0, 4) {
                    Err(MonaError::Na(NaError::ShortFrame { need: 1, have: 0 })) => "empty".into(),
                    other => format!("unexpected: {other:?}"),
                }
            }
        });
        assert_eq!(out[1], "empty");
    }

    #[test]
    fn comm_id_depends_on_members_context_and_epoch() {
        let a = vec![Address(1), Address(2)];
        let b = vec![Address(1), Address(3)];
        assert_ne!(comm_id(&a, 0, 0), comm_id(&b, 0, 0));
        assert_ne!(comm_id(&a, 0, 0), comm_id(&a, 1, 0));
        assert_ne!(comm_id(&a, 0, 0), comm_id(&a, 0, 1));
        assert_eq!(comm_id(&a, 0, 0), comm_id(&a, 0, 0));
    }

    #[test]
    #[should_panic(expected = "not in the member list")]
    fn creating_a_comm_without_self_panics() {
        with_comm(1, MonaConfig::default(), |comm| {
            let inst = Arc::clone(comm.instance());
            let _ = inst.comm_create(vec![Address(u64::MAX)]);
        });
    }

    fn fault_config(deadline_ms: u64) -> MonaConfig {
        let mut cfg = MonaConfig::default();
        cfg.fault.recv_deadline = Some(Duration::from_millis(deadline_ms));
        cfg
    }

    #[test]
    fn deadline_backstop_revokes_a_receive_from_a_silent_peer() {
        let out = with_comm(2, fault_config(60), |comm| {
            if comm.rank() == 0 {
                // Rank 1 exits without ever sending: the backstop must
                // suspect it and revoke rather than hang forever.
                match comm.recv(1, 7) {
                    Err(MonaError::Revoked { epoch: 0, dead }) => {
                        dead == vec![comm.address_of(1)]
                    }
                    _ => false,
                }
            } else {
                true
            }
        });
        assert!(out.into_iter().all(|b| b));
    }

    #[test]
    fn deadline_on_wildcard_receive_is_a_plain_timeout() {
        // recv_any has no peer to suspect, so the backstop cannot revoke.
        let out = with_comm(2, fault_config(60), |comm| {
            if comm.rank() == 0 {
                matches!(comm.recv_any(7), Err(MonaError::Na(NaError::Timeout)))
            } else {
                true
            }
        });
        assert!(out.into_iter().all(|b| b));
    }

    #[test]
    fn marked_dead_member_revokes_and_survivors_shrink_and_continue() {
        // Rank 2 "crashes" (exits immediately). Rank 0 learns of the death
        // out-of-band (as the SSG observer would deliver it), which aborts
        // its collective and broadcasts revoke notices; rank 1, blocked in
        // the same barrier with no deadline configured, is unblocked purely
        // by the notice. Both survivors then shrink and complete a barrier
        // on the new communicator.
        let out = with_comm(3, MonaConfig::default(), |comm| {
            let me = comm.rank();
            if me == 2 {
                return "crashed".to_string();
            }
            comm.instance().arm_fault_detection();
            if me == 0 {
                // Give rank 1 time to block in the barrier first, then
                // deliver the death verdict.
                std::thread::sleep(Duration::from_millis(30));
                comm.instance().mark_dead(comm.address_of(2));
            }
            let revoked = match comm.barrier() {
                Err(MonaError::Revoked { dead, .. }) => dead.contains(&comm.address_of(2)),
                _ => false,
            };
            if !revoked {
                return "not revoked".to_string();
            }
            let survivors = [comm.address_of(0), comm.address_of(1)];
            let small = comm.shrink(&survivors).unwrap();
            if small.epoch() != 1 || small.size() != 2 {
                return "bad shrink".to_string();
            }
            match small.barrier() {
                Ok(()) => "recovered".to_string(),
                Err(e) => format!("shrunk barrier failed: {e}"),
            }
        });
        assert_eq!(out[0], "recovered");
        assert_eq!(out[1], "recovered");
    }

    #[test]
    fn shrink_rejects_bad_survivor_lists() {
        with_comm(2, MonaConfig::default(), |comm| {
            if comm.rank() == 0 {
                // Caller must be in the survivor list.
                let r = comm.shrink(&[comm.address_of(1)]);
                assert!(matches!(r, Err(MonaError::Protocol(_))));
                // A survivor marked dead is rejected.
                comm.instance().mark_dead(comm.address_of(1));
                let r = comm.shrink(&[comm.address_of(0), comm.address_of(1)]);
                assert!(matches!(r, Err(MonaError::Protocol(_))));
                // Dropping the dead member works, epoch advances.
                let solo = comm.shrink(&[comm.address_of(0)]).unwrap();
                assert_eq!(solo.epoch(), 1);
                assert_eq!(solo.size(), 1);
            }
        });
    }

    #[test]
    fn send_to_a_closed_endpoint_revokes() {
        // When the peer's endpoint is gone (crash / kill), an eager send
        // must come back Revoked, not a raw NA error.
        let out = with_comm(2, MonaConfig::default(), |comm| {
            if comm.rank() == 0 {
                // Wait for rank 1 to exit so its mailbox is closed.
                std::thread::sleep(Duration::from_millis(40));
                match comm.send(b"hi", 1, 3) {
                    Err(MonaError::Revoked { dead, .. }) => dead == vec![comm.address_of(1)],
                    Ok(()) => {
                        // The mailbox outlived the thread: acceptable only
                        // if the fabric keeps exited processes reachable.
                        true
                    }
                    _ => false,
                }
            } else {
                true
            }
        });
        assert!(out.into_iter().all(|b| b));
    }
}
