//! Typed reduction operators over raw element buffers.
//!
//! Collectives move bytes; these helpers give them element semantics. The
//! binary-xor operator is the one benchmarked in the paper's Table II
//! ("1000 binary-xor reduce operations"), chosen there because bitwise
//! reduction is at the core of image compositing.

macro_rules! elementwise {
    ($name:ident, $ty:ty, $op:expr, $doc:literal) => {
        #[doc = $doc]
        pub fn $name(acc: &mut [u8], other: &[u8]) {
            const W: usize = std::mem::size_of::<$ty>();
            assert_eq!(acc.len(), other.len(), "reduce length mismatch");
            assert_eq!(acc.len() % W, 0, "buffer not a whole number of elements");
            let f: fn($ty, $ty) -> $ty = $op;
            for (a, b) in acc.chunks_exact_mut(W).zip(other.chunks_exact(W)) {
                let x = <$ty>::from_le_bytes(a.try_into().unwrap());
                let y = <$ty>::from_le_bytes(b.try_into().unwrap());
                a.copy_from_slice(&f(x, y).to_le_bytes());
            }
        }
    };
}

elementwise!(bxor_u8, u8, |a, b| a ^ b, "Elementwise XOR over `u8` (Table II's operator).");
elementwise!(bxor_u32, u32, |a, b| a ^ b, "Elementwise XOR over `u32`.");
elementwise!(sum_i32, i32, |a, b| a.wrapping_add(b), "Elementwise wrapping sum over `i32`.");
elementwise!(sum_u64, u64, |a, b| a.wrapping_add(b), "Elementwise wrapping sum over `u64`.");
elementwise!(sum_f32, f32, |a, b| a + b, "Elementwise sum over `f32`.");
elementwise!(sum_f64, f64, |a, b| a + b, "Elementwise sum over `f64`.");
elementwise!(min_f64, f64, |a, b| a.min(b), "Elementwise minimum over `f64`.");
elementwise!(max_f64, f64, |a, b| a.max(b), "Elementwise maximum over `f64`.");
elementwise!(min_u64, u64, |a, b| a.min(b), "Elementwise minimum over `u64`.");
elementwise!(max_u64, u64, |a, b| a.max(b), "Elementwise maximum over `u64`.");

/// Converts a slice of `f64` to its little-endian byte representation.
pub fn f64s_to_bytes(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Converts little-endian bytes back to `f64`s.
pub fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    assert_eq!(b.len() % 8, 0);
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Converts a slice of `u64` to little-endian bytes.
pub fn u64s_to_bytes(v: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Converts little-endian bytes back to `u64`s.
pub fn bytes_to_u64s(b: &[u8]) -> Vec<u64> {
    assert_eq!(b.len() % 8, 0);
    b.chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_matches_scalar() {
        let mut acc = vec![0b1010, 0b1111];
        bxor_u8(&mut acc, &[0b0110, 0b1111]);
        assert_eq!(acc, vec![0b1100, 0]);
    }

    #[test]
    fn f64_sum_matches_scalar() {
        let mut acc = f64s_to_bytes(&[1.5, -2.0]);
        sum_f64(&mut acc, &f64s_to_bytes(&[0.5, 3.0]));
        assert_eq!(bytes_to_f64s(&acc), vec![2.0, 1.0]);
    }

    #[test]
    fn min_max_f64() {
        let mut lo = f64s_to_bytes(&[1.0, 9.0]);
        min_f64(&mut lo, &f64s_to_bytes(&[3.0, 2.0]));
        assert_eq!(bytes_to_f64s(&lo), vec![1.0, 2.0]);
        let mut hi = f64s_to_bytes(&[1.0, 9.0]);
        max_f64(&mut hi, &f64s_to_bytes(&[3.0, 2.0]));
        assert_eq!(bytes_to_f64s(&hi), vec![3.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        sum_i32(&mut [0; 4], &[0; 8]);
    }

    #[test]
    fn u64_byte_conversions_roundtrip() {
        let v = vec![0u64, 1, u64::MAX];
        assert_eq!(bytes_to_u64s(&u64s_to_bytes(&v)), v);
    }

    #[test]
    fn wrapping_sum_does_not_panic_on_overflow() {
        let mut acc = i32::MAX.to_le_bytes().to_vec();
        sum_i32(&mut acc, &1i32.to_le_bytes());
        assert_eq!(
            i32::from_le_bytes(acc.try_into().unwrap()),
            i32::MIN
        );
    }
}
