//! Non-blocking operation requests.

use argo::Eventual;
use bytes::Bytes;

use crate::Result;

/// Outcome payload of a request: receives and value-producing collectives
/// resolve to `Some(bytes)`, pure-completion operations to `None`.
pub type Outcome = Result<Option<Bytes>>;

/// A handle to a non-blocking MoNA operation.
pub struct Request {
    state: State,
}

enum State {
    Ready(Option<Outcome>),
    Pending(Eventual<Outcome>),
}

impl Request {
    /// A request that completed synchronously.
    pub fn ready(outcome: Outcome) -> Self {
        Self {
            state: State::Ready(Some(outcome)),
        }
    }

    /// A request backed by a background task.
    pub fn pending(ev: Eventual<Outcome>) -> Self {
        Self {
            state: State::Pending(ev),
        }
    }

    /// Whether the operation has completed (wait will not block).
    pub fn test(&self) -> bool {
        match &self.state {
            State::Ready(_) => true,
            State::Pending(ev) => ev.is_ready(),
        }
    }

    /// Blocks until completion and returns the outcome.
    pub fn wait(self) -> Outcome {
        match self.state {
            State::Ready(out) => out.expect("request already consumed"),
            State::Pending(ev) => ev.wait(),
        }
    }
}

/// Waits on a batch of requests, returning the first error if any failed.
pub fn wait_all(reqs: impl IntoIterator<Item = Request>) -> Result<Vec<Option<Bytes>>> {
    reqs.into_iter().map(|r| r.wait()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_requests_complete_immediately() {
        let r = Request::ready(Ok(None));
        assert!(r.test());
        assert_eq!(r.wait().unwrap(), None);
    }

    #[test]
    fn pending_requests_block_until_set() {
        let ev = Eventual::new();
        let r = Request::pending(ev.clone());
        assert!(!r.test());
        ev.set(Ok(Some(Bytes::from_static(b"x"))));
        assert_eq!(r.wait().unwrap().unwrap()[..1], b"x"[..]);
    }

    #[test]
    fn wait_all_collects_outcomes() {
        let out = wait_all([Request::ready(Ok(None)), Request::ready(Ok(Some(Bytes::new())))]);
        assert_eq!(out.unwrap().len(), 2);
    }

    #[test]
    fn wait_all_propagates_errors() {
        let out = wait_all([
            Request::ready(Ok(None)),
            Request::ready(Err(na::NaError::Closed.into())),
        ]);
        assert!(out.is_err());
    }
}
