//! Test and benchmark support: spin up an n-rank MoNA world in one call.
//!
//! Used by this crate's own tests, the workspace integration tests, and
//! the Table I/II benchmark harnesses.

use std::sync::Arc;

use na::{Address, Fabric};

use crate::{Communicator, MonaConfig, MonaInstance};

/// Spawns `n` simulated ranks on `cluster` (placing `procs_per_node` per
/// node), builds one MoNA communicator spanning them, and runs `f(comm)`
/// in each. Returns the per-rank results in rank order.
pub fn run_ranks<R: Send + 'static>(
    cluster: &hpcsim::Cluster,
    n: usize,
    procs_per_node: usize,
    config: MonaConfig,
    f: impl Fn(Communicator) -> R + Send + Sync + 'static,
) -> Vec<R> {
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let (addr_tx, addr_rx) = crossbeam::channel::unbounded();
    let (list_tx, list_rx) = crossbeam::channel::unbounded::<Vec<Address>>();
    let f = Arc::new(f);
    let handles: Vec<_> = (0..n)
        .map(|rank| {
            let fabric = fabric.clone();
            let addr_tx = addr_tx.clone();
            let list_rx = list_rx.clone();
            let f = Arc::clone(&f);
            cluster.spawn(&format!("rank{rank}"), rank / procs_per_node, move || {
                let inst = MonaInstance::init_with(&fabric, config);
                addr_tx.send((rank, inst.address())).unwrap();
                let members = list_rx.recv().unwrap();
                let comm = inst.comm_create(members).unwrap();
                f(comm)
            })
        })
        .collect();
    let mut addrs = vec![Address(0); n];
    for _ in 0..n {
        let (rank, addr) = addr_rx.recv().unwrap();
        addrs[rank] = addr;
    }
    for _ in 0..n {
        list_tx.send(addrs.clone()).unwrap();
    }
    handles.into_iter().map(|h| h.join()).collect()
}

/// [`run_ranks`] on a fresh zero-latency cluster (protocol-correctness
/// testing; virtual time plays no role).
pub fn with_comm<R: Send + 'static>(
    n: usize,
    config: MonaConfig,
    f: impl Fn(Communicator) -> R + Send + Sync + 'static,
) -> Vec<R> {
    let cluster = hpcsim::Cluster::default();
    run_ranks(&cluster, n, 4, config, f)
}
