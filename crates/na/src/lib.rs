//! # na — network abstraction layer
//!
//! Mercury's NA layer provides connectionless point-to-point messaging and
//! one-sided RDMA on registered memory. This crate reproduces it on top of
//! the `hpcsim` virtual-time fabric:
//!
//! * [`Fabric`] — the per-cluster message router (the "network"),
//! * [`Endpoint`] — a process's NIC: tagged send/recv with unexpected-
//!   message queueing, plus memory exposure and one-sided [`Endpoint::rdma_get`],
//! * [`Address`] — a serializable endpoint address (what Colza daemons
//!   write to their connection file),
//! * [`bulk`] — registered-memory handles used by the staging RDMA path.
//!
//! ## Timing semantics
//!
//! Sends are buffered (they never block). A send charges the sender's
//! virtual clock with the model's per-message CPU overhead and stamps the
//! message with a departure time; the matching receive merges
//! `departure + wire_delay` into the receiver's clock and charges the
//! receiver-side overhead. One-sided RDMA charges only the initiator
//! (setup + wire); the target's CPU is not involved, exactly the property
//! that makes the staging `stage()` RPC cheap for the simulation.
//!
//! Higher layers (`mona`, `minimpi`, `margo`) charge their own additional
//! software overheads — that is where the Table I differences between NA,
//! MoNA and the MPI profiles come from.

mod address;
pub mod bulk;
mod endpoint;
mod error;
mod fabric;

pub use address::Address;
pub use bulk::BulkHandle;
pub use endpoint::{Endpoint, InMsg, RecvSelector};
pub use error::{NaError, Result};
pub use fabric::Fabric;

/// Message tags are 64-bit; layers partition the space (see `tags`).
pub type Tag = u64;

/// Tag-space partitioning between the layers sharing an endpoint.
pub mod tags {
    /// Base of the range used by margo RPC requests.
    pub const RPC_BASE: u64 = 0x1000_0000_0000;
    /// Base of the range used by margo RPC responses.
    pub const RPC_RESP_BASE: u64 = 0x2000_0000_0000;
    /// Base of the range used by MoNA communicator traffic.
    pub const MONA_BASE: u64 = 0x3000_0000_0000;
    /// Base of the range used by minimpi communicator traffic.
    pub const MPI_BASE: u64 = 0x4000_0000_0000;
    /// Base of the range used by SSG gossip traffic.
    pub const SSG_BASE: u64 = 0x5000_0000_0000;

    /// The traffic plane a tag belongs to, as used in trace counter names
    /// (`na.plane.<plane>.bytes`). RPC requests and responses share the
    /// `rpc` plane so the margo-side payload totals reconcile directly.
    pub fn plane_name(tag: super::Tag) -> &'static str {
        if tag >= SSG_BASE {
            "ssg"
        } else if tag >= MPI_BASE {
            "mpi"
        } else if tag >= MONA_BASE {
            "mona"
        } else if tag >= RPC_BASE {
            "rpc"
        } else {
            "raw"
        }
    }
}
