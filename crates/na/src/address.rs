//! Endpoint addresses.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use hpcsim::Pid;

/// The address of an NA endpoint.
///
/// Real Mercury addresses look like `ofi+gni://nid00012:7471`; ours encode
/// the simulated pid. Addresses are serializable so they can travel inside
/// RPC payloads (SSG views, Colza connection files).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Address(pub u64);

impl Address {
    /// The address of the endpoint owned by simulated process `pid`.
    pub fn of(pid: Pid) -> Self {
        Self(pid.0)
    }

    /// The owning simulated process.
    pub fn pid(&self) -> Pid {
        Pid(self.0)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "na+sim://{}", self.0)
    }
}

impl FromStr for Address {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let rest = s
            .strip_prefix("na+sim://")
            .ok_or_else(|| format!("bad address scheme: {s}"))?;
        let id: u64 = rest.parse().map_err(|e| format!("bad address {s}: {e}"))?;
        Ok(Self(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let a = Address(42);
        let s = a.to_string();
        assert_eq!(s, "na+sim://42");
        assert_eq!(s.parse::<Address>().unwrap(), a);
    }

    #[test]
    fn bad_addresses_are_rejected() {
        assert!("http://x".parse::<Address>().is_err());
        assert!("na+sim://abc".parse::<Address>().is_err());
    }

    #[test]
    fn pid_mapping_is_bijective() {
        let pid = Pid(99);
        let a = Address::of(pid);
        assert_eq!(a.pid(), pid);
        assert_eq!(Address(99), a);
    }

    #[test]
    fn ordering_follows_pid() {
        assert!(Address(1) < Address(2));
    }
}
