//! Endpoints: tagged messaging and one-sided RDMA.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use hpcsim::fabric::Xfer;
use hpcsim::process::ProcessCtx;

use crate::bulk::BulkHandle;
use crate::error::{NaError, Result};
use crate::fabric::{Fabric, Mailbox};
use crate::{Address, Tag};

/// A delivered message.
#[derive(Debug, Clone)]
pub struct InMsg {
    /// Sender address.
    pub src: Address,
    /// Message tag.
    pub tag: Tag,
    /// Payload (zero-copy shared buffer).
    pub data: Bytes,
    /// Virtual arrival time at the receiver's NIC.
    pub arrive: u64,
    /// Transfer class the sender used (decides receive-side CPU charge).
    pub class: Xfer,
}

/// Matching criteria for a receive.
#[derive(Debug, Clone, Copy)]
pub struct RecvSelector {
    /// Only match messages from this sender (any sender when `None`).
    pub src: Option<Address>,
    /// Lowest tag to match (inclusive).
    pub tag_min: Tag,
    /// Highest tag to match (inclusive).
    pub tag_max: Tag,
}

impl RecvSelector {
    /// Matches a single `(src, tag)` pair.
    pub fn exact(src: Address, tag: Tag) -> Self {
        Self {
            src: Some(src),
            tag_min: tag,
            tag_max: tag,
        }
    }

    /// Matches a tag from any sender.
    pub fn tag(tag: Tag) -> Self {
        Self {
            src: None,
            tag_min: tag,
            tag_max: tag,
        }
    }

    /// Matches an inclusive tag range from any sender.
    pub fn tag_range(tag_min: Tag, tag_max: Tag) -> Self {
        Self {
            src: None,
            tag_min,
            tag_max,
        }
    }

    fn matches(&self, msg: &InMsg) -> bool {
        self.src.is_none_or(|s| s == msg.src)
            && (self.tag_min..=self.tag_max).contains(&msg.tag)
    }
}

/// A process's NIC: opened from a [`Fabric`], closed on drop.
pub struct Endpoint {
    fabric: Fabric,
    addr: Address,
    ctx: Arc<ProcessCtx>,
    mailbox: Arc<Mailbox>,
    closed: std::sync::atomic::AtomicBool,
}

impl Endpoint {
    pub(crate) fn new(
        fabric: Fabric,
        addr: Address,
        ctx: Arc<ProcessCtx>,
        mailbox: Arc<Mailbox>,
    ) -> Self {
        Self {
            fabric,
            addr,
            ctx,
            mailbox,
            closed: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// This endpoint's address.
    pub fn address(&self) -> Address {
        self.addr
    }

    /// The fabric this endpoint is attached to.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The owning simulated process's context.
    pub fn ctx(&self) -> &Arc<ProcessCtx> {
        &self.ctx
    }

    /// Sends `data` to `dst` with the given tag using the eager path.
    pub fn send(&self, dst: Address, tag: Tag, data: Bytes) -> Result<()> {
        self.send_class(dst, tag, data, Xfer::Eager)
    }

    /// Sends a small control message (header-only timing).
    pub fn send_control(&self, dst: Address, tag: Tag, data: Bytes) -> Result<()> {
        self.send_class(dst, tag, data, Xfer::Control)
    }

    /// Sends with an explicit transfer class. Buffered: never blocks.
    pub fn send_class(&self, dst: Address, tag: Tag, data: Bytes, class: Xfer) -> Result<()> {
        let mailbox = self.fabric.mailbox_of(dst)?;
        let model = self.fabric.cluster().fabric();
        self.ctx.advance(model.endpoint_cpu_ns(class));
        let depart = self.ctx.now();
        let src_node = self.ctx.node();
        let dst_node = self
            .fabric
            .cluster()
            .node_of(dst.pid())
            .ok_or(NaError::Unreachable(dst))?;
        let mut arrive = depart + model.wire_ns(src_node, dst_node, data.len(), class);
        if hpcsim::trace::enabled() {
            // Bytes are counted at the sender for every message put on the
            // wire — including ones the fault injector then drops, exactly
            // as a NIC counter would see them.
            let plane = crate::tags::plane_name(tag);
            hpcsim::trace::counter_add(format!("na.plane.{plane}.msgs"), 1);
            hpcsim::trace::counter_add(format!("na.plane.{plane}.bytes"), data.len() as u64);
            hpcsim::trace::counter_add(
                format!("na.link.bytes.{src_node}->{dst_node}"),
                data.len() as u64,
            );
        }
        let injector = self.fabric.cluster().faults();
        let mut fault = hpcsim::SendFault::CLEAN;
        if injector.is_active() {
            fault = injector.on_send(self.ctx.pid(), dst.pid(), src_node, dst_node, tag, depart);
            if !fault.deliver {
                // Faults are silent at the sender, like a real lossy wire:
                // the failure surfaces downstream as a receive timeout.
                hpcsim::trace::counter_add("na.dropped.msgs", 1);
                return Ok(());
            }
            if fault.duplicate {
                hpcsim::trace::counter_add("na.duplicated.msgs", 1);
            }
            arrive += fault.extra_delay_ns;
        }
        let msg = InMsg {
            src: self.addr,
            tag,
            data,
            arrive,
            class,
        };
        let mut q = mailbox.queue.lock();
        if q.closed {
            return Err(NaError::Unreachable(dst));
        }
        if fault.duplicate {
            q.msgs.push_back(msg.clone());
        }
        if fault.reorder {
            q.msgs.push_front(msg);
        } else {
            q.msgs.push_back(msg);
        }
        mailbox.cond.notify_all();
        Ok(())
    }

    /// Blocking receive of the first message matching `sel`.
    pub fn recv(&self, sel: RecvSelector) -> Result<InMsg> {
        self.recv_timeout(sel, None)
    }

    /// Blocking receive with an optional *real-time* liveness timeout.
    ///
    /// The timeout exists to detect dead peers (a real failure detector);
    /// it does not participate in virtual time.
    pub fn recv_timeout(&self, sel: RecvSelector, timeout: Option<Duration>) -> Result<InMsg> {
        let mut q = self.mailbox.queue.lock();
        loop {
            if let Some(pos) = q.msgs.iter().position(|m| sel.matches(m)) {
                let msg = q.msgs.remove(pos).expect("position valid");
                drop(q);
                let model = self.fabric.cluster().fabric();
                self.ctx.clock().merge(msg.arrive);
                self.ctx.advance(model.endpoint_cpu_ns(msg.class));
                return Ok(msg);
            }
            if q.closed {
                return Err(NaError::Closed);
            }
            match timeout {
                None => self.mailbox.cond.wait(&mut q),
                Some(t) => {
                    if self.mailbox.cond.wait_for(&mut q, t).timed_out()
                        && !q.msgs.iter().any(|m| sel.matches(m))
                    {
                        return Err(NaError::Timeout);
                    }
                }
            }
        }
    }

    /// Non-blocking probe: takes the first matching message if present.
    pub fn try_recv(&self, sel: RecvSelector) -> Option<InMsg> {
        let mut q = self.mailbox.queue.lock();
        let pos = q.msgs.iter().position(|m| sel.matches(m))?;
        let msg = q.msgs.remove(pos).expect("position valid");
        drop(q);
        let model = self.fabric.cluster().fabric();
        self.ctx.clock().merge(msg.arrive);
        self.ctx.advance(model.endpoint_cpu_ns(msg.class));
        Some(msg)
    }

    /// Registers `data` for remote one-sided access and returns its handle.
    pub fn expose(&self, data: Bytes) -> BulkHandle {
        let size = data.len();
        let key = self.fabric.register_exposure(self.addr, data);
        BulkHandle {
            owner: self.addr,
            key,
            size,
        }
    }

    /// Releases a previously exposed region.
    pub fn unexpose(&self, handle: BulkHandle) -> Result<()> {
        if self.fabric.unregister_exposure(handle.owner, handle.key) {
            Ok(())
        } else {
            Err(NaError::BadBulkHandle(handle.key))
        }
    }

    /// One-sided RDMA get: pulls `[offset, offset+len)` from the remote
    /// registered region. Only the initiator's clock is charged.
    pub fn rdma_get(&self, handle: BulkHandle, offset: usize, len: usize) -> Result<Bytes> {
        if !handle.contains(offset, len) {
            return Err(NaError::BulkOutOfRange {
                offset,
                len,
                size: handle.size,
            });
        }
        let data = self
            .fabric
            .lookup_exposure(handle.owner, handle.key)
            .ok_or(NaError::BadBulkHandle(handle.key))?;
        let model = self.fabric.cluster().fabric();
        let owner_node = self
            .fabric
            .cluster()
            .node_of(handle.owner.pid())
            .ok_or(NaError::Unreachable(handle.owner))?;
        let mut sp = hpcsim::trace::span("na", "na.rdma_get");
        if sp.active() {
            sp.arg("bytes", len);
            hpcsim::trace::counter_add("na.rdma.bytes", len as u64);
            hpcsim::trace::counter_add(
                format!("na.link.rdma.bytes.{owner_node}->{}", self.ctx.node()),
                len as u64,
            );
        }
        self.ctx.advance(model.endpoint_cpu_ns(Xfer::Rdma));
        self.ctx
            .advance(model.wire_ns(owner_node, self.ctx.node(), len, Xfer::Rdma));
        Ok(data.slice(offset..offset + len))
    }

    /// Closes the endpoint: subsequent sends to it fail with
    /// [`NaError::Unreachable`], blocked local receives return
    /// [`NaError::Closed`], and its exposures are dropped.
    pub fn close(&self) {
        if !self
            .closed
            .swap(true, std::sync::atomic::Ordering::AcqRel)
        {
            self.fabric.close(self.addr);
        }
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim::{Cluster, ClusterConfig, FabricModel};

    fn cluster_with_model(model: FabricModel) -> (Cluster, Fabric) {
        let c = Cluster::new(ClusterConfig {
            fabric: model,
            ..Default::default()
        });
        let f = Fabric::new(Arc::clone(c.shared()));
        (c, f)
    }

    #[test]
    fn send_recv_roundtrip() {
        let (c, f) = cluster_with_model(FabricModel::zero());
        let f2 = f.clone();
        let recv = c.spawn("rx", 0, move || {
            let ep = f2.open();
            let msg = ep.recv(RecvSelector::tag(7)).unwrap();
            (msg.src, msg.data.to_vec())
        });
        let rx_addr = Address::of(recv.pid());
        let f3 = f.clone();
        let send = c.spawn("tx", 1, move || {
            let ep = f3.open();
            // The receiver may not have opened yet; retry briefly.
            loop {
                match ep.send(rx_addr, 7, Bytes::from_static(b"hello")) {
                    Ok(()) => break,
                    Err(NaError::Unreachable(_)) => std::thread::yield_now(),
                    Err(e) => panic!("{e}"),
                }
            }
            ep.address()
        });
        let tx_addr = send.join();
        let (src, data) = recv.join();
        assert_eq!(src, tx_addr);
        assert_eq!(data, b"hello");
    }

    #[test]
    fn matching_respects_src_and_tag() {
        let (c, f) = cluster_with_model(FabricModel::zero());
        c.spawn("p", 0, move || {
            let ep = f.open();
            let me = ep.address();
            ep.send(me, 1, Bytes::from_static(b"a")).unwrap();
            ep.send(me, 2, Bytes::from_static(b"b")).unwrap();
            ep.send(me, 1, Bytes::from_static(b"c")).unwrap();
            // Tag 2 first, even though tag-1 messages queued earlier.
            assert_eq!(&ep.recv(RecvSelector::tag(2)).unwrap().data[..], b"b");
            // Then the two tag-1 messages in FIFO order.
            assert_eq!(&ep.recv(RecvSelector::exact(me, 1)).unwrap().data[..], b"a");
            assert_eq!(&ep.recv(RecvSelector::tag_range(0, 10)).unwrap().data[..], b"c");
        })
        .join();
    }

    #[test]
    fn virtual_time_advances_by_wire_delay() {
        let (c, f) = cluster_with_model(hpcsim::fabric::presets::aries());
        c.spawn("p", 0, move || {
            let ep = f.open();
            let me = ep.address();
            let before = hpcsim::current().now();
            ep.send(me, 1, Bytes::from(vec![0u8; 1024])).unwrap();
            ep.recv(RecvSelector::tag(1)).unwrap();
            let elapsed = hpcsim::current().now() - before;
            let model = hpcsim::fabric::presets::aries();
            let min_expected = model.wire_ns(0, 0, 1024, Xfer::Eager);
            assert!(elapsed >= min_expected, "{elapsed} < {min_expected}");
        })
        .join();
    }

    #[test]
    fn receiver_clock_merges_sender_time() {
        let (c, f) = cluster_with_model(FabricModel::zero());
        c.spawn("p", 0, move || {
            let ep = f.open();
            let me = ep.address();
            hpcsim::current().advance(1_000_000);
            ep.send(me, 1, Bytes::new()).unwrap();
            // Reset sight: local clock is already past; arrival must not
            // move it backwards.
            let before = hpcsim::current().now();
            ep.recv(RecvSelector::tag(1)).unwrap();
            assert!(hpcsim::current().now() >= before);
        })
        .join();
    }

    #[test]
    fn send_to_closed_endpoint_is_unreachable() {
        let (c, f) = cluster_with_model(FabricModel::zero());
        let f2 = f.clone();
        let victim = c.spawn("v", 0, move || {
            let ep = f2.open();
            let addr = ep.address();
            ep.close();
            addr
        });
        let addr = victim.join();
        c.spawn("s", 0, move || {
            let ep = f.open();
            assert!(matches!(
                ep.send(addr, 1, Bytes::new()),
                Err(NaError::Unreachable(_))
            ));
        })
        .join();
    }

    #[test]
    fn rdma_get_pulls_exposed_slice() {
        let (c, f) = cluster_with_model(FabricModel::zero());
        c.spawn("p", 0, move || {
            let ep = f.open();
            let data = Bytes::from((0u8..100).collect::<Vec<_>>());
            let h = ep.expose(data);
            let part = ep.rdma_get(h, 10, 5).unwrap();
            assert_eq!(&part[..], &[10, 11, 12, 13, 14]);
            ep.unexpose(h).unwrap();
            assert!(matches!(
                ep.rdma_get(h, 0, 1),
                Err(NaError::BadBulkHandle(_))
            ));
        })
        .join();
    }

    #[test]
    fn rdma_out_of_range_is_rejected() {
        let (c, f) = cluster_with_model(FabricModel::zero());
        c.spawn("p", 0, move || {
            let ep = f.open();
            let h = ep.expose(Bytes::from(vec![1, 2, 3]));
            assert!(matches!(
                ep.rdma_get(h, 2, 2),
                Err(NaError::BulkOutOfRange { .. })
            ));
        })
        .join();
    }

    #[test]
    fn close_drops_exposures() {
        let (c, f) = cluster_with_model(FabricModel::zero());
        let f2 = f.clone();
        c.spawn("p", 0, move || {
            let ep = f2.open();
            ep.expose(Bytes::from(vec![0; 10]));
            ep.close();
        })
        .join();
        assert_eq!(f.exposure_count(), 0);
    }

    #[test]
    fn recv_timeout_detects_silence() {
        let (c, f) = cluster_with_model(FabricModel::zero());
        c.spawn("p", 0, move || {
            let ep = f.open();
            let got = ep.recv_timeout(RecvSelector::tag(1), Some(Duration::from_millis(20)));
            assert_eq!(got.unwrap_err(), NaError::Timeout);
        })
        .join();
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let (c, f) = cluster_with_model(FabricModel::zero());
        c.spawn("p", 0, move || {
            let ep = f.open();
            assert!(ep.try_recv(RecvSelector::tag(1)).is_none());
            let me = ep.address();
            ep.send(me, 1, Bytes::from_static(b"x")).unwrap();
            assert!(ep.try_recv(RecvSelector::tag(1)).is_some());
        })
        .join();
    }

    #[test]
    fn reopening_after_close_is_allowed() {
        let (c, f) = cluster_with_model(FabricModel::zero());
        c.spawn("p", 0, move || {
            let ep = f.open();
            ep.close();
            let ep2 = f.open();
            assert!(f.is_open(ep2.address()));
        })
        .join();
    }
}
