//! The fabric: per-cluster message router and RDMA exposure table.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock};

use hpcsim::cluster::ClusterShared;

use crate::endpoint::{Endpoint, InMsg};
use crate::error::{NaError, Result};
use crate::Address;

pub(crate) struct Mailbox {
    pub(crate) queue: Mutex<MailboxState>,
    pub(crate) cond: Condvar,
}

pub(crate) struct MailboxState {
    pub(crate) msgs: VecDeque<InMsg>,
    pub(crate) closed: bool,
}

impl Mailbox {
    fn new() -> Self {
        Self {
            queue: Mutex::new(MailboxState {
                msgs: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
        }
    }
}

struct FabricInner {
    cluster: Arc<ClusterShared>,
    mailboxes: RwLock<HashMap<Address, Arc<Mailbox>>>,
    exposures: RwLock<HashMap<(Address, u64), Bytes>>,
    next_key: AtomicU64,
}

/// The cluster-wide network: endpoint registry, message routing, and the
/// RDMA exposure table. Clone handles freely; all clones share state.
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

impl Fabric {
    /// Creates a fabric over a cluster.
    pub fn new(cluster: Arc<ClusterShared>) -> Self {
        Self {
            inner: Arc::new(FabricInner {
                cluster,
                mailboxes: RwLock::new(HashMap::new()),
                exposures: RwLock::new(HashMap::new()),
                next_key: AtomicU64::new(1),
            }),
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &Arc<ClusterShared> {
        &self.inner.cluster
    }

    /// Opens an endpoint for the calling simulated process.
    ///
    /// # Panics
    /// Panics if the caller is not a simulated process, or if it already
    /// has an open endpoint on this fabric.
    pub fn open(&self) -> Endpoint {
        let ctx = hpcsim::process::current();
        let addr = Address::of(ctx.pid());
        let mailbox = Arc::new(Mailbox::new());
        let prev = self
            .inner
            .mailboxes
            .write()
            .insert(addr, Arc::clone(&mailbox));
        assert!(prev.is_none(), "endpoint already open at {addr}");
        Endpoint::new(self.clone(), addr, ctx, mailbox)
    }

    /// Whether an endpoint is currently open at `addr`.
    pub fn is_open(&self, addr: Address) -> bool {
        self.inner.mailboxes.read().contains_key(&addr)
    }

    pub(crate) fn mailbox_of(&self, addr: Address) -> Result<Arc<Mailbox>> {
        self.inner
            .mailboxes
            .read()
            .get(&addr)
            .cloned()
            .ok_or(NaError::Unreachable(addr))
    }

    pub(crate) fn close(&self, addr: Address) {
        if let Some(mb) = self.inner.mailboxes.write().remove(&addr) {
            let mut q = mb.queue.lock();
            q.closed = true;
            mb.cond.notify_all();
        }
        // Drop all memory this endpoint had exposed.
        self.inner
            .exposures
            .write()
            .retain(|(owner, _), _| *owner != addr);
    }

    pub(crate) fn register_exposure(&self, owner: Address, data: Bytes) -> u64 {
        let key = self.inner.next_key.fetch_add(1, Ordering::Relaxed);
        self.inner.exposures.write().insert((owner, key), data);
        key
    }

    pub(crate) fn lookup_exposure(&self, owner: Address, key: u64) -> Option<Bytes> {
        self.inner.exposures.read().get(&(owner, key)).cloned()
    }

    pub(crate) fn unregister_exposure(&self, owner: Address, key: u64) -> bool {
        self.inner.exposures.write().remove(&(owner, key)).is_some()
    }

    /// Number of live exposures (diagnostics; lets tests assert no leaks).
    pub fn exposure_count(&self) -> usize {
        self.inner.exposures.read().len()
    }
}
