//! NA error type.

use std::fmt;

use crate::Address;

/// Result alias for NA operations.
pub type Result<T> = std::result::Result<T, NaError>;

/// Failures surfaced by the network abstraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NaError {
    /// No endpoint is open at this address (never opened, or closed).
    Unreachable(Address),
    /// The local endpoint was closed while an operation was blocked on it.
    Closed,
    /// A blocking receive exceeded its real-time liveness timeout.
    Timeout,
    /// An RDMA handle was invalid or already released.
    BadBulkHandle(u64),
    /// RDMA access out of the registered region's bounds.
    BulkOutOfRange {
        /// Requested offset.
        offset: usize,
        /// Requested length.
        len: usize,
        /// Size of the registered region.
        size: usize,
    },
    /// A received frame was shorter than its protocol header requires
    /// (truncated or corrupt; surfaced by the mona/minimpi frame decoders).
    ShortFrame {
        /// Bytes the decoder needed.
        need: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// A received frame had an unknown protocol kind byte.
    BadFrameKind(u8),
}

impl fmt::Display for NaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NaError::Unreachable(a) => write!(f, "address {a} is unreachable"),
            NaError::Closed => write!(f, "local endpoint closed"),
            NaError::Timeout => write!(f, "receive timed out"),
            NaError::BadBulkHandle(k) => write!(f, "invalid bulk handle {k}"),
            NaError::BulkOutOfRange { offset, len, size } => {
                write!(f, "bulk access [{offset}, {offset}+{len}) outside region of {size} bytes")
            }
            NaError::ShortFrame { need, have } => {
                write!(f, "truncated frame: header needs {need} bytes, got {have}")
            }
            NaError::BadFrameKind(k) => write!(f, "unknown frame kind byte {k}"),
        }
    }
}

impl std::error::Error for NaError {}
