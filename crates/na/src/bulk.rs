//! Registered memory and bulk handles (the RDMA path).
//!
//! `stage()` in Colza does not push data: the client *exposes* a memory
//! region and sends a small handle; the server *pulls* via RDMA. These
//! types reproduce that flow. A [`BulkHandle`] is a serializable
//! capability naming a registered region on some process.

use serde::{Deserialize, Serialize};

use crate::Address;

/// A serializable capability for a registered memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BulkHandle {
    /// The process owning the memory.
    pub owner: Address,
    /// Registration key in the owner's exposure table.
    pub key: u64,
    /// Size of the region in bytes.
    pub size: usize,
}

impl BulkHandle {
    /// A sub-range view check: returns true when `[offset, offset+len)` is
    /// inside the region.
    pub fn contains(&self, offset: usize, len: usize) -> bool {
        offset.checked_add(len).is_some_and(|end| end <= self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_checking() {
        let h = BulkHandle {
            owner: Address(0),
            key: 1,
            size: 100,
        };
        assert!(h.contains(0, 100));
        assert!(h.contains(99, 1));
        assert!(!h.contains(99, 2));
        assert!(!h.contains(usize::MAX, 2)); // overflow must not wrap
    }
}
