//! Property tests on the filter pipeline: invariants that must hold for
//! arbitrary scalar fields and cut planes.

use proptest::prelude::*;
use vizkit::data::{DataArray, ImageData};
use vizkit::filters::{clip, contour, Plane};
use vizkit::math::vec3;

fn arb_grid(n: usize) -> impl Strategy<Value = ImageData> {
    proptest::collection::vec(-10.0f32..10.0, n * n * n).prop_map(move |vals| {
        let mut g = ImageData::new([n, n, n]);
        g.point_data.set("f", DataArray::F32(vals));
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every contour vertex lies in a grid cell whose corner values
    /// bracket the isovalue. (Vertices sit on tetrahedron edges, which
    /// include face/body diagonals where the per-tet linear interpolant
    /// legitimately differs from trilinear resampling, so value equality
    /// is only guaranteed cell-range-wise for arbitrary fields.)
    #[test]
    fn contour_vertices_lie_in_bracketing_cells(grid in arb_grid(5), iso in -8.0f64..8.0) {
        let surf = contour(&grid, "f", &[iso]);
        surf.validate().unwrap();
        let arr = grid.point_data.get("f").unwrap();
        let n = grid.dims[0];
        for p in &surf.points {
            let cell = |w: f32| (w.floor() as usize).min(n - 2);
            let (i, j, k) = (cell(p[0]), cell(p[1]), cell(p[2]));
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for dk in 0..2 {
                for dj in 0..2 {
                    for di in 0..2 {
                        let v = arr.get(grid.point_index(i + di, j + dj, k + dk));
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
            }
            prop_assert!(
                lo - 1e-4 <= iso && iso <= hi + 1e-4,
                "vertex at {p:?} in cell ({i},{j},{k}) with range [{lo}, {hi}] vs iso {iso}"
            );
        }
    }

    /// All contour triangles live inside the grid bounds.
    #[test]
    fn contour_stays_in_bounds(grid in arb_grid(4), iso in -8.0f64..8.0) {
        let surf = contour(&grid, "f", &[iso]);
        let (lo, hi) = grid.bounds();
        for p in &surf.points {
            prop_assert!(p[0] >= lo.x - 1e-4 && p[0] <= hi.x + 1e-4);
            prop_assert!(p[1] >= lo.y - 1e-4 && p[1] <= hi.y + 1e-4);
            prop_assert!(p[2] >= lo.z - 1e-4 && p[2] <= hi.z + 1e-4);
        }
    }

    /// Clipping with complementary planes partitions the surface area.
    #[test]
    fn complementary_clips_partition_area(
        grid in arb_grid(4),
        iso in -5.0f64..5.0,
        nx in -1.0f32..1.0,
        ny in -1.0f32..1.0,
        nz in -1.0f32..1.0,
        off in 0.0f32..3.0,
    ) {
        let n = vec3(nx, ny, nz);
        prop_assume!(n.length() > 0.1);
        let surf = contour(&grid, "f", &[iso]);
        prop_assume!(surf.num_triangles() > 0);
        let origin = vec3(off, off, off);
        let pos = clip(&surf, Plane::through(origin, n));
        let neg = clip(&surf, Plane::through(origin, n * -1.0));
        let total = surf.surface_area();
        let sum = pos.surface_area() + neg.surface_area();
        prop_assert!(
            (sum - total).abs() <= total * 1e-3 + 1e-3,
            "area not partitioned: {sum} vs {total}"
        );
    }

    /// Clipped vertices are all on the kept side (within epsilon).
    #[test]
    fn clip_respects_half_space(grid in arb_grid(4), iso in -5.0f64..5.0) {
        let surf = contour(&grid, "f", &[iso]);
        let plane = Plane::through(vec3(1.5, 1.5, 1.5), vec3(1.0, 0.3, -0.4));
        let kept = clip(&surf, plane);
        kept.validate().unwrap();
        for p in &kept.points {
            prop_assert!(plane.eval(vec3(p[0], p[1], p[2])) >= -1e-3);
        }
    }

}
