//! The communication abstraction — `vtkMultiProcessController` and
//! `vtkCommunicator` in VTK.
//!
//! This is the seam the whole paper hinges on: VTK's parallel filters and
//! compositing code call through this interface, never through MPI
//! directly, so an implementation backed by MoNA can be injected without
//! modifying any of the algorithms. Concrete controllers (MPI-backed,
//! MoNA-backed) live in the `catalyst` crate, mirroring how
//! `vtkMPIController` lives outside VTK's core modules.
//!
//! VTK exposes the active controller through a process-global
//! `SetGlobalController`. Simulated processes share one OS process here,
//! so the global is keyed by simulated-process id.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

/// The abstract communicator (`vtkCommunicator`): byte-oriented so any
/// transport can implement it, with the collectives VTK's parallel
/// rendering path needs.
pub trait VtkComm: Send + Sync {
    /// This process's rank.
    fn rank(&self) -> usize;
    /// Number of participating processes.
    fn size(&self) -> usize;
    /// A short name of the backing transport ("mpi", "mona", ...) — used
    /// by the IceT context factory registry.
    fn kind(&self) -> &'static str;
    /// Point-to-point send.
    fn send(&self, data: &[u8], dst: usize, tag: u16) -> Result<(), String>;
    /// Point-to-point receive.
    fn recv(&self, src: usize, tag: u16) -> Result<Vec<u8>, String>;
    /// Broadcast from `root`; all ranks return the payload.
    fn bcast(&self, data: Option<&[u8]>, root: usize) -> Result<Vec<u8>, String>;
    /// Reduce with a caller-supplied elementwise fold; result at `root`.
    fn reduce(
        &self,
        data: &[u8],
        op: &(dyn Fn(&mut [u8], &[u8]) + Sync),
        root: usize,
    ) -> Result<Option<Vec<u8>>, String>;
    /// Gather variable-size payloads to `root` in rank order.
    fn gather(&self, data: &[u8], root: usize) -> Result<Option<Vec<Vec<u8>>>, String>;
    /// Barrier.
    fn barrier(&self) -> Result<(), String>;
    /// Reduce with a caller-supplied elementwise fold; every rank returns
    /// the result. The default composes `reduce` + `bcast`; transports with
    /// a native allreduce (e.g. MoNA's Rabenseifner engine) override this
    /// with a single collective.
    fn allreduce(
        &self,
        data: &[u8],
        op: &(dyn Fn(&mut [u8], &[u8]) + Sync),
    ) -> Result<Vec<u8>, String> {
        let reduced = self.reduce(data, op, 0)?;
        self.bcast(reduced.as_deref(), 0)
    }
}

/// The controller (`vtkMultiProcessController`): owns a communicator and
/// is what pipelines are handed.
#[derive(Clone)]
pub struct Controller {
    comm: Arc<dyn VtkComm>,
}

impl Controller {
    /// Wraps a communicator.
    pub fn new(comm: Arc<dyn VtkComm>) -> Self {
        Self { comm }
    }

    /// The communicator.
    pub fn comm(&self) -> &Arc<dyn VtkComm> {
        &self.comm
    }

    /// Rank shorthand.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Size shorthand.
    pub fn size(&self) -> usize {
        self.comm.size()
    }
}

static GLOBAL: RwLock<Option<Registry>> = RwLock::new(None);

type Registry = HashMap<u64, Controller>;

/// Installs `ctrl` as the global controller for the *calling simulated
/// process* (`vtkMultiProcessController::SetGlobalController`). Passing
/// `None` clears it.
pub fn set_global_controller(pid: u64, ctrl: Option<Controller>) {
    let mut g = GLOBAL.write();
    let reg = g.get_or_insert_with(HashMap::new);
    match ctrl {
        Some(c) => {
            reg.insert(pid, c);
        }
        None => {
            reg.remove(&pid);
        }
    }
}

/// Fetches the calling simulated process's global controller.
pub fn global_controller(pid: u64) -> Option<Controller> {
    GLOBAL.read().as_ref().and_then(|r| r.get(&pid).cloned())
}

/// A single-process communicator (VTK's `vtkDummyController`): all
/// collectives are identities. Useful for serial tests and one-server
/// staging areas.
pub struct DummyComm;

impl VtkComm for DummyComm {
    fn rank(&self) -> usize {
        0
    }
    fn size(&self) -> usize {
        1
    }
    fn kind(&self) -> &'static str {
        "dummy"
    }
    fn send(&self, _data: &[u8], _dst: usize, _tag: u16) -> Result<(), String> {
        Err("dummy controller has no peers".to_string())
    }
    fn recv(&self, _src: usize, _tag: u16) -> Result<Vec<u8>, String> {
        Err("dummy controller has no peers".to_string())
    }
    fn bcast(&self, data: Option<&[u8]>, _root: usize) -> Result<Vec<u8>, String> {
        data.map(|d| d.to_vec())
            .ok_or_else(|| "dummy bcast called without the root payload".to_string())
    }
    fn reduce(
        &self,
        data: &[u8],
        _op: &(dyn Fn(&mut [u8], &[u8]) + Sync),
        _root: usize,
    ) -> Result<Option<Vec<u8>>, String> {
        Ok(Some(data.to_vec()))
    }
    fn gather(&self, data: &[u8], _root: usize) -> Result<Option<Vec<Vec<u8>>>, String> {
        Ok(Some(vec![data.to_vec()]))
    }
    fn barrier(&self) -> Result<(), String> {
        Ok(())
    }
    fn allreduce(
        &self,
        data: &[u8],
        _op: &(dyn Fn(&mut [u8], &[u8]) + Sync),
    ) -> Result<Vec<u8>, String> {
        Ok(data.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dummy_controller_identities() {
        let c = Controller::new(Arc::new(DummyComm));
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
        assert_eq!(c.comm().bcast(Some(b"x"), 0).unwrap(), b"x");
        assert_eq!(
            c.comm().reduce(b"y", &|_, _| {}, 0).unwrap().unwrap(),
            b"y"
        );
        assert_eq!(c.comm().gather(b"z", 0).unwrap().unwrap(), vec![b"z".to_vec()]);
        assert_eq!(c.comm().allreduce(b"w", &|_, _| {}).unwrap(), b"w");
        c.comm().barrier().unwrap();
        assert!(c.comm().send(b"", 0, 0).is_err());
    }

    #[test]
    fn global_registry_is_per_pid() {
        set_global_controller(101, Some(Controller::new(Arc::new(DummyComm))));
        set_global_controller(102, Some(Controller::new(Arc::new(DummyComm))));
        assert!(global_controller(101).is_some());
        assert!(global_controller(103).is_none());
        set_global_controller(101, None);
        assert!(global_controller(101).is_none());
        assert!(global_controller(102).is_some());
        set_global_controller(102, None);
    }

    #[test]
    fn replacing_the_controller_is_allowed() {
        // The paper specifically needed ParaView to accept
        // re-initialization with a different communicator; our registry
        // trivially supports replacement.
        set_global_controller(200, Some(Controller::new(Arc::new(DummyComm))));
        set_global_controller(200, Some(Controller::new(Arc::new(DummyComm))));
        assert_eq!(global_controller(200).unwrap().size(), 1);
        set_global_controller(200, None);
    }
}
