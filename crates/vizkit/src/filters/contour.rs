//! Isosurface extraction on regular grids.
//!
//! Implemented as *marching tetrahedra*: each grid cell is decomposed into
//! six tetrahedra sharing the cell's main diagonal, and each tetrahedron
//! is contoured exactly (0, 1 or 2 triangles). Compared with classic
//! marching cubes this trades ~2× more triangles for a case analysis that
//! is derivable in code rather than a 256-entry lookup table, and it
//! produces watertight surfaces by construction — the invariant the
//! property tests check. VTK itself ships the same trade-off as
//! `vtkMarchingContourFilter`'s tetra path.
//!
//! Surface normals come from the scalar field's gradient (central
//! differences), interpolated to the emitted vertices, which is exactly
//! how VTK's contour filter computes them.

use crate::data::{DataArray, ImageData, PolyData};
use crate::math::Vec3;

/// The six tetrahedra of a cube, as indices into the cube's 8 corners
/// (x-fastest corner order), all sharing the 0–7 diagonal.
const CUBE_TETS: [[usize; 4]; 6] = [
    [0, 1, 3, 7],
    [0, 1, 5, 7],
    [0, 2, 3, 7],
    [0, 2, 6, 7],
    [0, 4, 5, 7],
    [0, 4, 6, 7],
];

/// Offsets of the 8 cube corners in (i, j, k), x-fastest.
const CORNER_OFFSETS: [[usize; 3]; 8] = [
    [0, 0, 0],
    [1, 0, 0],
    [0, 1, 0],
    [1, 1, 0],
    [0, 0, 1],
    [1, 0, 1],
    [0, 1, 1],
    [1, 1, 1],
];

/// Extracts isosurfaces of a point-data scalar field.
///
/// All other point-data arrays are interpolated onto the surface (so a
/// pipeline can color an isosurface of `u` by `v`, as the Gray–Scott
/// script does). Returns a triangle soup with per-point normals.
pub fn contour(img: &ImageData, field: &str, isovalues: &[f64]) -> PolyData {
    let arr = img
        .point_data
        .get(field)
        .unwrap_or_else(|| panic!("contour: no point field {field:?}"));
    let [nx, ny, nz] = img.dims;
    let mut out = PolyData::new();
    if nx < 2 || ny < 2 || nz < 2 {
        return out;
    }

    // Names of the carried arrays (everything except positions).
    let carried: Vec<String> = img.point_data.iter().map(|(n, _)| n.clone()).collect();
    let mut carried_vals: Vec<Vec<f32>> = vec![Vec::new(); carried.len()];

    let value_at = |i: usize, j: usize, k: usize| arr.get_f32(img.point_index(i, j, k));
    // Central-difference gradient, clamped at the boundary.
    let gradient_at = |i: usize, j: usize, k: usize| -> Vec3 {
        let g = |axis: usize, idx: usize, max: usize, plus: f32, minus: f32, h: f32| {
            let _ = axis;
            let span = if idx == 0 || idx + 1 == max { h } else { 2.0 * h };
            (plus - minus) / span
        };
        let gx = g(
            0,
            i,
            nx,
            value_at((i + 1).min(nx - 1), j, k),
            value_at(i.saturating_sub(1), j, k),
            img.spacing[0],
        );
        let gy = g(
            1,
            j,
            ny,
            value_at(i, (j + 1).min(ny - 1), k),
            value_at(i, j.saturating_sub(1), k),
            img.spacing[1],
        );
        let gz = g(
            2,
            k,
            nz,
            value_at(i, j, (k + 1).min(nz - 1)),
            value_at(i, j, k.saturating_sub(1)),
            img.spacing[2],
        );
        Vec3 { x: gx, y: gy, z: gz }
    };

    let mut corner_idx = [[0usize; 3]; 8];
    let mut corner_val = [0f32; 8];
    for k in 0..nz - 1 {
        for j in 0..ny - 1 {
            for i in 0..nx - 1 {
                for (c, off) in CORNER_OFFSETS.iter().enumerate() {
                    corner_idx[c] = [i + off[0], j + off[1], k + off[2]];
                    corner_val[c] =
                        value_at(corner_idx[c][0], corner_idx[c][1], corner_idx[c][2]);
                }
                for &iso in isovalues {
                    let iso = iso as f32;
                    // Quick reject: cell entirely on one side.
                    let (mut lo, mut hi) = (corner_val[0], corner_val[0]);
                    for &v in &corner_val[1..] {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    if iso < lo || iso > hi {
                        continue;
                    }
                    for tet in &CUBE_TETS {
                        contour_tet(
                            img,
                            &corner_idx,
                            &corner_val,
                            tet,
                            iso,
                            &gradient_at,
                            &carried,
                            &mut carried_vals,
                            &mut out,
                        );
                    }
                }
            }
        }
    }
    for (name, vals) in carried.iter().zip(carried_vals) {
        out.point_data.set(name.clone(), DataArray::F32(vals));
    }
    debug_assert!(out.validate().is_ok());
    out
}

/// Contours one tetrahedron, appending 0–2 triangles.
#[allow(clippy::too_many_arguments)]
fn contour_tet(
    img: &ImageData,
    corner_idx: &[[usize; 3]; 8],
    corner_val: &[f32; 8],
    tet: &[usize; 4],
    iso: f32,
    gradient_at: &dyn Fn(usize, usize, usize) -> Vec3,
    carried: &[String],
    carried_vals: &mut [Vec<f32>],
    out: &mut PolyData,
) {
    let inside: Vec<usize> = (0..4).filter(|&v| corner_val[tet[v]] >= iso).collect();
    let outside: Vec<usize> = (0..4).filter(|&v| corner_val[tet[v]] < iso).collect();

    // Emits the interpolated vertex on edge (a, b) of the tet.
    let emit_edge = |a: usize, b: usize, out: &mut PolyData, cv: &mut [Vec<f32>]| -> u32 {
        let (ca, cb) = (tet[a], tet[b]);
        let (va, vb) = (corner_val[ca], corner_val[cb]);
        let t = if (vb - va).abs() < 1e-12 {
            0.5
        } else {
            ((iso - va) / (vb - va)).clamp(0.0, 1.0)
        };
        let [ia, ja, ka] = corner_idx[ca];
        let [ib, jb, kb] = corner_idx[cb];
        let pa = img.point_position(ia, ja, ka);
        let pb = img.point_position(ib, jb, kb);
        let p = pa + (pb - pa) * t;
        let ga = gradient_at(ia, ja, ka);
        let gb = gradient_at(ib, jb, kb);
        // Normals point from high values to low (outward of the blob).
        let n = (ga + (gb - ga) * t).normalized() * -1.0;
        let idx = out.add_point(p.to_array(), Some(n.to_array()));
        for (slot, name) in cv.iter_mut().zip(carried) {
            let arr = img.point_data.get(name).expect("carried array exists");
            let fa = arr.get_f32(img.point_index(ia, ja, ka));
            let fb = arr.get_f32(img.point_index(ib, jb, kb));
            slot.push(fa + (fb - fa) * t);
        }
        idx
    };

    match inside.len() {
        0 | 4 => {}
        1 => {
            let a = inside[0];
            let v0 = emit_edge(a, outside[0], out, carried_vals);
            let v1 = emit_edge(a, outside[1], out, carried_vals);
            let v2 = emit_edge(a, outside[2], out, carried_vals);
            out.triangles.push([v0, v1, v2]);
        }
        3 => {
            let a = outside[0];
            let v0 = emit_edge(inside[0], a, out, carried_vals);
            let v1 = emit_edge(inside[1], a, out, carried_vals);
            let v2 = emit_edge(inside[2], a, out, carried_vals);
            out.triangles.push([v0, v1, v2]);
        }
        2 => {
            // Quad between the two crossing edge pairs, split into two
            // triangles.
            let (i0, i1) = (inside[0], inside[1]);
            let (o0, o1) = (outside[0], outside[1]);
            let v00 = emit_edge(i0, o0, out, carried_vals);
            let v01 = emit_edge(i0, o1, out, carried_vals);
            let v11 = emit_edge(i1, o1, out, carried_vals);
            let v10 = emit_edge(i1, o0, out, carried_vals);
            out.triangles.push([v00, v01, v11]);
            out.triangles.push([v00, v11, v10]);
        }
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::vec3;

    /// A grid holding the distance from the center.
    fn sphere_grid(n: usize) -> ImageData {
        let mut g = ImageData::new([n, n, n]);
        let c = (n - 1) as f32 / 2.0;
        let mut vals = Vec::with_capacity(n * n * n);
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let d = vec3(i as f32 - c, j as f32 - c, k as f32 - c).length();
                    vals.push(d);
                }
            }
        }
        g.point_data.set("d", DataArray::F32(vals));
        g
    }

    #[test]
    fn empty_when_iso_outside_range() {
        let g = sphere_grid(8);
        assert_eq!(contour(&g, "d", &[1000.0]).num_triangles(), 0);
        assert_eq!(contour(&g, "d", &[-5.0]).num_triangles(), 0);
    }

    #[test]
    fn sphere_isosurface_has_expected_area() {
        let g = sphere_grid(24);
        let r = 8.0f64;
        let surf = contour(&g, "d", &[r]);
        assert!(surf.num_triangles() > 100);
        let area = surf.surface_area() as f64;
        let expect = 4.0 * std::f64::consts::PI * r * r;
        let err = (area - expect).abs() / expect;
        assert!(err < 0.05, "area {area} vs sphere {expect} (err {err:.3})");
    }

    #[test]
    fn vertices_lie_on_the_isosurface() {
        let g = sphere_grid(16);
        let surf = contour(&g, "d", &[5.0]);
        for p in &surf.points {
            let d = vec3(p[0] - 7.5, p[1] - 7.5, p[2] - 7.5).length();
            assert!((d - 5.0).abs() < 0.25, "vertex at distance {d}");
        }
    }

    #[test]
    fn normals_point_outward_for_distance_field() {
        // The field grows outward, so normals (−gradient… negated to point
        // from high to low) must point *toward the center*? No: normals =
        // −∇d points inward for a distance field; what matters is
        // consistency — check alignment with the radial direction.
        let g = sphere_grid(16);
        let surf = contour(&g, "d", &[5.0]);
        let mut aligned = 0usize;
        for (p, n) in surf.points.iter().zip(&surf.normals) {
            let radial = vec3(p[0] - 7.5, p[1] - 7.5, p[2] - 7.5).normalized();
            let nn = vec3(n[0], n[1], n[2]);
            if radial.dot(nn).abs() > 0.9 {
                aligned += 1;
            }
        }
        assert!(
            aligned as f64 > surf.points.len() as f64 * 0.95,
            "{aligned}/{}",
            surf.points.len()
        );
    }

    #[test]
    fn multiple_isovalues_nest() {
        let g = sphere_grid(24);
        let inner = contour(&g, "d", &[4.0]).surface_area();
        let outer = contour(&g, "d", &[8.0]).surface_area();
        let both = contour(&g, "d", &[4.0, 8.0]).surface_area();
        assert!(outer > inner);
        assert!((both - inner - outer).abs() / both < 1e-5);
    }

    #[test]
    fn carried_fields_are_interpolated() {
        let mut g = sphere_grid(12);
        // Carry a linear field x; on the surface it must equal vertex x.
        let mut xs = Vec::new();
        for k in 0..12 {
            for j in 0..12 {
                for i in 0..12 {
                    let _ = (j, k);
                    xs.push(i as f32);
                }
            }
        }
        g.point_data.set("x", DataArray::F32(xs));
        let surf = contour(&g, "d", &[4.0]);
        let arr = surf.point_data.get("x").unwrap();
        for (idx, p) in surf.points.iter().enumerate() {
            assert!((arr.get_f32(idx) - p[0]).abs() < 1e-4);
        }
    }

    #[test]
    fn watertight_for_closed_surface() {
        // Every edge of a closed triangle soup from marching tetrahedra
        // must be shared by exactly two triangles (up to vertex position
        // duplication, so compare by quantized position).
        let g = sphere_grid(10);
        let surf = contour(&g, "d", &[3.5]);
        let key = |v: u32| {
            let p = surf.points[v as usize];
            (
                (p[0] * 1024.0).round() as i64,
                (p[1] * 1024.0).round() as i64,
                (p[2] * 1024.0).round() as i64,
            )
        };
        let mut edge_count = std::collections::HashMap::new();
        for t in &surf.triangles {
            for e in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                let (a, b) = (key(e.0), key(e.1));
                let edge = if a <= b { (a, b) } else { (b, a) };
                *edge_count.entry(edge).or_insert(0u32) += 1;
            }
        }
        let bad = edge_count.values().filter(|&&c| c != 2).count();
        assert_eq!(bad, 0, "{bad} non-manifold edges of {}", edge_count.len());
    }
}
