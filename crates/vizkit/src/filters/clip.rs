//! Plane clipping of triangle surfaces.

use crate::data::{DataArray, PolyData};
use crate::math::Vec3;

/// An oriented plane: keeps the half-space `dot(n, p) + d >= 0`.
#[derive(Debug, Clone, Copy)]
pub struct Plane {
    /// Plane normal (need not be unit length).
    pub normal: Vec3,
    /// Plane offset.
    pub offset: f32,
}

impl Plane {
    /// A plane through `point` with the given normal.
    pub fn through(point: Vec3, normal: Vec3) -> Self {
        Self {
            normal,
            offset: -normal.dot(point),
        }
    }

    /// Signed distance (scaled by |normal|) of `p`.
    pub fn eval(&self, p: Vec3) -> f32 {
        self.normal.dot(p) + self.offset
    }
}

/// Clips a triangle mesh against a plane, keeping the positive side.
/// Crossing triangles are split exactly; normals and all point-data
/// arrays are interpolated.
pub fn clip(mesh: &PolyData, plane: Plane) -> PolyData {
    let mut out = PolyData::new();
    let carried: Vec<String> = mesh.point_data.iter().map(|(n, _)| n.clone()).collect();
    let mut carried_vals: Vec<Vec<f32>> = vec![Vec::new(); carried.len()];
    let has_normals = !mesh.normals.is_empty();

    // Copies vertex `v` of the input into the output.
    let copy_vertex = |v: u32, out: &mut PolyData, cv: &mut [Vec<f32>]| -> u32 {
        let n = has_normals.then(|| mesh.normals[v as usize]);
        let idx = out.add_point(mesh.points[v as usize], n);
        for (slot, name) in cv.iter_mut().zip(&carried) {
            slot.push(mesh.point_data.get(name).unwrap().get_f32(v as usize));
        }
        idx
    };

    // Emits the intersection of edge (a, b) with the plane.
    let lerp_vertex = |a: u32, b: u32, t: f32, out: &mut PolyData, cv: &mut [Vec<f32>]| -> u32 {
        let pa = Vec3::from_array(mesh.points[a as usize]);
        let pb = Vec3::from_array(mesh.points[b as usize]);
        let p = pa + (pb - pa) * t;
        let n = has_normals.then(|| {
            let na = Vec3::from_array(mesh.normals[a as usize]);
            let nb = Vec3::from_array(mesh.normals[b as usize]);
            (na + (nb - na) * t).normalized().to_array()
        });
        let idx = out.add_point(p.to_array(), n);
        for (slot, name) in cv.iter_mut().zip(&carried) {
            let arr = mesh.point_data.get(name).unwrap();
            let fa = arr.get_f32(a as usize);
            let fb = arr.get_f32(b as usize);
            slot.push(fa + (fb - fa) * t);
        }
        idx
    };

    for tri in &mesh.triangles {
        let d: Vec<f32> = tri
            .iter()
            .map(|&v| plane.eval(Vec3::from_array(mesh.points[v as usize])))
            .collect();
        let inside: Vec<usize> = (0..3).filter(|&i| d[i] >= 0.0).collect();
        match inside.len() {
            0 => {}
            3 => {
                let v0 = copy_vertex(tri[0], &mut out, &mut carried_vals);
                let v1 = copy_vertex(tri[1], &mut out, &mut carried_vals);
                let v2 = copy_vertex(tri[2], &mut out, &mut carried_vals);
                out.triangles.push([v0, v1, v2]);
            }
            1 => {
                let a = inside[0];
                let (b, c) = ((a + 1) % 3, (a + 2) % 3);
                let tab = d[a] / (d[a] - d[b]);
                let tac = d[a] / (d[a] - d[c]);
                let va = copy_vertex(tri[a], &mut out, &mut carried_vals);
                let vab = lerp_vertex(tri[a], tri[b], tab, &mut out, &mut carried_vals);
                let vac = lerp_vertex(tri[a], tri[c], tac, &mut out, &mut carried_vals);
                out.triangles.push([va, vab, vac]);
            }
            2 => {
                let c = (0..3).find(|i| !inside.contains(i)).unwrap();
                let (a, b) = ((c + 1) % 3, (c + 2) % 3);
                let tac = d[a] / (d[a] - d[c]);
                let tbc = d[b] / (d[b] - d[c]);
                let va = copy_vertex(tri[a], &mut out, &mut carried_vals);
                let vb = copy_vertex(tri[b], &mut out, &mut carried_vals);
                let vac = lerp_vertex(tri[a], tri[c], tac, &mut out, &mut carried_vals);
                let vbc = lerp_vertex(tri[b], tri[c], tbc, &mut out, &mut carried_vals);
                out.triangles.push([va, vb, vbc]);
                out.triangles.push([va, vbc, vac]);
            }
            _ => unreachable!(),
        }
    }
    for (name, vals) in carried.iter().zip(carried_vals) {
        out.point_data.set(name.clone(), DataArray::F32(vals));
    }
    debug_assert!(out.validate().is_ok());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::vec3;

    /// A unit square in the z=0 plane, two triangles.
    fn square() -> PolyData {
        let mut m = PolyData::new();
        m.add_point([0.0, 0.0, 0.0], Some([0.0, 0.0, 1.0]));
        m.add_point([1.0, 0.0, 0.0], Some([0.0, 0.0, 1.0]));
        m.add_point([1.0, 1.0, 0.0], Some([0.0, 0.0, 1.0]));
        m.add_point([0.0, 1.0, 0.0], Some([0.0, 0.0, 1.0]));
        m.triangles.push([0, 1, 2]);
        m.triangles.push([0, 2, 3]);
        m.point_data.set("x", DataArray::F32(vec![0.0, 1.0, 1.0, 0.0]));
        m
    }

    #[test]
    fn keep_all_and_drop_all() {
        let m = square();
        let keep = clip(&m, Plane::through(vec3(0.0, 0.0, -1.0), vec3(0.0, 0.0, 1.0)));
        assert_eq!(keep.num_triangles(), 2);
        let drop = clip(&m, Plane::through(vec3(0.0, 0.0, 1.0), vec3(0.0, 0.0, 1.0)));
        assert_eq!(drop.num_triangles(), 0);
    }

    #[test]
    fn half_clip_preserves_half_the_area() {
        let m = square();
        let clipped = clip(&m, Plane::through(vec3(0.5, 0.0, 0.0), vec3(1.0, 0.0, 0.0)));
        assert!((clipped.surface_area() - 0.5).abs() < 1e-5);
        // All remaining vertices are on the kept side.
        for p in &clipped.points {
            assert!(p[0] >= 0.5 - 1e-6);
        }
    }

    #[test]
    fn clip_interpolates_point_data() {
        let m = square();
        let clipped = clip(&m, Plane::through(vec3(0.25, 0.0, 0.0), vec3(1.0, 0.0, 0.0)));
        let xs = clipped.point_data.get("x").unwrap();
        for (i, p) in clipped.points.iter().enumerate() {
            assert!(
                (xs.get_f32(i) - p[0]).abs() < 1e-5,
                "carried x must equal coordinate"
            );
        }
    }

    #[test]
    fn complementary_clips_cover_the_surface() {
        let m = square();
        let pos = clip(&m, Plane::through(vec3(0.3, 0.0, 0.0), vec3(1.0, 0.0, 0.0)));
        let neg = clip(&m, Plane::through(vec3(0.3, 0.0, 0.0), vec3(-1.0, 0.0, 0.0)));
        let total = pos.surface_area() + neg.surface_area();
        assert!((total - 1.0).abs() < 1e-4, "total {total}");
    }

    #[test]
    fn normals_survive_clipping() {
        let m = square();
        let clipped = clip(&m, Plane::through(vec3(0.5, 0.0, 0.0), vec3(1.0, 0.0, 0.0)));
        assert_eq!(clipped.normals.len(), clipped.points.len());
        for n in &clipped.normals {
            assert!((n[2] - 1.0).abs() < 1e-6);
        }
    }
}
