//! Resampling voxel-based unstructured grids onto regular grids.
//!
//! The Deep Water Impact pipeline volume-renders an unstructured mesh.
//! Its meshes (like the xRAGE AMR output the real dataset comes from) are
//! voxel-based, so resampling reduces to rasterizing each cell's box into
//! the target grid — no general point location needed.

use crate::data::{CellType, DataArray, ImageData, UnstructuredGrid};
use crate::math::Vec3;

/// Resamples the cell-data scalar `field` of a voxel/hexahedron grid onto
/// a regular grid with `dims` points covering the input's bounds. Grid
/// points covered by no cell get `background`.
pub fn resample_to_image(
    grid: &UnstructuredGrid,
    field: &str,
    dims: [usize; 3],
    background: f32,
) -> ImageData {
    let arr = grid
        .cell_data
        .get(field)
        .unwrap_or_else(|| panic!("resample: no cell field {field:?}"));
    let mut img = ImageData::new(dims);
    let Some((lo, hi)) = grid.bounds() else {
        img.point_data
            .set(field, DataArray::F32(vec![background; img.num_points()]));
        return img;
    };
    img.origin = lo.to_array();
    let span = hi - lo;
    img.spacing = [
        span.x / (dims[0].saturating_sub(1).max(1)) as f32,
        span.y / (dims[1].saturating_sub(1).max(1)) as f32,
        span.z / (dims[2].saturating_sub(1).max(1)) as f32,
    ];
    let mut vals = vec![background; img.num_points()];
    let mut weight = vec![0u16; img.num_points()];

    for c in 0..grid.num_cells() {
        debug_assert!(matches!(
            grid.cell_types[c],
            CellType::Voxel | CellType::Hexahedron
        ));
        // Cell bounding box.
        let pts = grid.cell_points(c);
        let mut clo = Vec3::from_array(grid.points[pts[0] as usize]);
        let mut chi = clo;
        for &p in &pts[1..] {
            let v = Vec3::from_array(grid.points[p as usize]);
            clo.x = clo.x.min(v.x);
            clo.y = clo.y.min(v.y);
            clo.z = clo.z.min(v.z);
            chi.x = chi.x.max(v.x);
            chi.y = chi.y.max(v.y);
            chi.z = chi.z.max(v.z);
        }
        let v = arr.get_f32(c);
        // Covered grid-point index range (inclusive).
        let to_idx = |w: f32, axis: usize, round_up: bool| -> usize {
            let f = (w - img.origin[axis]) / img.spacing[axis].max(1e-20);
            let i = if round_up { f.ceil() } else { f.floor() } as i64;
            i.clamp(0, dims[axis] as i64 - 1) as usize
        };
        let (i0, i1) = (to_idx(clo.x, 0, true), to_idx(chi.x, 0, false));
        let (j0, j1) = (to_idx(clo.y, 1, true), to_idx(chi.y, 1, false));
        let (k0, k1) = (to_idx(clo.z, 2, true), to_idx(chi.z, 2, false));
        for k in k0..=k1 {
            for j in j0..=j1 {
                for i in i0..=i1 {
                    let idx = img.point_index(i, j, k);
                    // Average overlapping cells (block boundaries).
                    let w = weight[idx];
                    if w == 0 {
                        vals[idx] = v;
                    } else {
                        vals[idx] = (vals[idx] * w as f32 + v) / (w + 1) as f32;
                    }
                    weight[idx] = w.saturating_add(1);
                }
            }
        }
    }
    img.point_data.set(field, DataArray::F32(vals));
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    fn voxel_grid(n: usize, value_fn: impl Fn(usize) -> f32) -> UnstructuredGrid {
        // A row of n unit voxels along x.
        let mut g = UnstructuredGrid::new();
        // Points: (n+1) x 2 x 2, x-fastest.
        for k in 0..2u32 {
            for j in 0..2u32 {
                for i in 0..=n as u32 {
                    g.points.push([i as f32, j as f32, k as f32]);
                }
            }
        }
        let nx = (n + 1) as u32;
        let idx = |i: u32, j: u32, k: u32| k * (nx * 2) + j * nx + i;
        let mut vals = Vec::new();
        for c in 0..n as u32 {
            g.add_cell(
                CellType::Voxel,
                &[
                    idx(c, 0, 0),
                    idx(c + 1, 0, 0),
                    idx(c, 1, 0),
                    idx(c + 1, 1, 0),
                    idx(c, 0, 1),
                    idx(c + 1, 0, 1),
                    idx(c, 1, 1),
                    idx(c + 1, 1, 1),
                ],
            );
            vals.push(value_fn(c as usize));
        }
        g.cell_data.set("v", DataArray::F32(vals));
        g
    }

    #[test]
    fn resampled_grid_covers_bounds() {
        let g = voxel_grid(4, |c| c as f32);
        let img = resample_to_image(&g, "v", [9, 3, 3], -1.0);
        assert_eq!(img.origin, [0.0, 0.0, 0.0]);
        let (_, hi) = img.bounds();
        assert!((hi.x - 4.0).abs() < 1e-5);
        assert!((hi.y - 1.0).abs() < 1e-5);
    }

    #[test]
    fn interior_points_take_cell_values() {
        let g = voxel_grid(4, |c| c as f32 * 10.0);
        let img = resample_to_image(&g, "v", [9, 3, 3], -1.0);
        let arr = img.point_data.get("v").unwrap();
        // Point at x = 0.5 lies inside cell 0 only.
        let v = arr.get_f32(img.point_index(1, 1, 1));
        assert_eq!(v, 0.0);
        // Point at x = 2.5 lies inside cell 2 only.
        let v = arr.get_f32(img.point_index(5, 1, 1));
        assert_eq!(v, 20.0);
    }

    #[test]
    fn shared_faces_average_neighbors() {
        let g = voxel_grid(2, |c| if c == 0 { 0.0 } else { 10.0 });
        let img = resample_to_image(&g, "v", [3, 2, 2], -1.0);
        let arr = img.point_data.get("v").unwrap();
        // The middle plane belongs to both voxels: average.
        let v = arr.get_f32(img.point_index(1, 0, 0));
        assert_eq!(v, 5.0);
    }

    #[test]
    fn uncovered_points_keep_background() {
        let mut g = voxel_grid(1, |_| 7.0);
        // Stretch bounds with an isolated far point so part of the target
        // grid is uncovered.
        g.points.push([10.0, 10.0, 10.0]);
        let img = resample_to_image(&g, "v", [11, 11, 11], -3.0);
        let arr = img.point_data.get("v").unwrap();
        assert_eq!(arr.get_f32(img.point_index(10, 10, 10)), -3.0);
        assert_eq!(arr.get_f32(img.point_index(0, 0, 0)), 7.0);
    }

    #[test]
    fn empty_grid_yields_background_everywhere() {
        let g = UnstructuredGrid::new();
        let mut g2 = g.clone();
        g2.cell_data.set("v", DataArray::F32(vec![]));
        let img = resample_to_image(&g2, "v", [4, 4, 4], 0.5);
        let arr = img.point_data.get("v").unwrap();
        for i in 0..arr.len() {
            assert_eq!(arr.get_f32(i), 0.5);
        }
    }
}
