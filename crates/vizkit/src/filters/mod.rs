//! Filters: the analysis stages of the paper's three pipelines.
//!
//! * Gray–Scott: [`contour`] (multiple isovalues) + [`clip`];
//! * Mandelbulb: [`contour`] (single isovalue);
//! * Deep Water Impact: [`merge_blocks`] + [`resample_to_image`] feeding
//!   the volume renderer.

mod clip;
mod contour;
mod merge;
mod resample;
mod threshold;

pub use clip::{clip, Plane};
pub use contour::contour;
pub use merge::merge_blocks;
pub use resample::resample_to_image;
pub use threshold::threshold_cells;
