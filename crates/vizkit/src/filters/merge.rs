//! Block merging (ParaView's MergeBlocks, used by the DWI pipeline).

use crate::data::{DataArray, UnstructuredGrid};

/// Merges unstructured grids into one: points and cells are concatenated
/// (indices rebased); only attribute arrays present in *every* block are
/// kept, concatenated in block order.
pub fn merge_blocks(blocks: &[&UnstructuredGrid]) -> UnstructuredGrid {
    let mut out = UnstructuredGrid::new();
    if blocks.is_empty() {
        return out;
    }

    // Arrays common to all blocks, by name, separately for points/cells.
    let common = |pick: fn(&UnstructuredGrid) -> &crate::data::Attributes| -> Vec<String> {
        let first: Vec<String> = pick(blocks[0]).iter().map(|(n, _)| n.clone()).collect();
        first
            .into_iter()
            .filter(|n| blocks.iter().all(|b| pick(b).get(n).is_some()))
            .collect()
    };
    let point_arrays = common(|g| &g.point_data);
    let cell_arrays = common(|g| &g.cell_data);

    for block in blocks {
        let base = out.points.len() as u32;
        out.points.extend_from_slice(&block.points);
        let conn_base = out.connectivity.len() as u32;
        out.connectivity
            .extend(block.connectivity.iter().map(|&p| p + base));
        // Skip the leading 0 of each block's offsets.
        out.offsets
            .extend(block.offsets.iter().skip(1).map(|&o| o + conn_base));
        out.cell_types.extend_from_slice(&block.cell_types);
    }

    let concat = |names: &[String],
                  pick: fn(&UnstructuredGrid) -> &crate::data::Attributes|
     -> Vec<(String, DataArray)> {
        names
            .iter()
            .map(|name| {
                let mut vals = Vec::new();
                for block in blocks {
                    let arr = pick(block).get(name).expect("common array");
                    for i in 0..arr.len() {
                        vals.push(arr.get_f32(i));
                    }
                }
                (name.clone(), DataArray::F32(vals))
            })
            .collect()
    };
    for (name, arr) in concat(&point_arrays, |g| &g.point_data) {
        out.point_data.set(name, arr);
    }
    for (name, arr) in concat(&cell_arrays, |g| &g.cell_data) {
        out.cell_data.set(name, arr);
    }
    debug_assert!(out.validate().is_ok());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CellType;

    fn block(offset: f32, value: f32) -> UnstructuredGrid {
        let mut g = UnstructuredGrid::new();
        for k in 0..2 {
            for j in 0..2 {
                for i in 0..2 {
                    g.points.push([i as f32 + offset, j as f32, k as f32]);
                }
            }
        }
        g.add_cell(CellType::Voxel, &[0, 1, 2, 3, 4, 5, 6, 7]);
        g.cell_data.set("v", DataArray::F32(vec![value]));
        g.point_data.set("p", DataArray::F32(vec![value; 8]));
        g
    }

    #[test]
    fn merge_concatenates_and_rebases() {
        let a = block(0.0, 1.0);
        let b = block(2.0, 2.0);
        let merged = merge_blocks(&[&a, &b]);
        assert_eq!(merged.num_points(), 16);
        assert_eq!(merged.num_cells(), 2);
        assert_eq!(merged.cell_points(1), &[8, 9, 10, 11, 12, 13, 14, 15]);
        merged.validate().unwrap();
    }

    #[test]
    fn merge_concatenates_attributes_in_order() {
        let a = block(0.0, 1.0);
        let b = block(2.0, 2.0);
        let merged = merge_blocks(&[&a, &b]);
        let v = merged.cell_data.get("v").unwrap();
        assert_eq!((v.get(0), v.get(1)), (1.0, 2.0));
        assert_eq!(merged.point_data.get("p").unwrap().len(), 16);
    }

    #[test]
    fn non_common_arrays_are_dropped() {
        let a = block(0.0, 1.0);
        let mut b = block(2.0, 2.0);
        b.cell_data.set("extra", DataArray::F32(vec![9.0]));
        let merged = merge_blocks(&[&a, &b]);
        assert!(merged.cell_data.get("extra").is_none());
        assert!(merged.cell_data.get("v").is_some());
    }

    #[test]
    fn empty_input_gives_empty_grid() {
        let merged = merge_blocks(&[]);
        assert_eq!(merged.num_cells(), 0);
        merged.validate().unwrap();
    }

    #[test]
    fn single_block_is_identity_shaped() {
        let a = block(0.0, 3.0);
        let merged = merge_blocks(&[&a]);
        assert_eq!(merged.num_points(), a.num_points());
        assert_eq!(merged.num_cells(), a.num_cells());
        assert_eq!(merged.cell_points(0), a.cell_points(0));
    }
}
