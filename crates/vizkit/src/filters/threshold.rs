//! Cell thresholding.

use crate::data::{DataArray, UnstructuredGrid};

/// Keeps the cells whose cell-data scalar `field` lies in
/// `[lo, hi]`. Points are compacted; point attributes follow.
pub fn threshold_cells(grid: &UnstructuredGrid, field: &str, lo: f64, hi: f64) -> UnstructuredGrid {
    let arr = grid
        .cell_data
        .get(field)
        .unwrap_or_else(|| panic!("threshold: no cell field {field:?}"));
    let mut out = UnstructuredGrid::new();
    let mut point_map: Vec<Option<u32>> = vec![None; grid.num_points()];
    let mut kept_cells = Vec::new();
    let mut mapped = Vec::new();

    for c in 0..grid.num_cells() {
        let v = arr.get(c);
        if v < lo || v > hi {
            continue;
        }
        kept_cells.push(c);
        mapped.clear();
        for &p in grid.cell_points(c) {
            let new = match point_map[p as usize] {
                Some(n) => n,
                None => {
                    let n = out.points.len() as u32;
                    out.points.push(grid.points[p as usize]);
                    point_map[p as usize] = Some(n);
                    n
                }
            };
            mapped.push(new);
        }
        out.add_cell(grid.cell_types[c], &mapped);
    }

    // Compact attributes.
    for (name, src) in grid.cell_data.iter() {
        let vals: Vec<f32> = kept_cells.iter().map(|&c| src.get_f32(c)).collect();
        out.cell_data.set(name.clone(), DataArray::F32(vals));
    }
    for (name, src) in grid.point_data.iter() {
        let mut vals = vec![0f32; out.points.len()];
        for (old, new) in point_map.iter().enumerate() {
            if let Some(n) = new {
                vals[*n as usize] = src.get_f32(old);
            }
        }
        out.point_data.set(name.clone(), DataArray::F32(vals));
    }
    debug_assert!(out.validate().is_ok());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::CellType;

    fn two_voxels() -> UnstructuredGrid {
        let mut g = UnstructuredGrid::new();
        for k in 0..2 {
            for j in 0..2 {
                for i in 0..3 {
                    g.points.push([i as f32, j as f32, k as f32]);
                }
            }
        }
        // Points laid out x-fastest with nx = 3.
        let idx = |i: u32, j: u32, k: u32| k * 6 + j * 3 + i;
        g.add_cell(
            CellType::Voxel,
            &[
                idx(0, 0, 0),
                idx(1, 0, 0),
                idx(0, 1, 0),
                idx(1, 1, 0),
                idx(0, 0, 1),
                idx(1, 0, 1),
                idx(0, 1, 1),
                idx(1, 1, 1),
            ],
        );
        g.add_cell(
            CellType::Voxel,
            &[
                idx(1, 0, 0),
                idx(2, 0, 0),
                idx(1, 1, 0),
                idx(2, 1, 0),
                idx(1, 0, 1),
                idx(2, 0, 1),
                idx(1, 1, 1),
                idx(2, 1, 1),
            ],
        );
        g.cell_data.set("v", DataArray::F32(vec![1.0, 5.0]));
        g.point_data
            .set("x", DataArray::F32(g.points.iter().map(|p| p[0]).collect()));
        g
    }

    #[test]
    fn keeps_only_matching_cells() {
        let g = two_voxels();
        let t = threshold_cells(&g, "v", 4.0, 10.0);
        assert_eq!(t.num_cells(), 1);
        assert_eq!(t.cell_data.get("v").unwrap().get(0), 5.0);
        // Only the 8 points of the second voxel remain.
        assert_eq!(t.num_points(), 8);
        t.validate().unwrap();
    }

    #[test]
    fn point_attributes_follow_compaction() {
        let g = two_voxels();
        let t = threshold_cells(&g, "v", 4.0, 10.0);
        let xs = t.point_data.get("x").unwrap();
        for (i, p) in t.points.iter().enumerate() {
            assert_eq!(xs.get_f32(i), p[0]);
        }
    }

    #[test]
    fn full_range_is_identity_sized() {
        let g = two_voxels();
        let t = threshold_cells(&g, "v", 0.0, 10.0);
        assert_eq!(t.num_cells(), 2);
        assert_eq!(t.num_points(), 12);
    }

    #[test]
    fn empty_result_is_valid() {
        let g = two_voxels();
        let t = threshold_cells(&g, "v", 100.0, 200.0);
        assert_eq!(t.num_cells(), 0);
        assert_eq!(t.num_points(), 0);
        t.validate().unwrap();
    }
}
