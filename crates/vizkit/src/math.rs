//! Minimal 3-D math: vectors and 4×4 matrices for cameras and transforms.

use std::ops::{Add, Mul, Sub};

/// A 3-component single-precision vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f32,
    /// y component.
    pub y: f32,
    /// z component.
    pub z: f32,
}

/// Constructs a [`Vec3`].
pub const fn vec3(x: f32, y: f32, z: f32) -> Vec3 {
    Vec3 { x, y, z }
}

impl Vec3 {
    /// Dot product.
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    pub fn cross(self, o: Vec3) -> Vec3 {
        vec3(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Euclidean length.
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Unit-length copy (returns self when near zero length).
    pub fn normalized(self) -> Vec3 {
        let l = self.length();
        if l > 1e-20 {
            self * (1.0 / l)
        } else {
            self
        }
    }

    /// Component-wise scale.
    pub fn scale(self, s: f32) -> Vec3 {
        self * s
    }

    /// As an array.
    pub fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }

    /// From an array.
    pub fn from_array(a: [f32; 3]) -> Vec3 {
        vec3(a[0], a[1], a[2])
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        vec3(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        vec3(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f32> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f32) -> Vec3 {
        vec3(self.x * s, self.y * s, self.z * s)
    }
}

/// A column-major 4×4 matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// Elements in column-major order: `m[col][row]`.
    pub m: [[f32; 4]; 4],
}

impl Mat4 {
    /// Identity matrix.
    pub fn identity() -> Self {
        let mut m = [[0.0; 4]; 4];
        for (i, col) in m.iter_mut().enumerate() {
            col[i] = 1.0;
        }
        Self { m }
    }

    /// Matrix product `self * rhs`.
    pub fn mul_mat(&self, rhs: &Mat4) -> Mat4 {
        let mut out = [[0.0f32; 4]; 4];
        for (c, out_col) in out.iter_mut().enumerate() {
            for (r, out_cell) in out_col.iter_mut().enumerate() {
                *out_cell = (0..4).map(|k| self.m[k][r] * rhs.m[c][k]).sum();
            }
        }
        Mat4 { m: out }
    }

    /// Transforms a point (w = 1), returning the homogeneous result.
    pub fn transform_point(&self, p: Vec3) -> [f32; 4] {
        let v = [p.x, p.y, p.z, 1.0];
        let mut out = [0.0f32; 4];
        for (r, out_cell) in out.iter_mut().enumerate() {
            *out_cell = (0..4).map(|c| self.m[c][r] * v[c]).sum();
        }
        out
    }

    /// A right-handed look-at view matrix.
    pub fn look_at(eye: Vec3, center: Vec3, up: Vec3) -> Mat4 {
        let f = (center - eye).normalized();
        let s = f.cross(up).normalized();
        let u = s.cross(f);
        let mut m = Mat4::identity();
        m.m[0][0] = s.x;
        m.m[1][0] = s.y;
        m.m[2][0] = s.z;
        m.m[0][1] = u.x;
        m.m[1][1] = u.y;
        m.m[2][1] = u.z;
        m.m[0][2] = -f.x;
        m.m[1][2] = -f.y;
        m.m[2][2] = -f.z;
        m.m[3][0] = -s.dot(eye);
        m.m[3][1] = -u.dot(eye);
        m.m[3][2] = f.dot(eye);
        m
    }

    /// A right-handed perspective projection (depth to [-1, 1]).
    pub fn perspective(fovy_rad: f32, aspect: f32, near: f32, far: f32) -> Mat4 {
        let f = 1.0 / (fovy_rad / 2.0).tan();
        let mut m = Mat4 { m: [[0.0; 4]; 4] };
        m.m[0][0] = f / aspect;
        m.m[1][1] = f;
        m.m[2][2] = (far + near) / (near - far);
        m.m[2][3] = -1.0;
        m.m[3][2] = 2.0 * far * near / (near - far);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn vector_algebra() {
        let a = vec3(1.0, 0.0, 0.0);
        let b = vec3(0.0, 1.0, 0.0);
        assert_eq!(a.cross(b), vec3(0.0, 0.0, 1.0));
        assert!(close(a.dot(b), 0.0));
        assert!(close((a + b).length(), 2f32.sqrt()));
        assert!(close((a - b).length(), 2f32.sqrt()));
        assert!(close(vec3(3.0, 4.0, 0.0).normalized().length(), 1.0));
    }

    #[test]
    fn identity_is_neutral() {
        let i = Mat4::identity();
        let p = vec3(1.5, -2.0, 3.0);
        let out = i.transform_point(p);
        assert_eq!(&out[..3], &[1.5, -2.0, 3.0]);
        assert_eq!(out[3], 1.0);
        assert_eq!(i.mul_mat(&i), i);
    }

    #[test]
    fn look_at_moves_eye_to_origin() {
        let eye = vec3(0.0, 0.0, 5.0);
        let view = Mat4::look_at(eye, vec3(0.0, 0.0, 0.0), vec3(0.0, 1.0, 0.0));
        let out = view.transform_point(eye);
        assert!(close(out[0], 0.0) && close(out[1], 0.0) && close(out[2], 0.0));
        // A point in front of the eye lands on the -z axis.
        let front = view.transform_point(vec3(0.0, 0.0, 0.0));
        assert!(front[2] < 0.0);
    }

    #[test]
    fn perspective_maps_near_and_far_planes() {
        let proj = Mat4::perspective(std::f32::consts::FRAC_PI_2, 1.0, 1.0, 10.0);
        let near = proj.transform_point(vec3(0.0, 0.0, -1.0));
        let far = proj.transform_point(vec3(0.0, 0.0, -10.0));
        assert!(close(near[2] / near[3], -1.0));
        assert!(close(far[2] / far[3], 1.0));
    }

    #[test]
    fn matrix_product_composes_transforms() {
        let view = Mat4::look_at(vec3(3.0, 0.0, 0.0), vec3(0.0, 0.0, 0.0), vec3(0.0, 0.0, 1.0));
        let proj = Mat4::perspective(1.0, 1.0, 0.1, 100.0);
        let combined = proj.mul_mat(&view);
        let p = vec3(0.5, 0.5, 0.5);
        let a = combined.transform_point(p);
        let v = view.transform_point(p);
        let b = proj.transform_point(vec3(v[0], v[1], v[2]));
        for i in 0..4 {
            assert!(close(a[i], b[i]), "{a:?} vs {b:?}");
        }
    }
}
