//! # vizkit — a miniature VTK for in situ visualization
//!
//! Colza's pipelines run ParaView/Catalyst, which sits on VTK's data model,
//! filters, renderers, and an abstract communication layer. No Rust
//! bindings exist for any of that (the reproduction's repro band is 2), so
//! this crate rebuilds the slice the paper's three pipelines exercise:
//!
//! * **Data model** ([`data`]): typed data arrays, regular grids
//!   (`ImageData`), unstructured grids (voxel/hexahedron/tetra/triangle
//!   cells), and triangle surfaces (`PolyData`), with point and cell
//!   attributes.
//! * **Filters** ([`filters`]): marching-cubes contouring, plane clipping,
//!   thresholding, block merging, and resampling of voxel-based
//!   unstructured grids to regular grids (the DWI volume-rendering path).
//! * **Rendering** ([`render`]): a software triangle rasterizer with
//!   z-buffer and Lambert shading, and a front-to-back volume ray-caster,
//!   plus cameras, color maps and transfer functions.
//! * **Communication abstraction** ([`controller`]): the analogue of
//!   `vtkMultiProcessController`/`vtkCommunicator` — the seam the paper
//!   exploits to inject MoNA in place of MPI *without modifying VTK*.
//!   Concrete controllers live outside this crate (in `catalyst`), exactly
//!   as `vtkMPIController` lives outside core VTK modules.

pub mod controller;
pub mod data;
pub mod filters;
pub mod math;
pub mod render;

pub use controller::{global_controller, set_global_controller, Controller, VtkComm};
pub use data::{Attributes, DataArray, DataSet, ImageData, PolyData, UnstructuredGrid};
pub use render::{Camera, ColorMap, Image, TransferFunction};
