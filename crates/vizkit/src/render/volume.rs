//! Volume ray-casting of regular grids.

use crate::data::ImageData;
use crate::math::Vec3;
use crate::render::{Camera, Image, TransferFunction};

/// Front-to-back volume rendering of a point-data scalar field.
///
/// Produces a premultiplied-alpha image; `depth` holds the first sample
/// with noticeable opacity (used for ordered parallel compositing). The
/// `step` is the sampling distance in world units.
pub fn render_volume(
    vol: &ImageData,
    field: &str,
    camera: &Camera,
    tf: &TransferFunction,
    width: usize,
    height: usize,
    step: f32,
) -> Image {
    let mut img = Image::new(width, height);
    let (lo, hi) = vol.bounds();
    for y in 0..height {
        for x in 0..width {
            let (origin, dir) = camera.pixel_ray(x as f32, y as f32, width, height);
            let Some((t_in, t_out)) = ray_box(origin, dir, lo, hi) else {
                continue;
            };
            let t_in = t_in.max(camera.near);
            if t_out <= t_in {
                continue;
            }
            let mut color = [0f32; 3];
            let mut alpha = 0f32;
            let mut first_hit: Option<f32> = None;
            let mut t = t_in;
            while t < t_out && alpha < 0.995 {
                let p = origin + dir * t;
                if let Some(v) = vol.sample_trilinear(field, p) {
                    let (rgb, a) = tf.eval(v);
                    // Opacity correction for the step length.
                    let a = 1.0 - (1.0 - a.clamp(0.0, 1.0)).powf(step);
                    if a > 0.0 {
                        let w = a * (1.0 - alpha);
                        color[0] += rgb[0] * w;
                        color[1] += rgb[1] * w;
                        color[2] += rgb[2] * w;
                        alpha += w;
                        if first_hit.is_none() && alpha > 0.02 {
                            first_hit = Some(t);
                        }
                    }
                }
                t += step;
            }
            if alpha > 0.003 {
                let i = img.idx(x, y);
                img.rgba[i * 4] = (color[0] * 255.0).min(255.0) as u8;
                img.rgba[i * 4 + 1] = (color[1] * 255.0).min(255.0) as u8;
                img.rgba[i * 4 + 2] = (color[2] * 255.0).min(255.0) as u8;
                img.rgba[i * 4 + 3] = (alpha * 255.0).min(255.0) as u8;
                // Normalized pseudo-depth from the hit distance.
                let hit = first_hit.unwrap_or(t_in);
                img.depth[i] = (hit / camera.far).clamp(0.0, 0.9999);
            }
        }
    }
    img
}

/// Ray / axis-aligned box intersection; returns `(t_enter, t_exit)`.
fn ray_box(origin: Vec3, dir: Vec3, lo: Vec3, hi: Vec3) -> Option<(f32, f32)> {
    let mut t0 = 0f32;
    let mut t1 = f32::INFINITY;
    for axis in 0..3 {
        let (o, d, l, h) = match axis {
            0 => (origin.x, dir.x, lo.x, hi.x),
            1 => (origin.y, dir.y, lo.y, hi.y),
            _ => (origin.z, dir.z, lo.z, hi.z),
        };
        if d.abs() < 1e-12 {
            if o < l || o > h {
                return None;
            }
            continue;
        }
        let (mut a, mut b) = ((l - o) / d, (h - o) / d);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        t0 = t0.max(a);
        t1 = t1.min(b);
        if t0 > t1 {
            return None;
        }
    }
    Some((t0, t1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataArray;
    use crate::math::vec3;
    use crate::render::ColorMap;

    fn ball_volume(n: usize) -> ImageData {
        let mut g = ImageData::new([n, n, n]);
        let c = (n - 1) as f32 / 2.0;
        let mut vals = Vec::with_capacity(n * n * n);
        for k in 0..n {
            for j in 0..n {
                for i in 0..n {
                    let d = vec3(i as f32 - c, j as f32 - c, k as f32 - c).length();
                    // Dense inside a ball of radius n/4, empty outside.
                    vals.push(if d < c / 2.0 { 1.0 } else { 0.0 });
                }
            }
        }
        g.point_data.set("rho", DataArray::F32(vals));
        g
    }

    fn tf() -> TransferFunction {
        TransferFunction::ramp(ColorMap::viridis((0.0, 1.0)), 0.9)
    }

    #[test]
    fn ray_box_hits_and_misses() {
        let lo = vec3(0.0, 0.0, 0.0);
        let hi = vec3(1.0, 1.0, 1.0);
        let hit = ray_box(vec3(0.5, 0.5, -1.0), vec3(0.0, 0.0, 1.0), lo, hi).unwrap();
        assert!((hit.0 - 1.0).abs() < 1e-5 && (hit.1 - 2.0).abs() < 1e-5);
        assert!(ray_box(vec3(2.0, 2.0, -1.0), vec3(0.0, 0.0, 1.0), lo, hi).is_none());
        // Ray parallel to an axis inside the slab.
        assert!(ray_box(vec3(0.5, 0.5, 0.5), vec3(1.0, 0.0, 0.0), lo, hi).is_some());
    }

    #[test]
    fn ball_appears_in_the_center() {
        let vol = ball_volume(20);
        let (lo, hi) = vol.bounds();
        let cam = Camera::fit_bounds(lo, hi);
        let img = render_volume(&vol, "rho", &cam, &tf(), 40, 40, 0.5);
        let center = img.idx(20, 20);
        assert!(img.rgba[center * 4 + 3] > 60, "center alpha too low");
        let corner = img.idx(1, 1);
        assert_eq!(img.rgba[corner * 4 + 3], 0, "corner should be empty");
    }

    #[test]
    fn depth_is_sensible_for_hits() {
        let vol = ball_volume(16);
        let (lo, hi) = vol.bounds();
        let cam = Camera::fit_bounds(lo, hi);
        let img = render_volume(&vol, "rho", &cam, &tf(), 32, 32, 0.5);
        let center = img.idx(16, 16);
        assert!(img.depth[center] < 1.0);
        assert!(img.depth[center] > 0.0);
    }

    #[test]
    fn empty_volume_renders_nothing() {
        let mut vol = ImageData::new([8, 8, 8]);
        vol.point_data
            .set("rho", DataArray::F32(vec![0.0; 8 * 8 * 8]));
        let cam = Camera::fit_bounds(vec3(0.0, 0.0, 0.0), vec3(7.0, 7.0, 7.0));
        let img = render_volume(&vol, "rho", &cam, &tf(), 16, 16, 0.5);
        assert_eq!(img.coverage(), 0.0);
    }

    #[test]
    fn denser_sampling_increases_or_keeps_opacity_similar() {
        // Opacity correction should make step size roughly neutral.
        let vol = ball_volume(16);
        let (lo, hi) = vol.bounds();
        let cam = Camera::fit_bounds(lo, hi);
        let coarse = render_volume(&vol, "rho", &cam, &tf(), 24, 24, 1.0);
        let fine = render_volume(&vol, "rho", &cam, &tf(), 24, 24, 0.25);
        let ci = coarse.idx(12, 12);
        let a_coarse = coarse.rgba[ci * 4 + 3] as f32;
        let a_fine = fine.rgba[ci * 4 + 3] as f32;
        assert!(
            (a_coarse - a_fine).abs() < 80.0,
            "step correction broken: {a_coarse} vs {a_fine}"
        );
    }
}
