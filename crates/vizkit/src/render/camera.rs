//! Cameras.

use crate::math::{vec3, Mat4, Vec3};

/// A perspective camera.
#[derive(Debug, Clone, Copy)]
pub struct Camera {
    /// Eye position.
    pub position: Vec3,
    /// Look-at target.
    pub focal_point: Vec3,
    /// View-up direction.
    pub up: Vec3,
    /// Vertical field of view in degrees.
    pub fovy_deg: f32,
    /// Near clip distance.
    pub near: f32,
    /// Far clip distance.
    pub far: f32,
}

impl Default for Camera {
    fn default() -> Self {
        Self {
            position: vec3(0.0, 0.0, 5.0),
            focal_point: vec3(0.0, 0.0, 0.0),
            up: vec3(0.0, 1.0, 0.0),
            fovy_deg: 45.0,
            near: 0.1,
            far: 1000.0,
        }
    }
}

impl Camera {
    /// A camera framing the axis-aligned box `(lo, hi)` from a diagonal
    /// direction, like ParaView's "reset camera".
    pub fn fit_bounds(lo: Vec3, hi: Vec3) -> Self {
        let center = (lo + hi) * 0.5;
        let radius = ((hi - lo).length() * 0.5).max(1e-3);
        let dir = vec3(1.0, 0.8, 1.2).normalized();
        let dist = radius / (22.5f32.to_radians()).tan() * 1.1;
        Self {
            position: center + dir * dist,
            focal_point: center,
            up: vec3(0.0, 0.0, 1.0),
            fovy_deg: 45.0,
            near: (dist - radius * 2.0).max(radius * 0.01),
            far: dist + radius * 4.0,
        }
    }

    /// The combined projection × view matrix for an image aspect ratio.
    pub fn view_proj(&self, aspect: f32) -> Mat4 {
        let view = Mat4::look_at(self.position, self.focal_point, self.up);
        let proj = Mat4::perspective(self.fovy_deg.to_radians(), aspect, self.near, self.far);
        proj.mul_mat(&view)
    }

    /// Projects a world point to pixel coordinates and normalized depth.
    /// Returns `None` for points behind the near plane.
    pub fn project(&self, p: Vec3, width: usize, height: usize) -> Option<(f32, f32, f32)> {
        let mvp = self.view_proj(width as f32 / height as f32);
        let h = mvp.transform_point(p);
        if h[3] <= 1e-9 {
            return None;
        }
        let ndc = [h[0] / h[3], h[1] / h[3], h[2] / h[3]];
        let x = (ndc[0] * 0.5 + 0.5) * (width as f32 - 1.0);
        let y = (1.0 - (ndc[1] * 0.5 + 0.5)) * (height as f32 - 1.0);
        let depth = ndc[2] * 0.5 + 0.5;
        Some((x, y, depth))
    }

    /// The world-space ray through pixel `(x, y)`: `(origin, direction)`.
    pub fn pixel_ray(&self, x: f32, y: f32, width: usize, height: usize) -> (Vec3, Vec3) {
        let aspect = width as f32 / height as f32;
        let fov = self.fovy_deg.to_radians();
        let forward = (self.focal_point - self.position).normalized();
        let right = forward.cross(self.up).normalized();
        let up = right.cross(forward);
        let ndc_x = (x + 0.5) / width as f32 * 2.0 - 1.0;
        let ndc_y = 1.0 - (y + 0.5) / height as f32 * 2.0;
        let half_h = (fov / 2.0).tan();
        let dir = (forward + right * (ndc_x * half_h * aspect) + up * (ndc_y * half_h)).normalized();
        (self.position, dir)
    }

    /// Distance from the eye to a world point along the view direction.
    pub fn view_depth(&self, p: Vec3) -> f32 {
        let forward = (self.focal_point - self.position).normalized();
        (p - self.position).dot(forward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn focal_point_projects_to_center() {
        let cam = Camera::default();
        let (x, y, d) = cam.project(cam.focal_point, 101, 101).unwrap();
        assert!((x - 50.0).abs() < 1.0, "x={x}");
        assert!((y - 50.0).abs() < 1.0, "y={y}");
        assert!(d > 0.0 && d < 1.0);
    }

    #[test]
    fn points_behind_eye_are_rejected() {
        let cam = Camera::default();
        assert!(cam.project(vec3(0.0, 0.0, 10.0), 64, 64).is_none());
    }

    #[test]
    fn nearer_points_get_smaller_depth() {
        let cam = Camera::default();
        let (_, _, d_near) = cam.project(vec3(0.0, 0.0, 2.0), 64, 64).unwrap();
        let (_, _, d_far) = cam.project(vec3(0.0, 0.0, -5.0), 64, 64).unwrap();
        assert!(d_near < d_far);
    }

    #[test]
    fn fit_bounds_sees_the_whole_box() {
        let cam = Camera::fit_bounds(vec3(0.0, 0.0, 0.0), vec3(10.0, 10.0, 10.0));
        for corner in [
            vec3(0.0, 0.0, 0.0),
            vec3(10.0, 10.0, 10.0),
            vec3(10.0, 0.0, 0.0),
            vec3(0.0, 10.0, 10.0),
        ] {
            let p = cam.project(corner, 100, 100);
            assert!(p.is_some());
            let (x, y, _) = p.unwrap();
            assert!((-5.0..105.0).contains(&x), "corner {corner:?} at x {x}");
            assert!((-5.0..105.0).contains(&y), "corner {corner:?} at y {y}");
        }
    }

    #[test]
    fn pixel_ray_points_toward_scene() {
        let cam = Camera::default();
        let (o, dir) = cam.pixel_ray(32.0, 32.0, 64, 64);
        assert_eq!(o, cam.position);
        // The central ray heads from +z toward the origin.
        assert!(dir.z < -0.9);
        assert!((dir.length() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn view_depth_orders_points() {
        let cam = Camera::default();
        assert!(cam.view_depth(vec3(0.0, 0.0, 2.0)) < cam.view_depth(vec3(0.0, 0.0, -2.0)));
    }
}
