//! Software triangle rasterization with z-buffering and Lambert shading.

use crate::data::PolyData;
use crate::math::Vec3;
use crate::render::{Camera, ColorMap, Image};

/// Renders a triangle mesh into a fresh image.
///
/// Coloring: if `color_field` names a point-data array it is mapped
/// through `colors`; otherwise a constant mid-range color is used. Shading
/// is Lambertian with a headlight (light at the eye), matching ParaView's
/// default.
pub fn render_surface(
    mesh: &PolyData,
    camera: &Camera,
    colors: &ColorMap,
    color_field: Option<&str>,
    width: usize,
    height: usize,
) -> Image {
    let mut img = Image::new(width, height);
    let scalars = color_field.and_then(|f| mesh.point_data.get(f));
    let has_normals = mesh.normals.len() == mesh.points.len();
    let eye_dir = (camera.focal_point - camera.position).normalized();

    // Project all vertices once.
    let projected: Vec<Option<(f32, f32, f32)>> = mesh
        .points
        .iter()
        .map(|&p| camera.project(Vec3::from_array(p), width, height))
        .collect();

    for (t, tri) in mesh.triangles.iter().enumerate() {
        let (Some(a), Some(b), Some(c)) = (
            projected[tri[0] as usize],
            projected[tri[1] as usize],
            projected[tri[2] as usize],
        ) else {
            continue; // triangle crosses the near plane: dropped
        };

        // Flat shade factor from the face (or averaged vertex) normal.
        let n = if has_normals {
            let sum = tri
                .iter()
                .fold(Vec3::default(), |acc, &v| acc + Vec3::from_array(mesh.normals[v as usize]));
            sum.normalized()
        } else {
            mesh.face_normal(t).normalized()
        };
        let shade = n.dot(eye_dir * -1.0).abs().clamp(0.0, 1.0) * 0.85 + 0.15;

        // Per-vertex scalars for Gouraud color interpolation.
        let sv: [f32; 3] = match scalars {
            Some(arr) => [
                arr.get_f32(tri[0] as usize),
                arr.get_f32(tri[1] as usize),
                arr.get_f32(tri[2] as usize),
            ],
            None => {
                let (lo, hi) = colors.range();
                [(lo + hi) * 0.5; 3]
            }
        };

        rasterize_triangle(&mut img, a, b, c, sv, shade, colors);
    }
    img
}

/// Rasterizes one screen-space triangle with barycentric interpolation.
fn rasterize_triangle(
    img: &mut Image,
    a: (f32, f32, f32),
    b: (f32, f32, f32),
    c: (f32, f32, f32),
    scalars: [f32; 3],
    shade: f32,
    colors: &ColorMap,
) {
    let min_x = a.0.min(b.0).min(c.0).floor().max(0.0) as usize;
    let max_x = (a.0.max(b.0).max(c.0).ceil() as usize).min(img.width.saturating_sub(1));
    let min_y = a.1.min(b.1).min(c.1).floor().max(0.0) as usize;
    let max_y = (a.1.max(b.1).max(c.1).ceil() as usize).min(img.height.saturating_sub(1));
    if min_x > max_x || min_y > max_y {
        return;
    }
    let area = edge(a, b, (c.0, c.1));
    if area.abs() < 1e-12 {
        return;
    }
    let inv_area = 1.0 / area;
    for y in min_y..=max_y {
        for x in min_x..=max_x {
            let p = (x as f32, y as f32);
            let w0 = edge(b, c, p) * inv_area;
            let w1 = edge(c, a, p) * inv_area;
            let w2 = edge(a, b, p) * inv_area;
            if w0 < 0.0 || w1 < 0.0 || w2 < 0.0 {
                continue;
            }
            let depth = w0 * a.2 + w1 * b.2 + w2 * c.2;
            if !(0.0..=1.0).contains(&depth) {
                continue;
            }
            let scalar = w0 * scalars[0] + w1 * scalars[1] + w2 * scalars[2];
            let rgb = colors.map(scalar);
            let px = [
                (rgb[0] * shade * 255.0) as u8,
                (rgb[1] * shade * 255.0) as u8,
                (rgb[2] * shade * 255.0) as u8,
                255,
            ];
            img.set_if_closer(x, y, depth, px);
        }
    }
}

fn edge(a: (f32, f32, f32), b: (f32, f32, f32), p: (f32, f32)) -> f32 {
    (b.0 - a.0) * (p.1 - a.1) - (b.1 - a.1) * (p.0 - a.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::vec3;

    /// A big quad facing the default camera.
    fn facing_quad() -> PolyData {
        let mut m = PolyData::new();
        m.add_point([-1.0, -1.0, 0.0], Some([0.0, 0.0, 1.0]));
        m.add_point([1.0, -1.0, 0.0], Some([0.0, 0.0, 1.0]));
        m.add_point([1.0, 1.0, 0.0], Some([0.0, 0.0, 1.0]));
        m.add_point([-1.0, 1.0, 0.0], Some([0.0, 0.0, 1.0]));
        m.triangles.push([0, 1, 2]);
        m.triangles.push([0, 2, 3]);
        m
    }

    #[test]
    fn quad_covers_center_of_image() {
        let img = render_surface(
            &facing_quad(),
            &Camera::default(),
            &ColorMap::viridis((0.0, 1.0)),
            None,
            64,
            64,
        );
        assert!(img.coverage() > 0.05, "coverage {}", img.coverage());
        let center = img.idx(32, 32);
        assert_eq!(img.rgba[center * 4 + 3], 255);
        assert!(img.depth[center] < 1.0);
    }

    #[test]
    fn empty_mesh_renders_background() {
        let img = render_surface(
            &PolyData::new(),
            &Camera::default(),
            &ColorMap::viridis((0.0, 1.0)),
            None,
            16,
            16,
        );
        assert_eq!(img.coverage(), 0.0);
    }

    #[test]
    fn nearer_geometry_occludes_farther() {
        let mut m = facing_quad(); // at z = 0
        let mut near = PolyData::new(); // smaller quad at z = 2 (closer to +z eye)
        near.add_point([-0.2, -0.2, 2.0], Some([0.0, 0.0, 1.0]));
        near.add_point([0.2, -0.2, 2.0], Some([0.0, 0.0, 1.0]));
        near.add_point([0.2, 0.2, 2.0], Some([0.0, 0.0, 1.0]));
        near.add_point([-0.2, 0.2, 2.0], Some([0.0, 0.0, 1.0]));
        near.triangles.push([0, 1, 2]);
        near.triangles.push([0, 2, 3]);
        // Tag layers with a scalar so we can tell who won.
        use crate::data::DataArray;
        m.point_data.set("s", DataArray::F32(vec![0.0; 4]));
        near.point_data.set("s", DataArray::F32(vec![1.0; 4]));
        m.append(&near);
        let cmap = ColorMap::from_stops(
            vec![(0.0, [0.0, 0.0, 1.0]), (1.0, [1.0, 0.0, 0.0])],
            (0.0, 1.0),
        );
        let img = render_surface(&m, &Camera::default(), &cmap, Some("s"), 65, 65);
        // At the image center both quads overlap; the near one must win.
        let i = img.idx(32, 32);
        assert!(
            img.rgba[i * 4] > img.rgba[i * 4 + 2],
            "near (red) should occlude far (blue): {:?}",
            &img.rgba[i * 4..i * 4 + 4]
        );
    }

    #[test]
    fn scalar_coloring_varies_across_surface() {
        use crate::data::DataArray;
        let mut m = facing_quad();
        m.point_data
            .set("s", DataArray::F32(vec![0.0, 1.0, 1.0, 0.0]));
        let cmap = ColorMap::from_stops(
            vec![(0.0, [0.0, 0.0, 1.0]), (1.0, [1.0, 0.0, 0.0])],
            (0.0, 1.0),
        );
        let img = render_surface(&m, &Camera::default(), &cmap, Some("s"), 64, 64);
        let left = img.idx(20, 32) * 4;
        let right = img.idx(44, 32) * 4;
        assert!(img.rgba[left + 2] > img.rgba[left], "left is blue");
        assert!(img.rgba[right] > img.rgba[right + 2], "right is red");
    }

    #[test]
    fn geometry_behind_camera_is_dropped() {
        let mut m = PolyData::new();
        m.add_point([0.0, 0.0, 10.0], None);
        m.add_point([1.0, 0.0, 10.0], None);
        m.add_point([0.0, 1.0, 10.0], None);
        m.triangles.push([0, 1, 2]);
        let img = render_surface(
            &m,
            &Camera::default(),
            &ColorMap::viridis((0.0, 1.0)),
            None,
            32,
            32,
        );
        assert_eq!(img.coverage(), 0.0);
    }

    #[test]
    fn camera_fit_bounds_sees_mesh() {
        let m = facing_quad();
        let (lo, hi) = m.bounds().unwrap();
        let cam = Camera::fit_bounds(lo, hi);
        let img = render_surface(&m, &cam, &ColorMap::viridis((0.0, 1.0)), None, 64, 64);
        assert!(img.coverage() > 0.01);
        let _ = vec3(0.0, 0.0, 0.0);
    }
}
