//! Software rendering: cameras, color mapping, triangle rasterization and
//! volume ray-casting, producing depth-carrying images suitable for
//! IceT-style parallel compositing.

mod camera;
mod color;
mod image;
mod rasterizer;
mod volume;

pub use camera::Camera;
pub use color::{ColorMap, TransferFunction};
pub use image::Image;
pub use rasterizer::render_surface;
pub use volume::render_volume;
