//! Color maps and volume transfer functions.

/// A piecewise-linear scalar → RGB color map.
#[derive(Debug, Clone)]
pub struct ColorMap {
    /// Control points `(t, [r, g, b])`, `t` ascending in `[0, 1]`.
    stops: Vec<(f32, [f32; 3])>,
    /// Scalar range mapped onto `[0, 1]`.
    range: (f32, f32),
}

impl ColorMap {
    /// A map from explicit stops over the given scalar range.
    pub fn from_stops(stops: Vec<(f32, [f32; 3])>, range: (f32, f32)) -> Self {
        assert!(!stops.is_empty());
        debug_assert!(stops.windows(2).all(|w| w[0].0 <= w[1].0));
        Self { stops, range }
    }

    /// ParaView's default "Cool to Warm" diverging map.
    pub fn cool_to_warm(range: (f32, f32)) -> Self {
        Self::from_stops(
            vec![
                (0.0, [0.231, 0.298, 0.753]),
                (0.5, [0.865, 0.865, 0.865]),
                (1.0, [0.706, 0.016, 0.149]),
            ],
            range,
        )
    }

    /// A viridis-like perceptually ordered map.
    pub fn viridis(range: (f32, f32)) -> Self {
        Self::from_stops(
            vec![
                (0.0, [0.267, 0.005, 0.329]),
                (0.25, [0.229, 0.322, 0.546]),
                (0.5, [0.127, 0.566, 0.551]),
                (0.75, [0.369, 0.789, 0.383]),
                (1.0, [0.993, 0.906, 0.144]),
            ],
            range,
        )
    }

    /// Looks up a named preset.
    pub fn by_name(name: &str, range: (f32, f32)) -> Self {
        match name {
            "viridis" => Self::viridis(range),
            _ => Self::cool_to_warm(range),
        }
    }

    /// The mapped scalar range.
    pub fn range(&self) -> (f32, f32) {
        self.range
    }

    /// Maps a scalar to RGB (clamped to the range).
    pub fn map(&self, v: f32) -> [f32; 3] {
        let (lo, hi) = self.range;
        let t = if hi > lo { ((v - lo) / (hi - lo)).clamp(0.0, 1.0) } else { 0.5 };
        let mut prev = self.stops[0];
        for &stop in &self.stops {
            if t <= stop.0 {
                let span = stop.0 - prev.0;
                let f = if span > 1e-9 { (t - prev.0) / span } else { 0.0 };
                return [
                    prev.1[0] + (stop.1[0] - prev.1[0]) * f,
                    prev.1[1] + (stop.1[1] - prev.1[1]) * f,
                    prev.1[2] + (stop.1[2] - prev.1[2]) * f,
                ];
            }
            prev = stop;
        }
        prev.1
    }

    /// Maps a scalar to an 8-bit opaque RGBA pixel.
    pub fn map_rgba(&self, v: f32) -> [u8; 4] {
        let c = self.map(v);
        [
            (c[0] * 255.0) as u8,
            (c[1] * 255.0) as u8,
            (c[2] * 255.0) as u8,
            255,
        ]
    }
}

/// A volume transfer function: scalar → color + opacity-per-unit-length.
#[derive(Debug, Clone)]
pub struct TransferFunction {
    /// Underlying color map.
    pub colors: ColorMap,
    /// Opacity control points `(t in [0, 1], opacity)`.
    opacity_stops: Vec<(f32, f32)>,
}

impl TransferFunction {
    /// A transfer function with a linear opacity ramp.
    pub fn ramp(colors: ColorMap, max_opacity: f32) -> Self {
        Self {
            colors,
            opacity_stops: vec![(0.0, 0.0), (1.0, max_opacity)],
        }
    }

    /// A transfer function with explicit opacity stops.
    pub fn with_opacity(colors: ColorMap, opacity_stops: Vec<(f32, f32)>) -> Self {
        assert!(!opacity_stops.is_empty());
        Self {
            colors,
            opacity_stops,
        }
    }

    /// Evaluates `(rgb, opacity)` for a scalar value.
    pub fn eval(&self, v: f32) -> ([f32; 3], f32) {
        let (lo, hi) = self.colors.range();
        let t = if hi > lo { ((v - lo) / (hi - lo)).clamp(0.0, 1.0) } else { 0.5 };
        let mut prev = self.opacity_stops[0];
        let mut alpha = prev.1;
        for &stop in &self.opacity_stops {
            if t <= stop.0 {
                let span = stop.0 - prev.0;
                let f = if span > 1e-9 { (t - prev.0) / span } else { 0.0 };
                alpha = prev.1 + (stop.1 - prev.1) * f;
                return (self.colors.map(v), alpha);
            }
            prev = stop;
            alpha = stop.1;
        }
        (self.colors.map(v), alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_map_to_end_stops() {
        let m = ColorMap::cool_to_warm((0.0, 10.0));
        let close = |a: [f32; 3], b: [f32; 3]| a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-5);
        assert!(close(m.map(0.0), [0.231, 0.298, 0.753]));
        assert!(close(m.map(10.0), [0.706, 0.016, 0.149]));
    }

    #[test]
    fn out_of_range_clamps() {
        let m = ColorMap::viridis((0.0, 1.0));
        assert_eq!(m.map(-5.0), m.map(0.0));
        assert_eq!(m.map(7.0), m.map(1.0));
    }

    #[test]
    fn midpoint_interpolates() {
        let m = ColorMap::from_stops(
            vec![(0.0, [0.0, 0.0, 0.0]), (1.0, [1.0, 1.0, 1.0])],
            (0.0, 2.0),
        );
        let mid = m.map(1.0);
        for c in mid {
            assert!((c - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn degenerate_range_is_safe() {
        let m = ColorMap::viridis((3.0, 3.0));
        let c = m.map(3.0);
        assert!(c.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn rgba_is_opaque_and_scaled() {
        let m = ColorMap::from_stops(vec![(0.0, [1.0, 0.5, 0.0])], (0.0, 1.0));
        assert_eq!(m.map_rgba(0.0), [255, 127, 0, 255]);
    }

    #[test]
    fn transfer_function_ramps_opacity() {
        let tf = TransferFunction::ramp(ColorMap::viridis((0.0, 1.0)), 0.8);
        let (_, a0) = tf.eval(0.0);
        let (_, a1) = tf.eval(1.0);
        let (_, ah) = tf.eval(0.5);
        assert_eq!(a0, 0.0);
        assert!((a1 - 0.8).abs() < 1e-6);
        assert!((ah - 0.4).abs() < 1e-6);
    }

    #[test]
    fn explicit_opacity_stops() {
        let tf = TransferFunction::with_opacity(
            ColorMap::viridis((0.0, 1.0)),
            vec![(0.0, 0.0), (0.5, 1.0), (1.0, 0.0)],
        );
        let (_, mid) = tf.eval(0.5);
        assert!((mid - 1.0).abs() < 1e-6);
        let (_, end) = tf.eval(1.0);
        assert!(end.abs() < 1e-6);
    }
}
