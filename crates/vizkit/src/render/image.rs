//! Framebuffer images with depth, and the compositing primitives IceT
//! strategies are built from.

/// An RGBA + depth framebuffer.
///
/// Depth is the normalized device depth in `[0, 1]`; `1.0` means
/// background (infinitely far). Alpha is premultiplied for the blend
/// operator, as IceT requires for correct ordered compositing.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// RGBA bytes, row-major, premultiplied alpha.
    pub rgba: Vec<u8>,
    /// Per-pixel depth.
    pub depth: Vec<f32>,
}

impl Image {
    /// A background image (transparent black, depth 1).
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            rgba: vec![0; width * height * 4],
            depth: vec![1.0; width * height],
        }
    }

    /// Pixel index.
    pub fn idx(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    /// Writes a pixel if it wins the depth test.
    pub fn set_if_closer(&mut self, x: usize, y: usize, depth: f32, rgba: [u8; 4]) {
        let i = self.idx(x, y);
        if depth < self.depth[i] {
            self.depth[i] = depth;
            self.rgba[i * 4..i * 4 + 4].copy_from_slice(&rgba);
        }
    }

    /// Z-buffer composite: for each pixel keep the closer fragment.
    /// This is IceT's `ICET_COMPOSITE_MODE_Z_BUFFER`.
    pub fn composite_closest(&mut self, other: &Image) {
        assert_eq!((self.width, self.height), (other.width, other.height));
        for i in 0..self.depth.len() {
            if other.depth[i] < self.depth[i] {
                self.depth[i] = other.depth[i];
                self.rgba[i * 4..i * 4 + 4].copy_from_slice(&other.rgba[i * 4..i * 4 + 4]);
            }
        }
    }

    /// Ordered blend composite: `self = self OVER other` (self in front).
    /// This is IceT's `ICET_COMPOSITE_MODE_BLEND` with premultiplied alpha.
    pub fn composite_over(&mut self, other: &Image) {
        assert_eq!((self.width, self.height), (other.width, other.height));
        for i in 0..self.depth.len() {
            let a_front = self.rgba[i * 4 + 3] as u32;
            let inv = 255 - a_front;
            for c in 0..4 {
                let f = self.rgba[i * 4 + c] as u32;
                let b = other.rgba[i * 4 + c] as u32;
                self.rgba[i * 4 + c] = (f + (b * inv + 127) / 255).min(255) as u8;
            }
            self.depth[i] = self.depth[i].min(other.depth[i]);
        }
    }

    /// Serializes to raw bytes (depth as LE f32 after the RGBA plane).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.rgba.len() + self.depth.len() * 4);
        out.extend_from_slice(&(self.width as u64).to_le_bytes());
        out.extend_from_slice(&(self.height as u64).to_le_bytes());
        out.extend_from_slice(&self.rgba);
        for d in &self.depth {
            out.extend_from_slice(&d.to_le_bytes());
        }
        out
    }

    /// Deserializes from [`Image::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Image {
        let width = u64::from_le_bytes(bytes[0..8].try_into().unwrap()) as usize;
        let height = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let n = width * height;
        let rgba = bytes[16..16 + n * 4].to_vec();
        let depth = bytes[16 + n * 4..16 + n * 8]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Image {
            width,
            height,
            rgba,
            depth,
        }
    }

    /// Fraction of pixels covered (alpha > 0 or depth < 1).
    pub fn coverage(&self) -> f64 {
        let covered = (0..self.width * self.height)
            .filter(|&i| self.rgba[i * 4 + 3] > 0 || self.depth[i] < 1.0)
            .count();
        covered as f64 / (self.width * self.height).max(1) as f64
    }

    /// Writes a binary PPM (P6) file, compositing onto a white background.
    pub fn write_ppm(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "P6\n{} {}\n255", self.width, self.height)?;
        for i in 0..self.width * self.height {
            let a = self.rgba[i * 4 + 3] as u32;
            let inv = 255 - a;
            for c in 0..3 {
                let v = self.rgba[i * 4 + c] as u32 + (255 * inv + 127) / 255;
                f.write_all(&[v.min(255) as u8])?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_test_keeps_closest() {
        let mut img = Image::new(2, 2);
        img.set_if_closer(0, 0, 0.5, [10, 0, 0, 255]);
        img.set_if_closer(0, 0, 0.7, [20, 0, 0, 255]); // behind: ignored
        img.set_if_closer(0, 0, 0.3, [30, 0, 0, 255]); // front: wins
        assert_eq!(img.rgba[0], 30);
        assert_eq!(img.depth[0], 0.3);
    }

    #[test]
    fn composite_closest_is_commutative_on_disjoint_pixels() {
        let mut a = Image::new(2, 1);
        a.set_if_closer(0, 0, 0.2, [1, 0, 0, 255]);
        let mut b = Image::new(2, 1);
        b.set_if_closer(1, 0, 0.4, [2, 0, 0, 255]);
        let mut ab = a.clone();
        ab.composite_closest(&b);
        let mut ba = b.clone();
        ba.composite_closest(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.rgba[0], 1);
        assert_eq!(ab.rgba[4], 2);
    }

    #[test]
    fn over_operator_blends_premultiplied() {
        let mut front = Image::new(1, 1);
        front.rgba = vec![100, 0, 0, 128]; // half-transparent red (premult)
        front.depth = vec![0.2];
        let mut back = Image::new(1, 1);
        back.rgba = vec![0, 200, 0, 255]; // opaque green
        back.depth = vec![0.8];
        front.composite_over(&back);
        assert_eq!(front.rgba[0], 100);
        assert!((front.rgba[1] as i32 - 100).abs() <= 1); // 200 * (1-0.5)
        assert_eq!(front.rgba[3], 255);
    }

    #[test]
    fn over_with_transparent_front_is_identity() {
        let front = Image::new(1, 1);
        let mut back = Image::new(1, 1);
        back.rgba = vec![9, 8, 7, 255];
        let mut out = front.clone();
        out.composite_over(&back);
        assert_eq!(&out.rgba[..], &[9, 8, 7, 255]);
    }

    #[test]
    fn byte_roundtrip() {
        let mut img = Image::new(3, 2);
        img.set_if_closer(1, 1, 0.25, [1, 2, 3, 4]);
        let back = Image::from_bytes(&img.to_bytes());
        assert_eq!(img, back);
    }

    #[test]
    fn coverage_counts_touched_pixels() {
        let mut img = Image::new(2, 2);
        assert_eq!(img.coverage(), 0.0);
        img.set_if_closer(0, 0, 0.5, [0, 0, 0, 255]);
        assert_eq!(img.coverage(), 0.25);
    }

    #[test]
    fn ppm_writes_header_and_payload() {
        let mut img = Image::new(2, 1);
        img.set_if_closer(0, 0, 0.1, [255, 0, 0, 255]);
        let path = std::env::temp_dir().join("vizkit_test.ppm");
        img.write_ppm(&path).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert!(data.starts_with(b"P6\n2 1\n255\n"));
        assert_eq!(data.len(), 11 + 6);
        std::fs::remove_file(path).ok();
    }
}
