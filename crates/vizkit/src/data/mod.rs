//! The data model: arrays, attributes, and the three dataset types the
//! paper's pipelines consume.

mod array;
mod image;
mod polydata;
mod ugrid;

pub use array::{ArrayStats, Attributes, DataArray};
pub use image::ImageData;
pub use polydata::PolyData;
pub use ugrid::{CellType, UnstructuredGrid};

/// Any dataset a pipeline can stage or produce.
#[derive(Debug, Clone)]
pub enum DataSet {
    /// A regular grid with point/cell attributes.
    Image(ImageData),
    /// An unstructured grid.
    UGrid(UnstructuredGrid),
    /// A triangle surface.
    Poly(PolyData),
}

impl DataSet {
    /// Approximate in-memory size in bytes (used for staging accounting
    /// and the Fig. 1a data-growth harness).
    pub fn byte_size(&self) -> usize {
        match self {
            DataSet::Image(d) => d.byte_size(),
            DataSet::UGrid(d) => d.byte_size(),
            DataSet::Poly(d) => d.byte_size(),
        }
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        match self {
            DataSet::Image(d) => d.num_cells(),
            DataSet::UGrid(d) => d.num_cells(),
            DataSet::Poly(d) => d.triangles.len(),
        }
    }

    /// The unstructured grid inside, if that is what this is.
    pub fn as_ugrid(&self) -> Option<&UnstructuredGrid> {
        match self {
            DataSet::UGrid(g) => Some(g),
            _ => None,
        }
    }

    /// The image data inside, if that is what this is.
    pub fn as_image(&self) -> Option<&ImageData> {
        match self {
            DataSet::Image(i) => Some(i),
            _ => None,
        }
    }

    /// Summary statistics of the named scalar field in this dataset,
    /// looked up in point data first, then cell data. Empty stats when
    /// the field is absent.
    pub fn field_stats(&self, name: &str) -> ArrayStats {
        let (points, cells) = match self {
            DataSet::Image(d) => (Some(&d.point_data), Some(&d.cell_data)),
            DataSet::UGrid(d) => (Some(&d.point_data), Some(&d.cell_data)),
            DataSet::Poly(d) => (Some(&d.point_data), None),
        };
        points
            .and_then(|a| a.get(name))
            .or_else(|| cells.and_then(|a| a.get(name)))
            .map(|arr| arr.stats())
            .unwrap_or_else(ArrayStats::empty)
    }
}
