//! Unstructured grids (`vtkUnstructuredGrid`).

use crate::data::Attributes;
use crate::math::Vec3;

/// Supported cell types (VTK type ids in comments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellType {
    /// Triangle (VTK 5): 3 points.
    Triangle,
    /// Tetrahedron (VTK 10): 4 points.
    Tetra,
    /// Voxel (VTK 11): axis-aligned box, 8 points in x-fastest order.
    Voxel,
    /// Hexahedron (VTK 12): 8 points in VTK winding.
    Hexahedron,
}

impl CellType {
    /// Number of points defining a cell of this type.
    pub fn num_points(self) -> usize {
        match self {
            CellType::Triangle => 3,
            CellType::Tetra => 4,
            CellType::Voxel | CellType::Hexahedron => 8,
        }
    }
}

/// An unstructured grid: explicit points plus typed cells.
#[derive(Debug, Clone, Default)]
pub struct UnstructuredGrid {
    /// Point coordinates.
    pub points: Vec<[f32; 3]>,
    /// Cell connectivity, flattened; cell `c` spans
    /// `connectivity[offsets[c]..offsets[c+1]]`.
    pub connectivity: Vec<u32>,
    /// Prefix offsets into `connectivity`; `len == num_cells + 1`.
    pub offsets: Vec<u32>,
    /// Per-cell types; `len == num_cells`.
    pub cell_types: Vec<CellType>,
    /// Attributes on points.
    pub point_data: Attributes,
    /// Attributes on cells.
    pub cell_data: Attributes,
}

impl UnstructuredGrid {
    /// An empty grid.
    pub fn new() -> Self {
        Self {
            offsets: vec![0],
            ..Default::default()
        }
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cell_types.len()
    }

    /// Number of points.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Appends a cell; returns its index.
    ///
    /// # Panics
    /// Panics if the point count does not match the cell type or an index
    /// is out of range.
    pub fn add_cell(&mut self, ty: CellType, pts: &[u32]) -> usize {
        assert_eq!(pts.len(), ty.num_points(), "wrong point count for {ty:?}");
        assert!(
            pts.iter().all(|&p| (p as usize) < self.points.len()),
            "cell references missing point"
        );
        self.connectivity.extend_from_slice(pts);
        self.offsets.push(self.connectivity.len() as u32);
        self.cell_types.push(ty);
        self.cell_types.len() - 1
    }

    /// The point indices of cell `c`.
    pub fn cell_points(&self, c: usize) -> &[u32] {
        let lo = self.offsets[c] as usize;
        let hi = self.offsets[c + 1] as usize;
        &self.connectivity[lo..hi]
    }

    /// Centroid of cell `c`.
    pub fn cell_center(&self, c: usize) -> Vec3 {
        let pts = self.cell_points(c);
        let mut acc = Vec3::default();
        for &p in pts {
            acc = acc + Vec3::from_array(self.points[p as usize]);
        }
        acc * (1.0 / pts.len() as f32)
    }

    /// Axis-aligned bounds; `None` for an empty grid.
    pub fn bounds(&self) -> Option<(Vec3, Vec3)> {
        if self.points.is_empty() {
            return None;
        }
        let mut lo = Vec3::from_array(self.points[0]);
        let mut hi = lo;
        for p in &self.points {
            lo.x = lo.x.min(p[0]);
            lo.y = lo.y.min(p[1]);
            lo.z = lo.z.min(p[2]);
            hi.x = hi.x.max(p[0]);
            hi.y = hi.y.max(p[1]);
            hi.z = hi.z.max(p[2]);
        }
        Some((lo, hi))
    }

    /// Approximate in-memory byte size (what Fig. 1a tracks per
    /// iteration as "file size").
    pub fn byte_size(&self) -> usize {
        self.points.len() * 12
            + self.connectivity.len() * 4
            + self.offsets.len() * 4
            + self.cell_types.len()
            + self.point_data.byte_size()
            + self.cell_data.byte_size()
    }

    /// Structural invariant check (used by tests and debug assertions).
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.len() != self.cell_types.len() + 1 {
            return Err(format!(
                "offsets {} != cells {} + 1",
                self.offsets.len(),
                self.cell_types.len()
            ));
        }
        if *self.offsets.last().unwrap() as usize != self.connectivity.len() {
            return Err("last offset != connectivity length".to_string());
        }
        for c in 0..self.num_cells() {
            let pts = self.cell_points(c);
            if pts.len() != self.cell_types[c].num_points() {
                return Err(format!("cell {c} has {} points", pts.len()));
            }
            if pts.iter().any(|&p| (p as usize) >= self.points.len()) {
                return Err(format!("cell {c} references missing point"));
            }
        }
        for (name, arr) in self.point_data.iter() {
            if arr.len() != self.points.len() {
                return Err(format!("point array {name:?} length mismatch"));
            }
        }
        for (name, arr) in self.cell_data.iter() {
            if arr.len() != self.num_cells() {
                return Err(format!("cell array {name:?} length mismatch"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataArray;
    use crate::math::vec3;

    fn one_voxel() -> UnstructuredGrid {
        let mut g = UnstructuredGrid::new();
        for k in 0..2 {
            for j in 0..2 {
                for i in 0..2 {
                    g.points.push([i as f32, j as f32, k as f32]);
                }
            }
        }
        g.add_cell(CellType::Voxel, &[0, 1, 2, 3, 4, 5, 6, 7]);
        g
    }

    #[test]
    fn add_cell_and_lookup() {
        let g = one_voxel();
        assert_eq!(g.num_cells(), 1);
        assert_eq!(g.cell_points(0), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(g.cell_center(0), vec3(0.5, 0.5, 0.5));
        g.validate().unwrap();
    }

    #[test]
    fn bounds_cover_points() {
        let g = one_voxel();
        let (lo, hi) = g.bounds().unwrap();
        assert_eq!(lo, vec3(0.0, 0.0, 0.0));
        assert_eq!(hi, vec3(1.0, 1.0, 1.0));
        assert!(UnstructuredGrid::new().bounds().is_none());
    }

    #[test]
    #[should_panic(expected = "wrong point count")]
    fn wrong_cell_arity_panics() {
        let mut g = one_voxel();
        g.add_cell(CellType::Tetra, &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "missing point")]
    fn out_of_range_point_panics() {
        let mut g = one_voxel();
        g.add_cell(CellType::Triangle, &[0, 1, 99]);
    }

    #[test]
    fn validate_catches_attribute_mismatch() {
        let mut g = one_voxel();
        g.cell_data.set("v", DataArray::F32(vec![1.0, 2.0])); // 2 != 1 cell
        assert!(g.validate().is_err());
    }

    #[test]
    fn byte_size_tracks_content() {
        let g = one_voxel();
        let base = g.byte_size();
        let mut g2 = g.clone();
        g2.point_data.set("u", DataArray::F64(vec![0.0; 8]));
        assert_eq!(g2.byte_size(), base + 64);
    }
}
