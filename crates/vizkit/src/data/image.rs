//! Regular grids (`vtkImageData`).

use crate::data::Attributes;
use crate::math::Vec3;

/// A regular grid: `dims` points along each axis, placed at
/// `origin + index * spacing`.
#[derive(Debug, Clone, Default)]
pub struct ImageData {
    /// Point counts `[nx, ny, nz]` (each ≥ 1).
    pub dims: [usize; 3],
    /// Position of point (0, 0, 0).
    pub origin: [f32; 3],
    /// Distance between adjacent points along each axis.
    pub spacing: [f32; 3],
    /// Attributes on points (`dims.product()` tuples each).
    pub point_data: Attributes,
    /// Attributes on cells (`(nx-1)(ny-1)(nz-1)` tuples each).
    pub cell_data: Attributes,
}

impl ImageData {
    /// A grid with the given point dimensions, unit spacing at the origin.
    pub fn new(dims: [usize; 3]) -> Self {
        Self {
            dims,
            origin: [0.0; 3],
            spacing: [1.0; 3],
            point_data: Attributes::new(),
            cell_data: Attributes::new(),
        }
    }

    /// Number of points.
    pub fn num_points(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.dims
            .iter()
            .map(|&d| d.saturating_sub(1).max(if d == 1 { 1 } else { 0 }))
            .product::<usize>()
            .max(0)
    }

    /// Flat index of point `(i, j, k)` (x varies fastest, as in VTK).
    pub fn point_index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.dims[0] && j < self.dims[1] && k < self.dims[2]);
        (k * self.dims[1] + j) * self.dims[0] + i
    }

    /// World position of point `(i, j, k)`.
    pub fn point_position(&self, i: usize, j: usize, k: usize) -> Vec3 {
        Vec3 {
            x: self.origin[0] + i as f32 * self.spacing[0],
            y: self.origin[1] + j as f32 * self.spacing[1],
            z: self.origin[2] + k as f32 * self.spacing[2],
        }
    }

    /// Axis-aligned bounds `(min, max)` of the grid.
    pub fn bounds(&self) -> (Vec3, Vec3) {
        let min = Vec3 {
            x: self.origin[0],
            y: self.origin[1],
            z: self.origin[2],
        };
        let max = Vec3 {
            x: self.origin[0] + (self.dims[0].saturating_sub(1)) as f32 * self.spacing[0],
            y: self.origin[1] + (self.dims[1].saturating_sub(1)) as f32 * self.spacing[1],
            z: self.origin[2] + (self.dims[2].saturating_sub(1)) as f32 * self.spacing[2],
        };
        (min, max)
    }

    /// Approximate in-memory byte size.
    pub fn byte_size(&self) -> usize {
        self.point_data.byte_size() + self.cell_data.byte_size() + 64
    }

    /// Trilinear interpolation of a point-data scalar at world position
    /// `p`. Returns `None` outside the grid.
    pub fn sample_trilinear(&self, field: &str, p: Vec3) -> Option<f32> {
        let arr = self.point_data.get(field)?;
        let fx = (p.x - self.origin[0]) / self.spacing[0];
        let fy = (p.y - self.origin[1]) / self.spacing[1];
        let fz = (p.z - self.origin[2]) / self.spacing[2];
        if fx < 0.0 || fy < 0.0 || fz < 0.0 {
            return None;
        }
        let (nx, ny, nz) = (self.dims[0], self.dims[1], self.dims[2]);
        let i = fx.floor() as usize;
        let j = fy.floor() as usize;
        let k = fz.floor() as usize;
        if i + 1 >= nx || j + 1 >= ny || k + 1 >= nz {
            // Clamp exact-boundary samples onto the last cell.
            if fx > (nx - 1) as f32 + 1e-4
                || fy > (ny - 1) as f32 + 1e-4
                || fz > (nz - 1) as f32 + 1e-4
            {
                return None;
            }
        }
        let i = i.min(nx.saturating_sub(2));
        let j = j.min(ny.saturating_sub(2));
        let k = k.min(nz.saturating_sub(2));
        let tx = (fx - i as f32).clamp(0.0, 1.0);
        let ty = (fy - j as f32).clamp(0.0, 1.0);
        let tz = (fz - k as f32).clamp(0.0, 1.0);
        let at = |ii, jj, kk| arr.get_f32(self.point_index(ii, jj, kk));
        let c00 = at(i, j, k) * (1.0 - tx) + at(i + 1, j, k) * tx;
        let c10 = at(i, j + 1, k) * (1.0 - tx) + at(i + 1, j + 1, k) * tx;
        let c01 = at(i, j, k + 1) * (1.0 - tx) + at(i + 1, j, k + 1) * tx;
        let c11 = at(i, j + 1, k + 1) * (1.0 - tx) + at(i + 1, j + 1, k + 1) * tx;
        let c0 = c00 * (1.0 - ty) + c10 * ty;
        let c1 = c01 * (1.0 - ty) + c11 * ty;
        Some(c0 * (1.0 - tz) + c1 * tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataArray;
    use crate::math::vec3;

    fn grid_with_x_field() -> ImageData {
        let mut g = ImageData::new([3, 3, 3]);
        let mut vals = Vec::new();
        for k in 0..3 {
            for j in 0..3 {
                for i in 0..3 {
                    let _ = (j, k);
                    vals.push(i as f32);
                }
            }
        }
        g.point_data.set("x", DataArray::F32(vals));
        g
    }

    #[test]
    fn counts_and_indexing() {
        let g = ImageData::new([4, 3, 2]);
        assert_eq!(g.num_points(), 24);
        assert_eq!(g.num_cells(), 3 * 2 * 1);
        assert_eq!(g.point_index(0, 0, 0), 0);
        assert_eq!(g.point_index(3, 2, 1), 23);
    }

    #[test]
    fn positions_respect_origin_and_spacing() {
        let mut g = ImageData::new([2, 2, 2]);
        g.origin = [1.0, 2.0, 3.0];
        g.spacing = [0.5, 1.0, 2.0];
        assert_eq!(g.point_position(1, 1, 1), vec3(1.5, 3.0, 5.0));
        let (lo, hi) = g.bounds();
        assert_eq!(lo, vec3(1.0, 2.0, 3.0));
        assert_eq!(hi, vec3(1.5, 3.0, 5.0));
    }

    #[test]
    fn trilinear_interpolates_linear_field_exactly() {
        let g = grid_with_x_field();
        for &(p, expect) in &[
            (vec3(0.0, 0.0, 0.0), 0.0f32),
            (vec3(1.0, 1.0, 1.0), 1.0),
            (vec3(0.5, 0.3, 1.7), 0.5),
            (vec3(1.75, 2.0, 2.0), 1.75),
        ] {
            let got = g.sample_trilinear("x", p).unwrap();
            assert!((got - expect).abs() < 1e-5, "{p:?}: {got} != {expect}");
        }
    }

    #[test]
    fn sampling_outside_returns_none() {
        let g = grid_with_x_field();
        assert!(g.sample_trilinear("x", vec3(-0.1, 0.0, 0.0)).is_none());
        assert!(g.sample_trilinear("x", vec3(2.3, 0.0, 0.0)).is_none());
        assert!(g.sample_trilinear("nope", vec3(0.0, 0.0, 0.0)).is_none());
    }

    #[test]
    fn boundary_samples_are_included() {
        let g = grid_with_x_field();
        let got = g.sample_trilinear("x", vec3(2.0, 2.0, 2.0)).unwrap();
        assert!((got - 2.0).abs() < 1e-4);
    }
}
