//! Triangle surfaces (`vtkPolyData`, triangles only).

use crate::data::Attributes;
use crate::math::Vec3;

/// A triangle mesh with optional per-point normals and attributes.
#[derive(Debug, Clone, Default)]
pub struct PolyData {
    /// Point coordinates.
    pub points: Vec<[f32; 3]>,
    /// Per-point normals (empty, or same length as `points`).
    pub normals: Vec<[f32; 3]>,
    /// Triangles as point-index triples.
    pub triangles: Vec<[u32; 3]>,
    /// Attributes on points.
    pub point_data: Attributes,
}

impl PolyData {
    /// An empty mesh.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of triangles.
    pub fn num_triangles(&self) -> usize {
        self.triangles.len()
    }

    /// Appends a point (with optional normal) and returns its index.
    pub fn add_point(&mut self, p: [f32; 3], n: Option<[f32; 3]>) -> u32 {
        self.points.push(p);
        if let Some(n) = n {
            self.normals.push(n);
        }
        (self.points.len() - 1) as u32
    }

    /// Geometric (area-weighted) normal of triangle `t`.
    pub fn face_normal(&self, t: usize) -> Vec3 {
        let [a, b, c] = self.triangles[t];
        let pa = Vec3::from_array(self.points[a as usize]);
        let pb = Vec3::from_array(self.points[b as usize]);
        let pc = Vec3::from_array(self.points[c as usize]);
        (pb - pa).cross(pc - pa)
    }

    /// Total surface area.
    pub fn surface_area(&self) -> f32 {
        (0..self.triangles.len())
            .map(|t| self.face_normal(t).length() * 0.5)
            .sum()
    }

    /// Axis-aligned bounds; `None` when empty.
    pub fn bounds(&self) -> Option<(Vec3, Vec3)> {
        if self.points.is_empty() {
            return None;
        }
        let mut lo = Vec3::from_array(self.points[0]);
        let mut hi = lo;
        for p in &self.points {
            lo.x = lo.x.min(p[0]);
            lo.y = lo.y.min(p[1]);
            lo.z = lo.z.min(p[2]);
            hi.x = hi.x.max(p[0]);
            hi.y = hi.y.max(p[1]);
            hi.z = hi.z.max(p[2]);
        }
        Some((lo, hi))
    }

    /// Approximate byte size.
    pub fn byte_size(&self) -> usize {
        self.points.len() * 12
            + self.normals.len() * 12
            + self.triangles.len() * 12
            + self.point_data.byte_size()
    }

    /// Merges another mesh into this one (indices rebased). Point-data
    /// arrays present in *both* meshes are concatenated (as `f32`); others
    /// are dropped, matching `merge_blocks` semantics.
    pub fn append(&mut self, other: &PolyData) {
        let old_len = self.points.len();
        let base = old_len as u32;
        self.points.extend_from_slice(&other.points);
        self.normals.extend_from_slice(&other.normals);
        self.triangles
            .extend(other.triangles.iter().map(|t| [t[0] + base, t[1] + base, t[2] + base]));
        let names: Vec<String> = self.point_data.iter().map(|(n, _)| n.clone()).collect();
        let mut merged = Attributes::new();
        for name in names {
            if let Some(theirs) = other.point_data.get(&name) {
                let ours = self.point_data.get(&name).expect("listed");
                let mut vals: Vec<f32> = (0..old_len.min(ours.len())).map(|i| ours.get_f32(i)).collect();
                vals.extend((0..theirs.len()).map(|i| theirs.get_f32(i)));
                merged.set(name, crate::data::DataArray::F32(vals));
            }
        }
        self.point_data = merged;
    }

    /// Structural invariant check.
    pub fn validate(&self) -> Result<(), String> {
        if !self.normals.is_empty() && self.normals.len() != self.points.len() {
            return Err("normals length mismatch".to_string());
        }
        for (i, t) in self.triangles.iter().enumerate() {
            if t.iter().any(|&p| (p as usize) >= self.points.len()) {
                return Err(format!("triangle {i} references missing point"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_triangle() -> PolyData {
        let mut m = PolyData::new();
        m.add_point([0.0, 0.0, 0.0], None);
        m.add_point([1.0, 0.0, 0.0], None);
        m.add_point([0.0, 1.0, 0.0], None);
        m.triangles.push([0, 1, 2]);
        m
    }

    #[test]
    fn area_and_normal() {
        let m = unit_triangle();
        assert!((m.surface_area() - 0.5).abs() < 1e-6);
        let n = m.face_normal(0).normalized();
        assert!((n.z - 1.0).abs() < 1e-6);
        m.validate().unwrap();
    }

    #[test]
    fn append_rebases_indices() {
        let mut a = unit_triangle();
        let b = unit_triangle();
        a.append(&b);
        assert_eq!(a.points.len(), 6);
        assert_eq!(a.triangles.len(), 2);
        assert_eq!(a.triangles[1], [3, 4, 5]);
        a.validate().unwrap();
        assert!((a.surface_area() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn validate_catches_bad_triangles() {
        let mut m = unit_triangle();
        m.triangles.push([0, 1, 9]);
        assert!(m.validate().is_err());
    }

    #[test]
    fn bounds_track_points() {
        let m = unit_triangle();
        let (lo, hi) = m.bounds().unwrap();
        assert_eq!(lo.to_array(), [0.0, 0.0, 0.0]);
        assert_eq!(hi.to_array(), [1.0, 1.0, 0.0]);
    }
}
