//! Typed data arrays and named attribute collections.

use std::collections::BTreeMap;

/// A typed, single-component data array (VTK's `vtkDataArray`).
#[derive(Debug, Clone, PartialEq)]
pub enum DataArray {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 32-bit signed integers.
    I32(Vec<i32>),
    /// Bytes.
    U8(Vec<u8>),
}

impl DataArray {
    /// Number of tuples.
    pub fn len(&self) -> usize {
        match self {
            DataArray::F32(v) => v.len(),
            DataArray::F64(v) => v.len(),
            DataArray::I32(v) => v.len(),
            DataArray::U8(v) => v.len(),
        }
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of one element in bytes.
    pub fn elem_size(&self) -> usize {
        match self {
            DataArray::F32(_) | DataArray::I32(_) => 4,
            DataArray::F64(_) => 8,
            DataArray::U8(_) => 1,
        }
    }

    /// Total byte size of the payload.
    pub fn byte_size(&self) -> usize {
        self.len() * self.elem_size()
    }

    /// Element `i` widened to `f64`.
    pub fn get(&self, i: usize) -> f64 {
        match self {
            DataArray::F32(v) => v[i] as f64,
            DataArray::F64(v) => v[i],
            DataArray::I32(v) => v[i] as f64,
            DataArray::U8(v) => v[i] as f64,
        }
    }

    /// Element `i` as `f32` (the rendering precision).
    pub fn get_f32(&self, i: usize) -> f32 {
        self.get(i) as f32
    }

    /// `(min, max)` over the array; `None` when empty.
    pub fn range(&self) -> Option<(f64, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..self.len() {
            let v = self.get(i);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Serializes to little-endian bytes (staging payloads).
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_size());
        match self {
            DataArray::F32(v) => v.iter().for_each(|x| out.extend_from_slice(&x.to_le_bytes())),
            DataArray::F64(v) => v.iter().for_each(|x| out.extend_from_slice(&x.to_le_bytes())),
            DataArray::I32(v) => v.iter().for_each(|x| out.extend_from_slice(&x.to_le_bytes())),
            DataArray::U8(v) => out.extend_from_slice(v),
        }
        out
    }

    /// Deserializes an `F32` array from little-endian bytes.
    pub fn f32_from_le_bytes(bytes: &[u8]) -> DataArray {
        assert_eq!(bytes.len() % 4, 0);
        DataArray::F32(
            bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                .collect(),
        )
    }

    /// Deserializes an `I32` array from little-endian bytes.
    pub fn i32_from_le_bytes(bytes: &[u8]) -> DataArray {
        assert_eq!(bytes.len() % 4, 0);
        DataArray::I32(
            bytes
                .chunks_exact(4)
                .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
                .collect(),
        )
    }

    /// Single-pass min/max/sum/count over the array — the local leg of
    /// the fused statistics reduction pipelines run at execute time.
    pub fn stats(&self) -> ArrayStats {
        let mut s = ArrayStats::empty();
        for i in 0..self.len() {
            s.accumulate(self.get(i));
        }
        s
    }
}

/// Mergeable summary statistics of one scalar field: the reduction
/// monoid carried by the fused stats allreduce (min/min, max/max, sum/+,
/// count/+), from which `min`, `max`, `range` and `mean` all fall out
/// without a second collective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayStats {
    /// Smallest value (`+inf` when empty).
    pub min: f64,
    /// Largest value (`-inf` when empty).
    pub max: f64,
    /// Sum of all values.
    pub sum: f64,
    /// Number of values.
    pub count: u64,
}

impl ArrayStats {
    /// The identity element: no values seen.
    pub fn empty() -> Self {
        ArrayStats {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            count: 0,
        }
    }

    /// Whether any value was seen.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds one value in.
    pub fn accumulate(&mut self, v: f64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        self.count += 1;
    }

    /// Merges another summary in (the allreduce fold).
    pub fn merge(&mut self, other: &ArrayStats) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// `max - min`; `0.0` when empty.
    pub fn range(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max - self.min
        }
    }
}

/// Named attribute arrays attached to points or cells.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Attributes {
    arrays: BTreeMap<String, DataArray>,
}

impl Attributes {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds or replaces an array.
    pub fn set(&mut self, name: impl Into<String>, array: DataArray) {
        self.arrays.insert(name.into(), array);
    }

    /// Fetches an array by name.
    pub fn get(&self, name: &str) -> Option<&DataArray> {
        self.arrays.get(name)
    }

    /// Iterates `(name, array)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &DataArray)> {
        self.arrays.iter()
    }

    /// Number of arrays.
    pub fn len(&self) -> usize {
        self.arrays.len()
    }

    /// Whether there are no arrays.
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty()
    }

    /// Total byte size across arrays.
    pub fn byte_size(&self) -> usize {
        self.arrays.values().map(|a| a.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_accessors() {
        let a = DataArray::I32(vec![-3, 5]);
        assert_eq!(a.get(0), -3.0);
        assert_eq!(a.get_f32(1), 5.0);
        assert_eq!(a.len(), 2);
        assert_eq!(a.byte_size(), 8);
    }

    #[test]
    fn range_over_types() {
        assert_eq!(DataArray::F32(vec![2.0, -1.0, 3.0]).range(), Some((-1.0, 3.0)));
        assert_eq!(DataArray::U8(vec![]).range(), None);
    }

    #[test]
    fn le_bytes_roundtrip_f32() {
        let a = DataArray::F32(vec![1.5, -2.25, 0.0]);
        let b = DataArray::f32_from_le_bytes(&a.to_le_bytes());
        assert_eq!(a, b);
    }

    #[test]
    fn le_bytes_roundtrip_i32() {
        let a = DataArray::I32(vec![7, -9, i32::MAX]);
        let b = DataArray::i32_from_le_bytes(&a.to_le_bytes());
        assert_eq!(a, b);
    }

    #[test]
    fn attributes_store_and_account() {
        let mut at = Attributes::new();
        at.set("u", DataArray::F32(vec![0.0; 10]));
        at.set("v", DataArray::F64(vec![0.0; 10]));
        assert_eq!(at.len(), 2);
        assert_eq!(at.byte_size(), 40 + 80);
        assert!(at.get("u").is_some());
        assert!(at.get("w").is_none());
    }
}
