//! Property tests: the retry backoff schedule must be bounded and
//! monotone for arbitrary configurations — a runaway or shrinking
//! schedule would either blow past deadlines or hammer a recovering peer.

use std::time::Duration;

use margo::{backoff_delay, RetryConfig};
use proptest::prelude::*;

fn cfg(base_ms: u64, max_ms: u64, mult: f64, jitter: f64) -> RetryConfig {
    RetryConfig {
        base_delay: Duration::from_millis(base_ms),
        max_delay: Duration::from_millis(max_ms),
        multiplier: mult,
        jitter,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn backoff_is_bounded_by_max_delay_plus_jitter(
        base_ms in 0u64..1000,
        max_ms in 1u64..5000,
        mult in 1.0f64..4.0,
        jitter in 0.0f64..1.0,
        attempt in 0u32..64,
        unit in 0.0f64..1.0,
    ) {
        let c = cfg(base_ms, max_ms, mult, jitter);
        let d = backoff_delay(&c, attempt, unit);
        // Bound: max_delay scaled by the worst-case jitter factor, plus a
        // microsecond of float slack.
        let bound = c.max_delay.mul_f64(1.0 + jitter) + Duration::from_micros(1);
        prop_assert!(
            d <= bound,
            "delay {d:?} exceeds bound {bound:?} (attempt {attempt})"
        );
    }

    #[test]
    fn backoff_is_monotone_in_attempt(
        base_ms in 1u64..500,
        max_ms in 1u64..5000,
        mult in 1.0f64..4.0,
        jitter in 0.0f64..1.0,
        unit in 0.0f64..1.0,
    ) {
        let c = cfg(base_ms, max_ms, mult, jitter);
        let mut prev = Duration::ZERO;
        for attempt in 0..32u32 {
            let d = backoff_delay(&c, attempt, unit);
            prop_assert!(
                d >= prev,
                "schedule shrank at attempt {attempt}: {prev:?} -> {d:?}"
            );
            prev = d;
        }
    }

    #[test]
    fn sub_unit_multipliers_behave_like_constant_backoff(
        base_ms in 1u64..500,
        mult in 0.0f64..1.0,
        attempt in 0u32..32,
    ) {
        let c = cfg(base_ms, 5000, mult, 0.0);
        prop_assert_eq!(backoff_delay(&c, attempt, 0.0), backoff_delay(&c, 0, 0.0));
    }
}

/// Fixed regression cases: exact values the default policy must produce
/// (these anchor the schedule against accidental re-tuning).
#[test]
fn default_schedule_regression() {
    let c = RetryConfig {
        jitter: 0.0,
        ..Default::default()
    };
    let ms: Vec<u128> = (0..8)
        .map(|a| backoff_delay(&c, a, 0.0).as_millis())
        .collect();
    assert_eq!(ms, vec![5, 10, 20, 40, 80, 160, 250, 250]);
}
