//! # margo — the RPC runtime binding messaging and tasking
//!
//! Mercury provides RPC on top of NA; Margo binds Mercury to Argobots so
//! the network progress loop runs in a user-level thread and handlers run
//! in pools. This crate reproduces that composition:
//!
//! * a **progress loop** (one thread with the owner's simulated-process
//!   context) receives requests and dispatches them,
//! * handlers are registered by name and execute on [`argo::Pool`]s —
//!   either the default control pool or a dedicated heavy pool (Colza
//!   routes `execute` there so long pipeline runs never starve control
//!   RPCs, matching Margo's multi-pool deployments),
//! * [`MargoInstance::forward`] is the client side: typed request out,
//!   typed response back, with an optional real-time liveness timeout used
//!   to detect dead servers,
//! * argument/response encoding uses the [`wire`] codec.
//!
//! RPC failures carry a [`RpcError`]; handler panics are not caught (a
//! handler panic is a bug in the service, as in the C original where it
//! would abort the daemon).

mod instance;
mod protocol;
mod retry;

pub use instance::{CallCtx, HandlerPool, MargoInstance};
pub use protocol::RpcError;
pub use retry::{backoff_delay, RetryConfig};

/// Result alias for RPC operations.
pub type Result<T> = std::result::Result<T, RpcError>;
