//! The margo instance: progress loop, handler registry, forward path.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use serde::de::DeserializeOwned;
use serde::Serialize;

use na::{Address, Endpoint, Fabric, NaError, RecvSelector};

use crate::protocol::{Envelope, Reply, RpcError};
use crate::retry::{backoff_delay, RetryConfig};
use crate::Result;

/// Which pool a handler executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerPool {
    /// The default pool: control-plane RPCs (activate, membership, admin).
    Control,
    /// The heavy pool: long-running work (pipeline execution).
    Heavy,
}

/// Context passed to every handler invocation.
pub struct CallCtx {
    /// Address of the calling process.
    pub caller: Address,
    /// The local endpoint, for RDMA pulls from inside handlers (this is
    /// how `stage` fetches staged data from the simulation's memory).
    pub endpoint: Arc<Endpoint>,
}

type RawHandler = Arc<dyn Fn(&[u8], &CallCtx) -> std::result::Result<Vec<u8>, String> + Send + Sync>;

/// Software overhead charged per RPC at each side (Mercury header
/// processing, callback dispatch). Calibrated so an empty RPC costs a few
/// microseconds round trip, as on Cori.
const RPC_SW_NS: u64 = 700;

/// Completed-request replies remembered per caller for duplicate
/// suppression; oldest entries are evicted first.
const DEDUP_CAP: usize = 4096;

/// Server-side duplicate suppression, keyed by `(caller, req_id)`.
/// `None` marks a request still executing (duplicates are dropped — the
/// in-flight execution will reply); `Some` holds the encoded reply, which
/// duplicates get resent verbatim instead of re-executing the handler.
#[derive(Default)]
struct DedupCache {
    entries: HashMap<(Address, u64), Option<Bytes>>,
    order: VecDeque<(Address, u64)>,
}

impl DedupCache {
    /// Registers a request. Returns the prior state if it is a duplicate.
    fn admit(&mut self, key: (Address, u64)) -> Option<Option<Bytes>> {
        if let Some(prior) = self.entries.get(&key) {
            return Some(prior.clone());
        }
        if self.order.len() >= DEDUP_CAP {
            if let Some(old) = self.order.pop_front() {
                self.entries.remove(&old);
            }
        }
        self.entries.insert(key, None);
        self.order.push_back(key);
        None
    }

    fn complete(&mut self, key: (Address, u64), reply: Bytes) {
        if let Some(slot) = self.entries.get_mut(&key) {
            *slot = Some(reply);
        }
    }
}

/// A margo instance: one per simulated process participating in RPC.
pub struct MargoInstance {
    endpoint: Arc<Endpoint>,
    handlers: RwLock<HashMap<String, (RawHandler, HandlerPool)>>,
    control_pool: argo::Pool,
    heavy_pool: argo::Pool,
    next_resp: AtomicU64,
    next_req: AtomicU64,
    dedup: Mutex<DedupCache>,
    running: AtomicBool,
    default_timeout: RwLock<Option<Duration>>,
}

impl MargoInstance {
    /// Initializes margo for the calling simulated process, opening a
    /// fresh endpoint and starting the progress loop.
    pub fn init(fabric: &Fabric) -> Arc<Self> {
        Self::from_endpoint(Arc::new(fabric.open()))
    }

    /// Initializes margo over an existing endpoint (shared with MoNA in
    /// Colza daemons) and starts the progress loop.
    pub fn from_endpoint(endpoint: Arc<Endpoint>) -> Arc<Self> {
        let ctx = Arc::clone(endpoint.ctx());
        let wrapper: argo::TaskWrapper = {
            let ctx = Arc::clone(&ctx);
            Arc::new(move |task| hpcsim::process::enter(Arc::clone(&ctx), task))
        };
        let inst = Arc::new(Self {
            endpoint,
            handlers: RwLock::new(HashMap::new()),
            control_pool: argo::PoolBuilder::new("margo-ctl")
                .xstreams(2)
                .task_wrapper(Arc::clone(&wrapper))
                .build(),
            heavy_pool: argo::PoolBuilder::new("margo-heavy")
                .xstreams(2)
                .task_wrapper(wrapper)
                .build(),
            next_resp: AtomicU64::new(1),
            next_req: AtomicU64::new(1),
            dedup: Mutex::new(DedupCache::default()),
            running: AtomicBool::new(true),
            default_timeout: RwLock::new(Some(Duration::from_secs(30))),
        });
        let progress = Arc::clone(&inst);
        std::thread::Builder::new()
            .name(format!("margo-progress-{}", inst.address()))
            .spawn(move || hpcsim::process::enter(Arc::clone(progress.endpoint.ctx()), || progress.progress_loop()))
            .expect("spawn margo progress loop");
        inst
    }

    /// This instance's address.
    pub fn address(&self) -> Address {
        self.endpoint.address()
    }

    /// The shared endpoint.
    pub fn endpoint(&self) -> &Arc<Endpoint> {
        &self.endpoint
    }

    /// Sets the default liveness timeout applied to `forward` calls.
    pub fn set_default_timeout(&self, t: Option<Duration>) {
        *self.default_timeout.write() = t;
    }

    /// Registers a typed RPC handler on the control pool.
    pub fn register<A, R, F>(&self, name: &str, f: F)
    where
        A: DeserializeOwned,
        R: Serialize,
        F: Fn(A, &CallCtx) -> std::result::Result<R, String> + Send + Sync + 'static,
    {
        self.register_in_pool(name, HandlerPool::Control, f)
    }

    /// Registers a typed RPC handler on a chosen pool.
    pub fn register_in_pool<A, R, F>(&self, name: &str, pool: HandlerPool, f: F)
    where
        A: DeserializeOwned,
        R: Serialize,
        F: Fn(A, &CallCtx) -> std::result::Result<R, String> + Send + Sync + 'static,
    {
        let raw: RawHandler = Arc::new(move |bytes, ctx| {
            let args: A = wire::from_slice(bytes).map_err(|e| format!("bad args: {e}"))?;
            let out = f(args, ctx)?;
            wire::to_vec(&out).map_err(|e| format!("bad response: {e}"))
        });
        self.handlers.write().insert(name.to_string(), (raw, pool));
    }

    /// Removes a handler (used when pipelines are destroyed).
    pub fn deregister(&self, name: &str) -> bool {
        self.handlers.write().remove(name).is_some()
    }

    /// Calls RPC `name` at `dst` with `args`, blocking for the typed
    /// response. Applies the instance's default liveness timeout.
    pub fn forward<A: Serialize, R: DeserializeOwned>(
        &self,
        dst: Address,
        name: &str,
        args: &A,
    ) -> Result<R> {
        self.forward_timeout(dst, name, args, *self.default_timeout.read())
    }

    /// `forward` with an explicit liveness timeout.
    pub fn forward_timeout<A: Serialize, R: DeserializeOwned>(
        &self,
        dst: Address,
        name: &str,
        args: &A,
        timeout: Option<Duration>,
    ) -> Result<R> {
        let env = self.make_envelope(name, args)?;
        decode_reply(&self.forward_envelope(dst, &env, timeout)?)
    }

    /// `forward` with retries under a [`RetryConfig`]: exponential backoff
    /// with seeded jitter, per-try timeouts, and an overall deadline.
    ///
    /// Every attempt carries the same request id and response tag, so
    /// retries are idempotent end to end: the server executes the handler
    /// at most once (duplicates are suppressed or answered from the reply
    /// cache), and a straggler reply to an earlier attempt still completes
    /// the call.
    pub fn forward_retry<A: Serialize, R: DeserializeOwned>(
        &self,
        dst: Address,
        name: &str,
        args: &A,
        cfg: &RetryConfig,
    ) -> Result<R> {
        let env = self.make_envelope(name, args)?;
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            let remaining = match cfg.deadline {
                Some(d) => match d.checked_sub(started.elapsed()) {
                    Some(r) if !r.is_zero() => Some(r),
                    _ => return Err(RpcError::Timeout),
                },
                None => None,
            };
            let per_try = match remaining {
                Some(r) => cfg.per_try_timeout.min(r),
                None => cfg.per_try_timeout,
            };
            let err = match self.forward_envelope(dst, &env, Some(per_try)) {
                Ok(data) => return decode_reply(&data),
                Err(e) => e,
            };
            let retryable = match &err {
                RpcError::Timeout => true,
                RpcError::Unreachable(_) => cfg.retry_unreachable,
                _ => false,
            };
            if !retryable {
                return Err(err);
            }
            attempt += 1;
            if cfg.max_attempts != 0 && attempt >= cfg.max_attempts {
                hpcsim::trace::counter_add("rpc.retry.giveup", 1);
                return Err(err);
            }
            hpcsim::trace::counter_add("rpc.retries", 1);
            let mut pause = backoff_delay(cfg, attempt - 1, self.endpoint.ctx().rng_unit());
            if let Some(d) = cfg.deadline {
                match d.checked_sub(started.elapsed()) {
                    Some(r) if !r.is_zero() => pause = pause.min(r),
                    _ => return Err(RpcError::Timeout),
                }
            }
            if !pause.is_zero() {
                // Backoff costs both real time (liveness clocks keep
                // running) and virtual time (the caller really waits).
                self.endpoint.ctx().advance(pause.as_nanos() as u64);
                std::thread::sleep(pause);
            }
        }
    }

    fn make_envelope<A: Serialize>(&self, name: &str, args: &A) -> Result<Envelope> {
        Ok(Envelope {
            name: name.to_string(),
            resp_tag: na::tags::RPC_RESP_BASE + self.next_resp.fetch_add(1, Ordering::Relaxed),
            req_id: self.next_req.fetch_add(1, Ordering::Relaxed),
            body: wire::to_vec(args)?,
        })
    }

    /// One request/response exchange for an already built envelope.
    fn forward_envelope(
        &self,
        dst: Address,
        env: &Envelope,
        timeout: Option<Duration>,
    ) -> Result<Bytes> {
        let mut sp = hpcsim::trace::span("rpc", format!("rpc:{}", env.name));
        self.endpoint.ctx().advance(RPC_SW_NS);
        let start = self.endpoint.ctx().now();
        let payload = Bytes::from(wire::to_vec(env)?);
        if sp.active() {
            sp.arg("req_id", env.req_id);
            sp.arg("bytes", payload.len());
            hpcsim::trace::counter_add("rpc.sent.msgs", 1);
        }
        let sent_bytes = payload.len() as u64;
        self.endpoint
            .send(dst, na::tags::RPC_BASE, payload)
            .map_err(|e| {
                sp.arg("outcome", "unreachable");
                match e {
                    NaError::Unreachable(a) => RpcError::Unreachable(a),
                    _ => RpcError::Shutdown,
                }
            })?;
        hpcsim::trace::counter_add("rpc.bytes.out", sent_bytes);
        let msg = self
            .endpoint
            .recv_timeout(RecvSelector::tag(env.resp_tag), timeout)
            .map_err(|e| match e {
                NaError::Timeout => {
                    sp.arg("outcome", "timeout");
                    hpcsim::trace::counter_add("rpc.timeouts", 1);
                    RpcError::Timeout
                }
                _ => {
                    sp.arg("outcome", "shutdown");
                    RpcError::Shutdown
                }
            })?;
        self.endpoint.ctx().advance(RPC_SW_NS);
        if sp.active() {
            hpcsim::trace::record_duration(
                &format!("rpc:{}", env.name),
                self.endpoint.ctx().now() - start,
            );
        }
        Ok(msg.data)
    }

    /// Stops the progress loop and closes the endpoint. Idempotent.
    pub fn finalize(&self) {
        if self.running.swap(false, Ordering::AcqRel) {
            self.endpoint.close();
        }
    }

    /// Whether `finalize` has been called.
    pub fn finalized(&self) -> bool {
        !self.running.load(Ordering::Acquire)
    }

    fn progress_loop(self: &Arc<Self>) {
        loop {
            let msg = match self.endpoint.recv(RecvSelector::tag(na::tags::RPC_BASE)) {
                Ok(m) => m,
                Err(_) => return, // endpoint closed: instance finalized
            };
            let env: Envelope = match wire::from_slice(&msg.data) {
                Ok(e) => e,
                Err(_) => continue, // corrupt request: drop, as Mercury does
            };
            let caller = msg.src;
            let key = (caller, env.req_id);
            match self.dedup.lock().admit(key) {
                Some(Some(cached)) => {
                    // Duplicate of a completed request: replay the reply
                    // without re-executing the handler.
                    self.endpoint.ctx().advance(RPC_SW_NS);
                    hpcsim::trace::counter_add("rpc.dedup.replayed", 1);
                    // Counted before the send: once the reply leaves, the
                    // caller unblocks and may finish (and snapshot the
                    // tracer) before this thread runs again.
                    hpcsim::trace::counter_add("rpc.bytes.reply", cached.len() as u64);
                    let _ = self.endpoint.send(caller, env.resp_tag, cached);
                    continue;
                }
                Some(None) => {
                    // Still executing: the in-flight run will reply.
                    hpcsim::trace::counter_add("rpc.dedup.inflight", 1);
                    continue;
                }
                None => {}
            }
            let entry = self.handlers.read().get(&env.name).cloned();
            let pool_choice = entry.as_ref().map(|(_, p)| *p);
            let this = Arc::clone(self);
            let run = move || {
                let reply = {
                    // The span must end before the reply leaves: once the
                    // caller unblocks it may issue its next request, and the
                    // progress loop would then race this thread on the shared
                    // process clock, making the recorded end nondeterministic.
                    let mut sp = hpcsim::trace::span("rpc", format!("rpc.handle:{}", env.name));
                    this.endpoint.ctx().advance(RPC_SW_NS);
                    let reply = match &entry {
                        Some((handler, _)) => {
                            let ctx = CallCtx {
                                caller,
                                endpoint: Arc::clone(&this.endpoint),
                            };
                            match handler(&env.body, &ctx) {
                                Ok(body) => Reply::Ok(body),
                                Err(m) => Reply::Err(m),
                            }
                        }
                        None => Reply::Err(format!("__no_such_rpc__:{}", env.name)),
                    };
                    if sp.active() {
                        sp.arg("req_id", env.req_id);
                        sp.arg("ok", matches!(reply, Reply::Ok(_)));
                        hpcsim::trace::counter_add("rpc.handled.msgs", 1);
                    }
                    reply
                };
                let bytes = Bytes::from(wire::to_vec(&reply).expect("reply encodes"));
                this.dedup.lock().complete(key, bytes.clone());
                // Like the span above, the byte accounting must land before
                // the reply does: the send unblocks the caller, which may
                // finish — and snapshot the tracer — before this (detached)
                // pool thread is scheduled again. The send itself stays
                // best-effort: the caller may have died while we worked.
                hpcsim::trace::counter_add("rpc.bytes.reply", bytes.len() as u64);
                let _ = this.endpoint.send(caller, env.resp_tag, bytes);
            };
            match pool_choice {
                Some(HandlerPool::Heavy) => self.heavy_pool.post(run),
                _ => self.control_pool.post(run),
            }
        }
    }
}

impl Drop for MargoInstance {
    fn drop(&mut self) {
        self.finalize();
    }
}

fn decode_reply<R: DeserializeOwned>(data: &[u8]) -> Result<R> {
    match wire::from_slice::<Reply>(data)? {
        Reply::Ok(body) => Ok(wire::from_slice(&body)?),
        Reply::Err(m) => {
            if let Some(name) = m.strip_prefix("__no_such_rpc__:") {
                Err(RpcError::NoSuchRpc(name.to_string()))
            } else {
                Err(RpcError::Handler(m))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsim::Cluster;

    fn setup() -> (Cluster, Fabric) {
        let c = Cluster::default();
        let f = Fabric::new(Arc::clone(c.shared()));
        (c, f)
    }

    #[test]
    fn typed_rpc_roundtrip() {
        let (c, f) = setup();
        let (tx, rx) = crossbeam::channel::bounded(1);
        let f2 = f.clone();
        let server = c.spawn("server", 0, move || {
            let margo = MargoInstance::init(&f2);
            margo.register("sum", |args: Vec<i64>, _ctx| Ok(args.iter().sum::<i64>()));
            tx.send(margo.address()).unwrap();
            // Serve until the client closes us via the "stop" RPC.
            let stop = argo::Eventual::<()>::new();
            let s2 = stop.clone();
            margo.register("stop", move |_: (), _ctx| {
                s2.set(());
                Ok(0u8)
            });
            stop.wait();
            margo.finalize();
        });
        let addr = rx.recv().unwrap();
        c.spawn("client", 1, move || {
            let margo = MargoInstance::init(&f);
            let sum: i64 = margo.forward(addr, "sum", &vec![1i64, 2, 3]).unwrap();
            assert_eq!(sum, 6);
            let _: u8 = margo.forward(addr, "stop", &()).unwrap();
        })
        .join();
        server.join();
    }

    #[test]
    fn unknown_rpc_is_reported() {
        let (c, f) = setup();
        let (tx, rx) = crossbeam::channel::bounded(1);
        let f2 = f.clone();
        let server = c.spawn("server", 0, move || {
            let margo = MargoInstance::init(&f2);
            let stop = argo::Eventual::<()>::new();
            let s2 = stop.clone();
            margo.register("stop", move |_: (), _| {
                s2.set(());
                Ok(())
            });
            tx.send(margo.address()).unwrap();
            stop.wait();
            margo.finalize();
        });
        let addr = rx.recv().unwrap();
        c.spawn("client", 1, move || {
            let margo = MargoInstance::init(&f);
            let r: Result<u8> = margo.forward(addr, "nope", &());
            assert!(matches!(r, Err(RpcError::NoSuchRpc(n)) if n == "nope"));
            let _: () = margo.forward(addr, "stop", &()).unwrap();
        })
        .join();
        server.join();
    }

    #[test]
    fn handler_errors_propagate() {
        let (c, f) = setup();
        let (tx, rx) = crossbeam::channel::bounded(1);
        let f2 = f.clone();
        let server = c.spawn("server", 0, move || {
            let margo = MargoInstance::init(&f2);
            margo.register("fail", |_: (), _| Err::<u8, _>("boom".to_string()));
            let stop = argo::Eventual::<()>::new();
            let s2 = stop.clone();
            margo.register("stop", move |_: (), _| {
                s2.set(());
                Ok(())
            });
            tx.send(margo.address()).unwrap();
            stop.wait();
            margo.finalize();
        });
        let addr = rx.recv().unwrap();
        c.spawn("client", 1, move || {
            let margo = MargoInstance::init(&f);
            let r: Result<u8> = margo.forward(addr, "fail", &());
            assert_eq!(r, Err(RpcError::Handler("boom".to_string())));
            let _: () = margo.forward(addr, "stop", &()).unwrap();
        })
        .join();
        server.join();
    }

    #[test]
    fn forward_to_dead_server_times_out_or_unreachable() {
        let (c, f) = setup();
        let f2 = f.clone();
        let dead = c.spawn("dead", 0, move || {
            let margo = MargoInstance::init(&f2);
            let addr = margo.address();
            margo.finalize();
            addr
        });
        let addr = dead.join();
        c.spawn("client", 1, move || {
            let margo = MargoInstance::init(&f);
            let r: Result<u8> =
                margo.forward_timeout(addr, "x", &(), Some(Duration::from_millis(50)));
            assert!(matches!(r, Err(RpcError::Unreachable(_)) | Err(RpcError::Timeout)));
        })
        .join();
    }

    #[test]
    fn concurrent_rpcs_from_many_clients() {
        let (c, f) = setup();
        let (tx, rx) = crossbeam::channel::bounded(1);
        let f2 = f.clone();
        let server = c.spawn("server", 0, move || {
            let margo = MargoInstance::init(&f2);
            margo.register("double", |x: u64, _| Ok(x * 2));
            let stop = argo::Eventual::<()>::new();
            let s2 = stop.clone();
            let remaining = Arc::new(AtomicU64::new(4));
            margo.register("done", move |_: (), _| {
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    s2.set(());
                }
                Ok(())
            });
            tx.send(margo.address()).unwrap();
            stop.wait();
            margo.finalize();
        });
        let addr = rx.recv().unwrap();
        let clients: Vec<_> = (0..4u64)
            .map(|i| {
                let f = f.clone();
                c.spawn(&format!("cl{i}"), 1, move || {
                    let margo = MargoInstance::init(&f);
                    for k in 0..20u64 {
                        let out: u64 = margo.forward(addr, "double", &(i * 100 + k)).unwrap();
                        assert_eq!(out, (i * 100 + k) * 2);
                    }
                    let _: () = margo.forward(addr, "done", &()).unwrap();
                })
            })
            .collect();
        for cl in clients {
            cl.join();
        }
        server.join();
    }

    #[test]
    fn rpc_advances_virtual_time_round_trip() {
        let c = Cluster::new(hpcsim::ClusterConfig::aries());
        let f = Fabric::new(Arc::clone(c.shared()));
        let (tx, rx) = crossbeam::channel::bounded(1);
        let f2 = f.clone();
        let server = c.spawn("server", 0, move || {
            let margo = MargoInstance::init(&f2);
            let stop = argo::Eventual::<()>::new();
            let s2 = stop.clone();
            margo.register("stop", move |_: (), _| {
                s2.set(());
                Ok(())
            });
            margo.register("noop", |_: (), _| Ok(()));
            tx.send(margo.address()).unwrap();
            stop.wait();
            margo.finalize();
        });
        let addr = rx.recv().unwrap();
        c.spawn("client", 1, move || {
            let margo = MargoInstance::init(&f);
            let before = hpcsim::current().now();
            let _: () = margo.forward(addr, "noop", &()).unwrap();
            let rtt = hpcsim::current().now() - before;
            // Two control hops plus software overheads: microsecond scale.
            assert!(rtt > 1_000, "rtt {rtt} ns too small");
            assert!(rtt < 1_000_000, "rtt {rtt} ns too large");
            let _: () = margo.forward(addr, "stop", &()).unwrap();
        })
        .join();
        server.join();
    }

    #[test]
    fn deregistered_rpcs_stop_resolving() {
        let (c, f) = setup();
        let (tx, rx) = crossbeam::channel::bounded(1);
        let f2 = f.clone();
        let server = c.spawn("server", 0, move || {
            let margo = MargoInstance::init(&f2);
            margo.register("temp", |_: (), _| Ok(1u8));
            let stop = argo::Eventual::<()>::new();
            let s2 = stop.clone();
            margo.register("drop_temp", move |_: (), _ctx| Ok(()));
            let m2 = Arc::downgrade(&margo);
            margo.register("do_drop", move |_: (), _| {
                if let Some(m) = m2.upgrade() {
                    Ok(m.deregister("temp"))
                } else {
                    Err("gone".to_string())
                }
            });
            margo.register("stop", move |_: (), _| {
                s2.set(());
                Ok(())
            });
            tx.send(margo.address()).unwrap();
            stop.wait();
            margo.finalize();
        });
        let addr = rx.recv().unwrap();
        c.spawn("client", 1, move || {
            let margo = MargoInstance::init(&f);
            let v: u8 = margo.forward(addr, "temp", &()).unwrap();
            assert_eq!(v, 1);
            let dropped: bool = margo.forward(addr, "do_drop", &()).unwrap();
            assert!(dropped);
            let r: Result<u8> = margo.forward(addr, "temp", &());
            assert!(matches!(r, Err(RpcError::NoSuchRpc(_))));
            let _: () = margo.forward(addr, "stop", &()).unwrap();
        })
        .join();
        server.join();
    }

    fn faulty_setup(plan: hpcsim::FaultPlan) -> (Cluster, Fabric) {
        let c = Cluster::new(hpcsim::ClusterConfig {
            faults: plan,
            ..Default::default()
        });
        let f = Fabric::new(Arc::clone(c.shared()));
        (c, f)
    }

    /// Spawns a counting echo server; returns its address and the
    /// invocation counter.
    fn spawn_counting_server(
        c: &Cluster,
        f: &Fabric,
    ) -> (Address, Arc<AtomicU64>, crossbeam::channel::Sender<()>) {
        let calls = Arc::new(AtomicU64::new(0));
        let calls2 = Arc::clone(&calls);
        let (addr_tx, addr_rx) = crossbeam::channel::bounded(1);
        let (stop_tx, stop_rx) = crossbeam::channel::bounded::<()>(1);
        let f2 = f.clone();
        c.spawn("server", 0, move || {
            let margo = MargoInstance::init(&f2);
            margo.register("echo", move |x: u64, _| {
                calls2.fetch_add(1, Ordering::AcqRel);
                Ok(x)
            });
            addr_tx.send(margo.address()).unwrap();
            let _ = stop_rx.recv();
            margo.finalize();
        });
        (addr_rx.recv().unwrap(), calls, stop_tx)
    }

    #[test]
    fn duplicate_requests_execute_exactly_once() {
        // Duplicate every request (but not replies): with req-id dedup the
        // handler must still run exactly once per logical call.
        let (c, f) = faulty_setup(
            hpcsim::FaultPlan::seeded(7)
                .with_duplication(1.0)
                .scope_tags(na::tags::RPC_BASE, na::tags::RPC_BASE),
        );
        let (addr, calls, stop) = spawn_counting_server(&c, &f);
        c.spawn("client", 1, move || {
            let margo = MargoInstance::init(&f);
            for k in 0..20u64 {
                let out: u64 = margo.forward(addr, "echo", &k).unwrap();
                assert_eq!(out, k);
            }
        })
        .join();
        assert_eq!(calls.load(Ordering::Acquire), 20, "handler re-executed a duplicate");
        let _ = stop.send(());
    }

    #[test]
    fn forward_retry_recovers_from_lost_requests() {
        let (c, f) = faulty_setup(
            hpcsim::FaultPlan::seeded(11)
                .with_loss(0.3)
                .scope_tags(na::tags::RPC_BASE, na::tags::RPC_BASE),
        );
        let (addr, calls, stop) = spawn_counting_server(&c, &f);
        c.spawn("client", 1, move || {
            let margo = MargoInstance::init(&f);
            let cfg = RetryConfig {
                max_attempts: 0,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(5),
                per_try_timeout: Duration::from_millis(50),
                deadline: Some(Duration::from_secs(20)),
                ..Default::default()
            };
            for k in 0..30u64 {
                let out: u64 = margo.forward_retry(addr, "echo", &k, &cfg).unwrap();
                assert_eq!(out, k);
            }
        })
        .join();
        assert!(calls.load(Ordering::Acquire) >= 30);
        let _ = stop.send(());
    }

    #[test]
    fn forward_retry_gives_up_after_deadline_with_timeout() {
        // Total request loss against a live server: retries burn the
        // deadline and the call must surface Timeout, not hang.
        let (c, f) = faulty_setup(
            hpcsim::FaultPlan::seeded(13)
                .with_loss(1.0)
                .scope_tags(na::tags::RPC_BASE, na::tags::RPC_BASE),
        );
        let (addr, calls, stop) = spawn_counting_server(&c, &f);
        c.spawn("client", 1, move || {
            let margo = MargoInstance::init(&f);
            let cfg = RetryConfig {
                max_attempts: 0,
                base_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(10),
                per_try_timeout: Duration::from_millis(40),
                deadline: Some(Duration::from_millis(200)),
                ..Default::default()
            };
            let start = Instant::now();
            let r: Result<u64> = margo.forward_retry(addr, "echo", &1u64, &cfg);
            assert_eq!(r, Err(RpcError::Timeout));
            assert!(start.elapsed() >= Duration::from_millis(150));
            // And bounded: well under ten times the deadline even on a
            // loaded machine.
            assert!(start.elapsed() < Duration::from_secs(2));
        })
        .join();
        assert_eq!(calls.load(Ordering::Acquire), 0, "no request should get through");
        let _ = stop.send(());
    }

    #[test]
    fn heavy_pool_does_not_starve_control_rpcs() {
        // A long-running heavy handler (pipeline execution) must not block
        // control-plane RPCs - the multi-pool property Colza relies on.
        let (c, f) = setup();
        let (tx, rx) = crossbeam::channel::bounded(1);
        let f2 = f.clone();
        let server = c.spawn("server", 0, move || {
            let margo = MargoInstance::init(&f2);
            let gate: argo::Eventual<()> = argo::Eventual::new();
            let g2 = gate.clone();
            margo.register_in_pool("slow", HandlerPool::Heavy, move |_: (), _| {
                g2.wait_cloned();
                Ok(())
            });
            let g3 = gate.clone();
            margo.register("unblock", move |_: (), _| {
                if !g3.is_ready() {
                    g3.set(());
                }
                Ok(())
            });
            margo.register("ping", |_: (), _| Ok(0xAAu8));
            let stop = argo::Eventual::<()>::new();
            let s2 = stop.clone();
            margo.register("stop", move |_: (), _| {
                s2.set(());
                Ok(())
            });
            tx.send(margo.address()).unwrap();
            stop.wait();
            margo.finalize();
        });
        let addr = rx.recv().unwrap();
        c.spawn("client", 1, move || {
            let margo = MargoInstance::init(&f);
            // Occupy both heavy streams.
            let m1 = Arc::clone(&margo);
            let ctx = hpcsim::process::current();
            let ctx2 = Arc::clone(&ctx);
            let t1 = std::thread::spawn(move || {
                hpcsim::process::enter(ctx2, move || {
                    let _: () = m1.forward(addr, "slow", &()).unwrap();
                })
            });
            // Control RPCs keep flowing while "slow" blocks.
            for _ in 0..5 {
                let v: u8 = margo.forward(addr, "ping", &()).unwrap();
                assert_eq!(v, 0xAA);
            }
            let _: () = margo.forward(addr, "unblock", &()).unwrap();
            t1.join().unwrap();
            let _: () = margo.forward(addr, "stop", &()).unwrap();
        })
        .join();
        server.join();
    }

}