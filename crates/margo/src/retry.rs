//! Retry policy for forwarded RPCs: bounded exponential backoff with
//! jitter, per-try timeouts, and an overall deadline.
//!
//! Retries are safe because [`crate::MargoInstance::forward_retry`] reuses
//! the same request id and response tag across attempts: the server
//! suppresses duplicate executions, and a late reply to an earlier attempt
//! still satisfies the caller's wait.

use std::time::Duration;

/// Policy for [`crate::MargoInstance::forward_retry`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryConfig {
    /// Maximum number of attempts; `0` means bounded by `deadline` only.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_delay: Duration,
    /// Cap on the backoff between any two attempts (before jitter).
    pub max_delay: Duration,
    /// Backoff growth factor per attempt (values below 1 are treated as 1).
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1]`: each backoff is scaled by a factor in
    /// `[1, 1 + jitter]` drawn from the process RNG.
    pub jitter: f64,
    /// Liveness timeout applied to each individual attempt.
    pub per_try_timeout: Duration,
    /// Overall budget across attempts and backoffs; when it runs out the
    /// call fails with [`crate::RpcError::Timeout`]. `None` disables it.
    pub deadline: Option<Duration>,
    /// Whether `Unreachable` (no live endpoint at the target) is retried.
    /// Off by default: a closed endpoint usually means the peer is dead
    /// and membership should react, not the transport. Join/bootstrap
    /// paths, where the peer may simply not be up yet, turn it on.
    pub retry_unreachable: bool,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            max_attempts: 8,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(250),
            multiplier: 2.0,
            jitter: 0.25,
            per_try_timeout: Duration::from_millis(500),
            deadline: Some(Duration::from_secs(30)),
            retry_unreachable: false,
        }
    }
}

/// The backoff to sleep after attempt number `attempt` (0-based) fails.
///
/// `jitter_unit` is a uniform draw in `[0, 1)` supplied by the caller so
/// the schedule stays deterministic under the simulator's seeded RNG.
/// The result is monotone nondecreasing in `attempt` (for a fixed draw)
/// and bounded by `max_delay * (1 + jitter)`.
pub fn backoff_delay(cfg: &RetryConfig, attempt: u32, jitter_unit: f64) -> Duration {
    let mult = if cfg.multiplier.is_finite() {
        cfg.multiplier.max(1.0)
    } else {
        1.0
    };
    let growth = mult.powi(attempt.min(63) as i32);
    let mut secs = cfg.base_delay.as_secs_f64() * growth;
    if !secs.is_finite() {
        secs = cfg.max_delay.as_secs_f64();
    }
    secs = secs.min(cfg.max_delay.as_secs_f64());
    let unit = if jitter_unit.is_finite() {
        jitter_unit.clamp(0.0, 1.0)
    } else {
        0.0
    };
    secs *= 1.0 + cfg.jitter.clamp(0.0, 1.0) * unit;
    if !secs.is_finite() || secs < 0.0 {
        secs = 0.0;
    }
    // An hour dwarfs any plausible deadline; the cap just keeps
    // `from_secs_f64` well inside its domain.
    Duration::from_secs_f64(secs.min(3600.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let cfg = RetryConfig {
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
            multiplier: 2.0,
            jitter: 0.0,
            ..Default::default()
        };
        assert_eq!(backoff_delay(&cfg, 0, 0.0), Duration::from_millis(10));
        assert_eq!(backoff_delay(&cfg, 1, 0.0), Duration::from_millis(20));
        assert_eq!(backoff_delay(&cfg, 2, 0.0), Duration::from_millis(40));
        assert_eq!(backoff_delay(&cfg, 3, 0.0), Duration::from_millis(80));
        assert_eq!(backoff_delay(&cfg, 10, 0.0), Duration::from_millis(80));
    }

    #[test]
    fn jitter_scales_within_bounds() {
        let cfg = RetryConfig {
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(100),
            jitter: 0.5,
            ..Default::default()
        };
        assert_eq!(backoff_delay(&cfg, 0, 0.0), Duration::from_millis(100));
        let top = backoff_delay(&cfg, 0, 0.999_999);
        assert!(top > Duration::from_millis(100));
        assert!(top <= Duration::from_millis(150));
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let cfg = RetryConfig {
            base_delay: Duration::from_secs(1_000_000),
            max_delay: Duration::from_secs(u64::MAX / 2),
            multiplier: f64::INFINITY,
            jitter: f64::NAN,
            ..Default::default()
        };
        let d = backoff_delay(&cfg, 63, f64::NAN);
        assert!(d <= Duration::from_secs(3600));
        let cfg2 = RetryConfig {
            multiplier: 0.1, // sub-1 growth treated as constant
            jitter: 0.0,
            ..Default::default()
        };
        assert_eq!(backoff_delay(&cfg2, 5, 0.0), backoff_delay(&cfg2, 0, 0.0));
    }
}
