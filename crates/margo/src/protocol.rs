//! RPC wire protocol and error type.

use serde::{Deserialize, Serialize};

use na::Address;

/// A request as it travels on the wire.
#[derive(Serialize, Deserialize, Debug)]
pub(crate) struct Envelope {
    /// Registered handler name.
    pub name: String,
    /// Tag on which the caller awaits the response.
    pub resp_tag: u64,
    /// Caller-unique request id; identical across retries of one logical
    /// call so the server can suppress duplicate executions.
    pub req_id: u64,
    /// wire-encoded argument payload.
    pub body: Vec<u8>,
}

/// A response as it travels on the wire.
#[derive(Serialize, Deserialize, Debug)]
pub(crate) enum Reply {
    /// Handler output (wire-encoded).
    Ok(Vec<u8>),
    /// Handler-reported failure.
    Err(String),
}

/// RPC failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum RpcError {
    /// The target address has no live endpoint.
    Unreachable(Address),
    /// The response did not arrive within the liveness timeout.
    Timeout,
    /// No handler registered under this name at the target.
    NoSuchRpc(String),
    /// The handler returned an application error.
    Handler(String),
    /// Argument or response (de)serialization failed.
    Codec(String),
    /// The local endpoint shut down mid-call.
    Shutdown,
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Unreachable(a) => write!(f, "target {a} unreachable"),
            RpcError::Timeout => write!(f, "RPC timed out"),
            RpcError::NoSuchRpc(n) => write!(f, "no RPC registered as {n:?}"),
            RpcError::Handler(m) => write!(f, "handler error: {m}"),
            RpcError::Codec(m) => write!(f, "codec error: {m}"),
            RpcError::Shutdown => write!(f, "local margo instance shut down"),
        }
    }
}

impl RpcError {
    /// Whether the failure is transient: the call may succeed if retried
    /// (the request or reply may simply have been lost). `Unreachable`
    /// counts because a peer may not have opened its endpoint yet;
    /// policies decide per call site whether to actually retry it.
    pub fn is_retryable(&self) -> bool {
        matches!(self, RpcError::Timeout | RpcError::Unreachable(_))
    }
}

impl std::error::Error for RpcError {}

impl From<wire::Error> for RpcError {
    fn from(e: wire::Error) -> Self {
        RpcError::Codec(e.to_string())
    }
}
