//! Virtual-time observability: spans, counters, and latency histograms.
//!
//! Every record is stamped with **virtual** nanoseconds from the recording
//! process's [`crate::clock::VClock`], never with wall time, so traces are
//! as deterministic as the simulation itself: two runs with the same seed
//! produce byte-identical exports (the same property the fault injector's
//! canonical trace has). Recording never advances a clock — observing a
//! run cannot change its virtual-time results.
//!
//! The recording half lives behind the crate's default-on `trace` feature.
//! With the feature disabled every entry point below still exists with the
//! same signature but compiles to nothing, so instrumented crates build
//! unchanged under `--no-default-features` (checked by `scripts/check.sh`).
//! With the feature on but the [`Tracer`] runtime-disabled (the default),
//! each instrumentation point costs one thread-local read and one relaxed
//! atomic load.
//!
//! Exports (DESIGN.md §9):
//! * [`TraceSnapshot::to_chrome_json`] — a Chrome-trace / Perfetto JSON
//!   timeline (open at <https://ui.perfetto.dev>);
//! * [`TraceSnapshot::to_metrics_jsonl`] — a compact JSONL metrics dump
//!   (one counter / histogram / span-aggregate object per line).

use std::cmp::Reverse;

/// Number of power-of-two latency buckets (bucket `k` holds durations in
/// `[2^(k-1), 2^k)` ns; bucket 43 ≈ 2.4 virtual hours, plenty for any run).
pub const HIST_BUCKETS: usize = 44;

/// One completed span: a named interval of virtual time on one process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Recording process.
    pub pid: u64,
    /// Category (crate-level taxonomy: `na`, `rpc`, `mona`, `ssg`, `colza`).
    pub cat: &'static str,
    /// Span name (e.g. `rpc:colza.stage`).
    pub name: String,
    /// Virtual start time.
    pub start_ns: u64,
    /// Virtual end time (`>= start_ns`; clocks are monotone).
    pub end_ns: u64,
    /// Nesting depth on the recording thread (0 = top level).
    pub depth: u32,
    /// Canonical export lane (Chrome `tid`); assigned by [`Tracer::snapshot`].
    pub lane: u32,
    /// Key/value annotations in recording order.
    pub args: Vec<(&'static str, String)>,
}

/// A monotonic counter total for one `(pid, name)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterRec {
    /// Recording process.
    pub pid: u64,
    /// Counter name (e.g. `na.link.bytes.0->1`).
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// A log₂-bucketed latency histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples (ns).
    pub sum_ns: u64,
    /// Smallest sample (ns).
    pub min_ns: u64,
    /// Largest sample (ns).
    pub max_ns: u64,
    /// Power-of-two buckets; see [`HIST_BUCKETS`].
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Self {
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Hist {
    /// Folds one sample in.
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.sum_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[bucket_of(ns)] += 1;
    }

    /// Upper-bound estimate of the `q`-quantile (`q` in 0..=100) from the
    /// bucket boundaries; exact min/max at the extremes.
    pub fn quantile_ns(&self, q: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * q).div_ceil(100).max(1);
        let mut seen = 0;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bound(k).min(self.max_ns).max(self.min_ns);
            }
        }
        self.max_ns
    }
}

fn bucket_of(ns: u64) -> usize {
    (64 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
}

fn bucket_bound(k: usize) -> u64 {
    if k >= 63 {
        u64::MAX
    } else {
        1u64 << k
    }
}

/// A histogram with its owner and name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistRec {
    /// Recording process.
    pub pid: u64,
    /// Histogram name (e.g. `rpc:ssg.colza.ping`).
    pub name: String,
    /// The bucketed samples.
    pub hist: Hist,
}

/// An immutable, canonically ordered copy of everything a [`Tracer`]
/// recorded. Construction sorts every collection by stable keys (never by
/// thread interleaving), which is what makes exports byte-reproducible.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Spans, sorted by `(pid, start, -end, depth, cat, name, args)`.
    pub spans: Vec<SpanRec>,
    /// Counters, sorted by `(pid, name)`.
    pub counters: Vec<CounterRec>,
    /// Histograms, sorted by `(pid, name)`.
    pub hists: Vec<HistRec>,
    /// `(pid, process name)` rows for timeline labels, sorted by pid.
    pub proc_names: Vec<(u64, String)>,
}

impl TraceSnapshot {
    /// Sum of a counter across all processes.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Sum across all processes of every counter whose name starts with
    /// `prefix` (e.g. `na.link.bytes.` sums all links).
    pub fn counter_prefix_total(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name.starts_with(prefix))
            .map(|c| c.value)
            .sum()
    }

    /// All spans with the given name.
    pub fn spans_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanRec> {
        self.spans.iter().filter(move |s| s.name == name)
    }

    /// The Chrome-trace / Perfetto JSON timeline. Timestamps are virtual
    /// microseconds (Chrome's unit) with nanosecond precision preserved in
    /// the decimals.
    pub fn to_chrome_json(&self) -> String {
        let mut events = Vec::with_capacity(self.proc_names.len() + self.spans.len());
        for (pid, name) in &self.proc_names {
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(name)
            ));
        }
        for s in &self.spans {
            let mut args = String::new();
            for (i, (k, v)) in s.args.iter().enumerate() {
                if i > 0 {
                    args.push(',');
                }
                args.push_str(&format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)));
            }
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
                escape_json(&s.name),
                escape_json(s.cat),
                s.pid,
                s.lane,
                fmt_us(s.start_ns),
                fmt_us(s.end_ns - s.start_ns),
            ));
        }
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}\n",
            events.join(",\n")
        )
    }

    /// The compact JSONL metrics dump: one `counter`, `hist`, or
    /// `span_stats` object per line, in canonical order.
    pub fn to_metrics_jsonl(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"pid\":{},\"name\":\"{}\",\"value\":{}}}\n",
                c.pid,
                escape_json(&c.name),
                c.value
            ));
        }
        for h in &self.hists {
            out.push_str(&format!(
                "{{\"type\":\"hist\",\"pid\":{},\"name\":\"{}\",\"count\":{},\"sum_ns\":{},\
                 \"min_ns\":{},\"max_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}\n",
                h.pid,
                escape_json(&h.name),
                h.hist.count,
                h.hist.sum_ns,
                if h.hist.count == 0 { 0 } else { h.hist.min_ns },
                h.hist.max_ns,
                h.hist.quantile_ns(50),
                h.hist.quantile_ns(99),
            ));
        }
        // Span aggregates by (pid, cat, name): the per-phase totals the
        // bench harnesses regress against.
        let mut agg: Vec<(u64, &'static str, &str, u64, u64)> = Vec::new();
        for s in &self.spans {
            match agg
                .iter_mut()
                .find(|(p, c, n, _, _)| *p == s.pid && *c == s.cat && *n == s.name)
            {
                Some((_, _, _, count, total)) => {
                    *count += 1;
                    *total += s.end_ns - s.start_ns;
                }
                None => agg.push((s.pid, s.cat, &s.name, 1, s.end_ns - s.start_ns)),
            }
        }
        agg.sort_by(|a, b| (a.0, a.1, a.2).cmp(&(b.0, b.1, b.2)));
        for (pid, cat, name, count, total) in agg {
            out.push_str(&format!(
                "{{\"type\":\"span_stats\",\"pid\":{pid},\"cat\":\"{}\",\"name\":\"{}\",\
                 \"count\":{count},\"total_ns\":{total}}}\n",
                escape_json(cat),
                escape_json(name),
            ));
        }
        out
    }
}

/// Virtual ns rendered as microseconds with the sub-µs digits kept.
fn fmt_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Sorts spans canonically and packs each process's spans onto export
/// lanes (Chrome `tid`s) so that spans within a lane obey stack
/// discipline. Lanes are derived from the sorted data, never from OS
/// thread identity, so which pool thread ran a handler cannot perturb the
/// export.
#[cfg_attr(not(feature = "trace"), allow(dead_code))]
fn canonicalize(spans: &mut Vec<SpanRec>) {
    spans.sort_by(|a, b| {
        (a.pid, a.start_ns, Reverse(a.end_ns), a.depth, a.cat, &a.name, &a.args).cmp(&(
            b.pid,
            b.start_ns,
            Reverse(b.end_ns),
            b.depth,
            b.cat,
            &b.name,
            &b.args,
        ))
    });
    let mut i = 0;
    while i < spans.len() {
        let pid = spans[i].pid;
        let mut j = i;
        while j < spans.len() && spans[j].pid == pid {
            j += 1;
        }
        // Greedy interval stacking: place each span in the first lane where
        // it either nests inside the currently open span or starts after
        // everything already placed there has ended.
        let mut open: Vec<Vec<(u64, u64)>> = Vec::new();
        let mut last_end: Vec<u64> = Vec::new();
        for k in i..j {
            let (s, e) = (spans[k].start_ns, spans[k].end_ns);
            let mut placed = None;
            for (li, stack) in open.iter_mut().enumerate() {
                while stack.last().is_some_and(|&(_, te)| te <= s) {
                    stack.pop();
                }
                let fits = match stack.last() {
                    None => last_end[li] <= s,
                    Some(&(ts, te)) => ts <= s && e <= te,
                };
                if fits {
                    placed = Some(li);
                    break;
                }
            }
            let li = placed.unwrap_or_else(|| {
                open.push(Vec::new());
                last_end.push(0);
                open.len() - 1
            });
            open[li].push((s, e));
            last_end[li] = last_end[li].max(e);
            spans[k].lane = li as u32;
        }
        i = j;
    }
}

#[cfg(feature = "trace")]
mod imp {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use parking_lot::Mutex;

    use super::{canonicalize, CounterRec, Hist, HistRec, SpanRec, TraceSnapshot};
    use crate::process::{self, ProcessCtx};

    /// The cluster-wide trace collector (one per
    /// [`crate::cluster::ClusterShared`], like the fault injector).
    /// Disabled by default; enabling it mid-run is allowed.
    pub struct Tracer {
        enabled: AtomicBool,
        spans: Mutex<Vec<SpanRec>>,
        counters: Mutex<BTreeMap<(u64, String), u64>>,
        hists: Mutex<BTreeMap<(u64, String), Hist>>,
    }

    impl Tracer {
        /// A disabled tracer.
        pub fn new() -> Self {
            Self {
                enabled: AtomicBool::new(false),
                spans: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
                hists: Mutex::new(BTreeMap::new()),
            }
        }

        /// Whether recording is on (the fast path every instrumentation
        /// point checks first).
        #[inline]
        pub fn is_enabled(&self) -> bool {
            self.enabled.load(Ordering::Relaxed)
        }

        /// Turns recording on or off.
        pub fn set_enabled(&self, on: bool) {
            self.enabled.store(on, Ordering::Relaxed);
        }

        /// Discards everything recorded so far.
        pub fn clear(&self) {
            self.spans.lock().clear();
            self.counters.lock().clear();
            self.hists.lock().clear();
        }

        /// Records a completed span.
        pub fn push_span(&self, span: SpanRec) {
            self.spans.lock().push(span);
        }

        /// Adds `delta` to the `(pid, name)` counter.
        pub fn counter_add(&self, pid: u64, name: &str, delta: u64) {
            let mut c = self.counters.lock();
            match c.get_mut(&(pid, name.to_string())) {
                Some(v) => *v += delta,
                None => {
                    c.insert((pid, name.to_string()), delta);
                }
            }
        }

        /// Folds one duration sample into the `(pid, name)` histogram.
        pub fn record_duration(&self, pid: u64, name: &str, ns: u64) {
            self.hists
                .lock()
                .entry((pid, name.to_string()))
                .or_default()
                .record(ns);
        }

        /// This process's counters, sorted by name (the `metrics` RPC).
        pub fn counters_for(&self, pid: u64) -> Vec<(String, u64)> {
            self.counters
                .lock()
                .iter()
                .filter(|((p, _), _)| *p == pid)
                .map(|((_, name), v)| (name.clone(), *v))
                .collect()
        }

        /// A canonically ordered copy of everything recorded so far.
        pub fn snapshot(&self) -> TraceSnapshot {
            let mut spans = self.spans.lock().clone();
            canonicalize(&mut spans);
            let counters = self
                .counters
                .lock()
                .iter()
                .map(|((pid, name), v)| CounterRec {
                    pid: *pid,
                    name: name.clone(),
                    value: *v,
                })
                .collect();
            let hists = self
                .hists
                .lock()
                .iter()
                .map(|((pid, name), h)| HistRec {
                    pid: *pid,
                    name: name.clone(),
                    hist: h.clone(),
                })
                .collect();
            TraceSnapshot {
                spans,
                counters,
                hists,
                proc_names: Vec::new(),
            }
        }
    }

    impl Default for Tracer {
        fn default() -> Self {
            Self::new()
        }
    }

    thread_local! {
        static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    }

    /// Whether the calling process's tracer is recording.
    #[inline]
    pub fn enabled() -> bool {
        process::try_current().is_some_and(|ctx| ctx.cluster().tracer().is_enabled())
    }

    /// An open span: records on drop. Inert (and allocation-free) when the
    /// tracer is off or the caller is not a simulated process.
    pub struct SpanGuard(Option<Open>);

    struct Open {
        ctx: Arc<ProcessCtx>,
        cat: &'static str,
        name: String,
        start: u64,
        depth: u32,
        args: Vec<(&'static str, String)>,
    }

    impl SpanGuard {
        /// Whether this guard will record (lets callers skip building args).
        pub fn active(&self) -> bool {
            self.0.is_some()
        }

        /// Attaches a key/value annotation.
        pub fn arg(&mut self, key: &'static str, value: impl std::fmt::Display) {
            if let Some(o) = &mut self.0 {
                o.args.push((key, value.to_string()));
            }
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if let Some(o) = self.0.take() {
                DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
                let end_ns = o.ctx.now();
                o.ctx.cluster().tracer().push_span(SpanRec {
                    pid: o.ctx.pid().0,
                    cat: o.cat,
                    name: o.name,
                    start_ns: o.start,
                    end_ns,
                    depth: o.depth,
                    lane: 0,
                    args: o.args,
                });
            }
        }
    }

    /// Opens a span on the current process's virtual clock.
    pub fn span(cat: &'static str, name: impl Into<String>) -> SpanGuard {
        let Some(ctx) = process::try_current() else {
            return SpanGuard(None);
        };
        if !ctx.cluster().tracer().is_enabled() {
            return SpanGuard(None);
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        SpanGuard(Some(Open {
            start: ctx.now(),
            cat,
            name: name.into(),
            depth,
            args: Vec::new(),
            ctx,
        }))
    }

    /// Adds `delta` to the current process's `name` counter.
    pub fn counter_add(name: impl AsRef<str>, delta: u64) {
        if let Some(ctx) = process::try_current() {
            let tracer = ctx.cluster().tracer();
            if tracer.is_enabled() {
                tracer.counter_add(ctx.pid().0, name.as_ref(), delta);
            }
        }
    }

    /// Records one latency sample into the current process's histogram.
    pub fn record_duration(name: impl AsRef<str>, ns: u64) {
        if let Some(ctx) = process::try_current() {
            let tracer = ctx.cluster().tracer();
            if tracer.is_enabled() {
                tracer.record_duration(ctx.pid().0, name.as_ref(), ns);
            }
        }
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::TraceSnapshot;

    /// No-op tracer: the `trace` feature is disabled, so every call
    /// compiles away and snapshots are empty.
    #[derive(Default)]
    pub struct Tracer;

    impl Tracer {
        /// A disabled tracer.
        pub fn new() -> Self {
            Tracer
        }

        /// Always `false` without the `trace` feature.
        #[inline]
        pub fn is_enabled(&self) -> bool {
            false
        }

        /// Ignored without the `trace` feature.
        pub fn set_enabled(&self, _on: bool) {}

        /// Nothing to discard.
        pub fn clear(&self) {}

        /// Dropped.
        pub fn push_span(&self, _span: super::SpanRec) {}

        /// Dropped.
        pub fn counter_add(&self, _pid: u64, _name: &str, _delta: u64) {}

        /// Dropped.
        pub fn record_duration(&self, _pid: u64, _name: &str, _ns: u64) {}

        /// Always empty.
        pub fn counters_for(&self, _pid: u64) -> Vec<(String, u64)> {
            Vec::new()
        }

        /// Always empty.
        pub fn snapshot(&self) -> TraceSnapshot {
            TraceSnapshot::default()
        }
    }

    /// Inert span handle.
    pub struct SpanGuard;

    impl SpanGuard {
        /// Always `false`.
        pub fn active(&self) -> bool {
            false
        }

        /// Ignored.
        pub fn arg(&mut self, _key: &'static str, _value: impl std::fmt::Display) {}
    }

    /// Always `false`.
    #[inline]
    pub fn enabled() -> bool {
        false
    }

    /// Returns an inert guard.
    #[inline]
    pub fn span(_cat: &'static str, _name: impl Into<String>) -> SpanGuard {
        SpanGuard
    }

    /// Dropped.
    #[inline]
    pub fn counter_add(_name: impl AsRef<str>, _delta: u64) {}

    /// Dropped.
    #[inline]
    pub fn record_duration(_name: impl AsRef<str>, _ns: u64) {}
}

pub use imp::{counter_add, enabled, record_duration, span, SpanGuard, Tracer};

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};

    fn traced_cluster() -> Cluster {
        let c = Cluster::new(ClusterConfig::default());
        c.shared().tracer().set_enabled(true);
        c
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let c = Cluster::new(ClusterConfig::default());
        c.spawn("p", 0, || {
            let mut sp = span("t", "work");
            assert!(!sp.active());
            sp.arg("k", 1);
            counter_add("n", 5);
            record_duration("d", 10);
        })
        .join();
        let snap = c.shared().trace_snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.hists.is_empty());
    }

    #[test]
    fn spans_nest_by_thread_depth() {
        let c = traced_cluster();
        c.spawn("p", 0, || {
            let ctx = crate::current();
            let _outer = span("t", "outer");
            ctx.advance(10);
            {
                let _inner = span("t", "inner");
                ctx.advance(5);
            }
            ctx.advance(10);
        })
        .join();
        let snap = c.shared().trace_snapshot();
        assert_eq!(snap.spans.len(), 2);
        let outer = &snap.spans[0];
        let inner = &snap.spans[1];
        assert_eq!(outer.name, "outer");
        assert_eq!(inner.name, "inner");
        assert_eq!((outer.depth, inner.depth), (0, 1));
        assert_eq!(outer.lane, inner.lane, "nested spans share a lane");
        assert!(outer.start_ns <= inner.start_ns && inner.end_ns <= outer.end_ns);
    }

    #[test]
    fn disjoint_spans_share_a_lane_and_overlaps_split() {
        let mut spans = vec![
            SpanRec {
                pid: 0,
                cat: "t",
                name: "a".into(),
                start_ns: 0,
                end_ns: 10,
                depth: 0,
                lane: 0,
                args: vec![],
            },
            SpanRec {
                pid: 0,
                cat: "t",
                name: "b".into(),
                start_ns: 20,
                end_ns: 30,
                depth: 0,
                lane: 0,
                args: vec![],
            },
            // Partially overlaps `b`: must go to its own lane.
            SpanRec {
                pid: 0,
                cat: "t",
                name: "c".into(),
                start_ns: 25,
                end_ns: 40,
                depth: 0,
                lane: 0,
                args: vec![],
            },
        ];
        canonicalize(&mut spans);
        let lane_of = |n: &str| spans.iter().find(|s| s.name == n).unwrap().lane;
        assert_eq!(lane_of("a"), lane_of("b"));
        assert_ne!(lane_of("b"), lane_of("c"));
    }

    #[test]
    fn counters_and_hists_accumulate() {
        let c = traced_cluster();
        c.spawn("p", 0, || {
            counter_add("bytes", 100);
            counter_add("bytes", 24);
            record_duration("lat", 700);
            record_duration("lat", 1300);
        })
        .join();
        let snap = c.shared().trace_snapshot();
        assert_eq!(snap.counter_total("bytes"), 124);
        assert_eq!(snap.counter_prefix_total("by"), 124);
        let h = &snap.hists[0];
        assert_eq!(h.name, "lat");
        assert_eq!(h.hist.count, 2);
        assert_eq!(h.hist.sum_ns, 2000);
        assert_eq!(h.hist.min_ns, 700);
        assert_eq!(h.hist.max_ns, 1300);
        assert!(h.hist.quantile_ns(50) >= 700);
    }

    #[test]
    fn exports_are_valid_and_labeled() {
        let c = traced_cluster();
        c.spawn("worker", 0, || {
            let ctx = crate::current();
            let mut sp = span("t", "step \"quoted\"");
            sp.arg("bytes", 42);
            ctx.advance(1234);
            drop(sp);
            counter_add("n", 1);
        })
        .join();
        let snap = c.shared().trace_snapshot();
        let chrome = snap.to_chrome_json();
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("step \\\"quoted\\\""));
        assert!(chrome.contains("\"dur\":1.234"));
        assert!(chrome.contains("process_name"));
        assert!(chrome.contains("worker"));
        let jsonl = snap.to_metrics_jsonl();
        assert!(jsonl.contains("\"type\":\"counter\""));
        assert!(jsonl.contains("\"type\":\"span_stats\""));
    }

    #[test]
    fn snapshot_order_is_independent_of_recording_order() {
        let rec = |flip: bool| {
            let c = traced_cluster();
            c.spawn("p", 0, move || {
                let ctx = crate::current();
                let names = if flip { ["b", "a"] } else { ["a", "b"] };
                for n in names {
                    let sp = span("t", n);
                    drop(sp);
                    counter_add(n, 1);
                }
                ctx.advance(1);
            })
            .join();
            let snap = c.shared().trace_snapshot();
            (
                snap.counters
                    .iter()
                    .map(|c| c.name.clone())
                    .collect::<Vec<_>>(),
                snap.to_metrics_jsonl(),
            )
        };
        // Counters are keyed, so recording order doesn't leak into exports.
        assert_eq!(rec(false).0, rec(true).0);
    }
}
