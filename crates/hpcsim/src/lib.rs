//! # hpcsim — a virtual-time HPC platform simulator
//!
//! The Colza paper runs on NERSC's Cori (a Cray XC40 with an Aries dragonfly
//! interconnect). This crate is the reproduction's stand-in for that
//! platform: a *virtual-time* distributed-system simulator in the tradition
//! of SimGrid and LogGOPSim.
//!
//! Every simulated process is an OS thread carrying its own **virtual
//! clock** (in nanoseconds). Real computation runs for real and charges the
//! clock with measured per-thread CPU time; communication advances clocks
//! according to a LogGP-style [`fabric::FabricModel`] with distinct
//! intra-node (shared-memory) and inter-node (network) parameters.
//! Timestamps piggyback on messages: a receiver's clock becomes
//! `max(local, departure + delay)`, so parallel schedules — who waits for
//! whom — are resolved faithfully even on a single-core host.
//!
//! The crate deliberately knows nothing about message *contents* or
//! protocols; those live in the `na` crate. Here we provide:
//!
//! * [`cluster::Cluster`] — nodes and simulated processes,
//! * [`process`] — the per-thread process context (identity, clock, RNG),
//! * [`clock`] — virtual clocks and compute charging,
//! * [`cpu`] — per-thread CPU time measurement,
//! * [`fabric`] — the link-delay model and calibrated presets,
//! * [`fault`] — deterministic fault injection on the fabric,
//! * [`trace`] — virtual-time spans/counters with timeline + metrics export,
//! * [`stats`] — small summary-statistics helpers used by the harnesses.

pub mod clock;
pub mod cluster;
pub mod cpu;
pub mod fabric;
pub mod fault;
pub mod process;
pub mod stats;
pub mod trace;

pub use clock::VClock;
pub use cluster::{Cluster, ClusterConfig, NodeId};
pub use fabric::{FabricModel, LinkModel, Xfer};
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultRecord, LinkFaults, SendFault};
pub use process::{current, with_current, Pid, ProcessCtx};
pub use trace::{TraceSnapshot, Tracer};

/// One second in virtual nanoseconds.
pub const SEC: u64 = 1_000_000_000;
/// One millisecond in virtual nanoseconds.
pub const MS: u64 = 1_000_000;
/// One microsecond in virtual nanoseconds.
pub const US: u64 = 1_000;
