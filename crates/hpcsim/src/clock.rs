//! Virtual clocks.
//!
//! Each simulated process owns a [`VClock`] counting virtual nanoseconds
//! since the start of the run. Only the owning thread *advances* its clock,
//! but other threads (harnesses, monitors) may *read* it, so the counter is
//! an atomic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cpu::CpuTimer;

/// A virtual clock in nanoseconds.
///
/// Cloning a `VClock` yields a handle to the *same* clock.
#[derive(Debug, Clone, Default)]
pub struct VClock {
    ns: Arc<AtomicU64>,
}

impl VClock {
    /// A new clock starting at virtual time `ns`.
    pub fn starting_at(ns: u64) -> Self {
        let c = Self::default();
        c.ns.store(ns, Ordering::Relaxed);
        c
    }

    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Advances the clock by `ns` and returns the new time.
    pub fn advance(&self, ns: u64) -> u64 {
        self.ns.fetch_add(ns, Ordering::Relaxed) + ns
    }

    /// Moves the clock forward to `t` if `t` is in the future; returns the
    /// resulting time. This is the message-receive merge rule
    /// `local = max(local, arrival)`.
    pub fn merge(&self, t: u64) -> u64 {
        let mut cur = self.ns.load(Ordering::Relaxed);
        loop {
            if t <= cur {
                return cur;
            }
            match self
                .ns
                .compare_exchange_weak(cur, t, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Runs `f`, charging this clock with the thread CPU time it consumed,
    /// scaled by `scale` (1.0 = charge measured time as-is).
    pub fn charge_compute_scaled<R>(&self, scale: f64, f: impl FnOnce() -> R) -> R {
        let timer = CpuTimer::start();
        let out = f();
        let ns = (timer.elapsed_ns() as f64 * scale) as u64;
        self.advance(ns);
        out
    }

    /// Runs `f`, charging this clock with the thread CPU time it consumed.
    pub fn charge_compute<R>(&self, f: impl FnOnce() -> R) -> R {
        self.charge_compute_scaled(1.0, f)
    }
}

/// Accumulates named virtual-time interval measurements; used by the
/// experiment harnesses to time `activate`/`stage`/`execute`/`deactivate`.
#[derive(Debug, Default, Clone)]
pub struct IntervalRecorder {
    samples: Vec<(String, u64)>,
}

impl IntervalRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `label` took `ns` of virtual time.
    pub fn record(&mut self, label: impl Into<String>, ns: u64) {
        self.samples.push((label.into(), ns));
    }

    /// Times the closure `f` on `clock` and records the elapsed virtual time.
    pub fn time<R>(&mut self, clock: &VClock, label: impl Into<String>, f: impl FnOnce() -> R) -> R {
        let before = clock.now();
        let out = f();
        self.record(label, clock.now().saturating_sub(before));
        out
    }

    /// All samples recorded so far.
    pub fn samples(&self) -> &[(String, u64)] {
        &self.samples
    }

    /// All samples for a given label, in recording order.
    pub fn of(&self, label: &str) -> Vec<u64> {
        self.samples
            .iter()
            .filter(|(l, _)| l == label)
            .map(|&(_, ns)| ns)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_and_now() {
        let c = VClock::default();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(5), 5);
        assert_eq!(c.advance(7), 12);
        assert_eq!(c.now(), 12);
    }

    #[test]
    fn merge_only_moves_forward() {
        let c = VClock::starting_at(100);
        assert_eq!(c.merge(50), 100);
        assert_eq!(c.merge(150), 150);
        assert_eq!(c.now(), 150);
    }

    #[test]
    fn clone_shares_state() {
        let a = VClock::default();
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.now(), 42);
    }

    #[test]
    fn charge_compute_advances() {
        let c = VClock::default();
        let out = c.charge_compute(|| {
            let mut x = 0u64;
            for i in 0..300_000 {
                x = x.wrapping_add(i * i);
            }
            std::hint::black_box(x)
        });
        std::hint::black_box(out);
        assert!(c.now() > 0);
    }

    #[test]
    fn recorder_collects_by_label() {
        let c = VClock::default();
        let mut r = IntervalRecorder::new();
        r.time(&c, "stage", || c.advance(10));
        r.time(&c, "execute", || c.advance(99));
        r.time(&c, "stage", || c.advance(20));
        assert_eq!(r.of("stage"), vec![10, 20]);
        assert_eq!(r.of("execute"), vec![99]);
        assert_eq!(r.samples().len(), 3);
    }

    #[test]
    fn merge_is_concurrent_safe() {
        let c = VClock::default();
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    c.merge(t * 1000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), 3999);
    }
}
