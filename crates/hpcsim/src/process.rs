//! Per-process context for simulated processes.
//!
//! Each simulated process runs on its own OS thread. The thread carries a
//! [`ProcessCtx`] in thread-local storage giving access to the process's
//! identity, virtual clock, node placement, deterministic RNG, and the
//! owning cluster's fabric model.

use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::clock::VClock;
use crate::cluster::{ClusterShared, NodeId};

/// Globally unique simulated-process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// The context of one simulated process.
pub struct ProcessCtx {
    pid: Pid,
    node: NodeId,
    name: String,
    clock: VClock,
    rng: Mutex<SmallRng>,
    cluster: Arc<ClusterShared>,
}

impl ProcessCtx {
    pub(crate) fn new(
        pid: Pid,
        node: NodeId,
        name: String,
        clock: VClock,
        seed: u64,
        cluster: Arc<ClusterShared>,
    ) -> Self {
        // Mix pid into the seed so every process has an independent but
        // reproducible stream.
        let seed = seed ^ pid.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Self {
            pid,
            node,
            name,
            clock,
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
            cluster,
        }
    }

    /// This process's id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The node this process is placed on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Human-readable process name (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This process's virtual clock.
    pub fn clock(&self) -> &VClock {
        &self.clock
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Advances the virtual clock by `ns`.
    pub fn advance(&self, ns: u64) {
        self.clock.advance(ns);
    }

    /// The owning cluster's shared state.
    pub fn cluster(&self) -> &Arc<ClusterShared> {
        &self.cluster
    }

    /// Runs `f`, charging this process's clock with its measured thread CPU
    /// time, scaled by the cluster's `compute_scale`.
    pub fn charge_compute<R>(&self, f: impl FnOnce() -> R) -> R {
        self.clock
            .charge_compute_scaled(self.cluster.compute_scale(), f)
    }

    /// A deterministic uniform draw in `[0, 1)`.
    pub fn rng_unit(&self) -> f64 {
        self.rng.lock().random::<f64>()
    }

    /// A deterministic uniform integer draw in `[0, n)`. Panics if `n == 0`.
    pub fn rng_below(&self, n: usize) -> usize {
        assert!(n > 0, "rng_below(0)");
        self.rng.lock().random_range(0..n)
    }
}

impl fmt::Debug for ProcessCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcessCtx")
            .field("pid", &self.pid)
            .field("node", &self.node)
            .field("name", &self.name)
            .field("vnow", &self.clock.now())
            .finish()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<ProcessCtx>>> = const { RefCell::new(None) };
}

/// Installs `ctx` as the current thread's process context for the duration
/// of `f`. Used by [`crate::cluster::Cluster::spawn`]; exposed for tests
/// that want to fake a context.
pub fn enter<R>(ctx: Arc<ProcessCtx>, f: impl FnOnce() -> R) -> R {
    CURRENT.with(|c| *c.borrow_mut() = Some(ctx));
    let out = f();
    CURRENT.with(|c| *c.borrow_mut() = None);
    out
}

/// The current simulated process's context.
///
/// # Panics
/// Panics if the calling thread is not a simulated process.
pub fn current() -> Arc<ProcessCtx> {
    try_current().expect("not running inside a simulated process")
}

/// The current context, or `None` when called from a plain thread.
pub fn try_current() -> Option<Arc<ProcessCtx>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Runs `f` with a reference to the current process context.
pub fn with_current<R>(f: impl FnOnce(&ProcessCtx) -> R) -> R {
    let ctx = current();
    f(&ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterConfig};

    #[test]
    fn no_context_outside_processes() {
        assert!(try_current().is_none());
    }

    #[test]
    fn context_is_visible_inside_process() {
        let cluster = Cluster::new(ClusterConfig::default());
        let h = cluster.spawn("worker", 2, || {
            let ctx = current();
            assert_eq!(ctx.node(), 2);
            assert_eq!(ctx.name(), "worker");
            ctx.pid()
        });
        let pid = h.join();
        assert!(pid.0 < 100);
        assert!(try_current().is_none());
    }

    #[test]
    fn rng_is_deterministic_per_pid() {
        let draws = |seed| {
            let cluster = Cluster::new(ClusterConfig {
                seed,
                ..Default::default()
            });
            cluster
                .spawn("r", 0, || {
                    let ctx = current();
                    (ctx.rng_unit(), ctx.rng_unit())
                })
                .join()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
    }

    #[test]
    fn rng_below_respects_bound() {
        let cluster = Cluster::new(ClusterConfig::default());
        cluster
            .spawn("r", 0, || {
                let ctx = current();
                for _ in 0..100 {
                    assert!(ctx.rng_below(3) < 3);
                }
            })
            .join();
    }
}
