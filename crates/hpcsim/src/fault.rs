//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] describes *what can go wrong* on the wire: per-link
//! message loss, duplication, extra delay and reordering, node-set
//! partitions, and node crashes at a virtual time. The plan is attached to
//! [`crate::cluster::ClusterConfig`] and consulted by the `na` layer on
//! every send.
//!
//! ## Determinism
//!
//! Every randomized decision is a pure hash of
//! `(plan seed, src pid, dst pid, per-link sequence number)` — no global
//! RNG is shared between links, so thread interleaving *across* links
//! cannot change any decision. As long as each link's send order is
//! deterministic (true for the sequential protocols the harnesses drive),
//! the same seed reproduces the exact same fault trace and virtual-time
//! trajectory. The injector records every triggered fault in a trace that
//! tests compare across runs.
//!
//! ## Scoping
//!
//! Randomized faults can be restricted to tag ranges (e.g. the margo RPC
//! plane) via [`FaultPlan::scope_tags`]. This models a real deployment in
//! which RPCs ride an unreliable datagram service while collectives use a
//! reliable transport — and it is what lets chaos tests inject loss into
//! the retry-capable RPC layer without deadlocking retry-free collectives.
//! Partitions and crashes are network-level and ignore the tag scope.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

use crate::cluster::NodeId;
use crate::process::Pid;

/// Per-link fault rates. Probabilities are in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Probability a message is silently dropped.
    pub drop: f64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Probability a message is delayed by an extra amount.
    pub delay: f64,
    /// Extra delay range (virtual ns, inclusive) when `delay` triggers.
    pub delay_ns: (u64, u64),
    /// Probability a message jumps the queue (reordering).
    pub reorder: f64,
}

impl Default for LinkFaults {
    fn default() -> Self {
        Self {
            drop: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            delay_ns: (0, 0),
            reorder: 0.0,
        }
    }
}

impl LinkFaults {
    fn any(&self) -> bool {
        self.drop > 0.0 || self.duplicate > 0.0 || self.delay > 0.0 || self.reorder > 0.0
    }
}

/// A rate override for one directed node pair.
#[derive(Debug, Clone, Copy)]
pub struct LinkRule {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Rates applied to messages on this link.
    pub faults: LinkFaults,
}

/// A partition between two node sets during a virtual-time window.
#[derive(Debug, Clone)]
pub struct Partition {
    /// One side of the cut.
    pub left: Vec<NodeId>,
    /// The other side.
    pub right: Vec<NodeId>,
    /// Virtual time the partition forms.
    pub from_ns: u64,
    /// Virtual time the partition heals (exclusive; `u64::MAX` = never).
    pub until_ns: u64,
}

impl Partition {
    fn cuts(&self, a: NodeId, b: NodeId, now_ns: u64) -> bool {
        if now_ns < self.from_ns || now_ns >= self.until_ns {
            return false;
        }
        (self.left.contains(&a) && self.right.contains(&b))
            || (self.left.contains(&b) && self.right.contains(&a))
    }
}

/// A crash triggered by the node's own send activity rather than a
/// virtual time: after the node has delivered `after` messages whose tags
/// fall in `[tag_lo, tag_hi]`, the next matching send trips the crash —
/// that send and *all* subsequent outbound traffic from the node are
/// dropped (fail-silent), while inbound delivery continues (a crashed
/// mailbox simply never answers). Because the trigger counts only the
/// node's own sends — a single deterministic stream for the sequential
/// protocols the harnesses drive — the crash lands at the exact same
/// protocol step every run, letting chaos tests kill a server *inside a
/// specific MoNA collective round* reproducibly.
#[derive(Debug, Clone, Copy)]
pub struct CrashAfterSends {
    /// The node that crashes.
    pub node: NodeId,
    /// Inclusive lower bound of counted tags.
    pub tag_lo: u64,
    /// Inclusive upper bound of counted tags.
    pub tag_hi: u64,
    /// How many matching sends are delivered before the crash.
    pub after: u64,
}

/// The full fault schedule for a cluster. `Default` injects nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for all fault decisions (independent of the cluster seed).
    pub seed: u64,
    /// Default rates applied to every link.
    pub default_faults: LinkFaults,
    /// Per-link overrides (first match wins).
    pub links: Vec<LinkRule>,
    /// Scheduled partitions.
    pub partitions: Vec<Partition>,
    /// Nodes that crash at a virtual time: traffic to/from them is dropped
    /// from that point on (detection is the failure detector's job).
    pub crashes: Vec<(NodeId, u64)>,
    /// Nodes that crash after sending N messages in a tag range (first
    /// rule per node wins).
    pub crash_after: Vec<CrashAfterSends>,
    /// Inclusive tag ranges randomized faults apply to (empty = all tags).
    pub tag_ranges: Vec<(u64, u64)>,
}

impl FaultPlan {
    /// An empty plan with the given decision seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Default::default()
        }
    }

    /// Sets the default per-link drop probability.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.default_faults.drop = p;
        self
    }

    /// Sets the default per-link duplication probability.
    pub fn with_duplication(mut self, p: f64) -> Self {
        self.default_faults.duplicate = p;
        self
    }

    /// Sets the default extra-delay probability and range.
    pub fn with_delay(mut self, p: f64, min_ns: u64, max_ns: u64) -> Self {
        self.default_faults.delay = p;
        self.default_faults.delay_ns = (min_ns, max_ns.max(min_ns));
        self
    }

    /// Sets the default reorder probability.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.default_faults.reorder = p;
        self
    }

    /// Adds a per-link rate override.
    pub fn with_link(mut self, src: NodeId, dst: NodeId, faults: LinkFaults) -> Self {
        self.links.push(LinkRule { src, dst, faults });
        self
    }

    /// Restricts randomized faults to an inclusive tag range. May be called
    /// repeatedly to add ranges.
    pub fn scope_tags(mut self, lo: u64, hi: u64) -> Self {
        self.tag_ranges.push((lo, hi));
        self
    }

    /// Schedules a partition between two node sets for a virtual-time
    /// window.
    pub fn with_partition(
        mut self,
        left: Vec<NodeId>,
        right: Vec<NodeId>,
        from_ns: u64,
        until_ns: u64,
    ) -> Self {
        self.partitions.push(Partition {
            left,
            right,
            from_ns,
            until_ns,
        });
        self
    }

    /// Schedules a node crash at a virtual time.
    pub fn with_crash(mut self, node: NodeId, at_ns: u64) -> Self {
        self.crashes.push((node, at_ns));
        self
    }

    /// Schedules a crash after `node` has delivered `after` sends with
    /// tags in `[tag_lo, tag_hi]` (see [`CrashAfterSends`]).
    pub fn with_crash_after_sends(
        mut self,
        node: NodeId,
        tag_lo: u64,
        tag_hi: u64,
        after: u64,
    ) -> Self {
        self.crash_after.push(CrashAfterSends {
            node,
            tag_lo,
            tag_hi,
            after,
        });
        self
    }

    fn any_randomized(&self) -> bool {
        self.default_faults.any() || self.links.iter().any(|l| l.faults.any())
    }

    fn in_scope(&self, tag: u64) -> bool {
        self.tag_ranges.is_empty() || self.tag_ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(&tag))
    }

    fn rates_for(&self, src: NodeId, dst: NodeId) -> LinkFaults {
        self.links
            .iter()
            .find(|l| l.src == src && l.dst == dst)
            .map(|l| l.faults)
            .unwrap_or(self.default_faults)
    }
}

/// The injector's verdict for one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendFault {
    /// Whether the message reaches the destination mailbox at all.
    pub deliver: bool,
    /// Extra virtual delay added to the arrival time.
    pub extra_delay_ns: u64,
    /// Whether a second copy is delivered.
    pub duplicate: bool,
    /// Whether the message jumps ahead of queued messages.
    pub reorder: bool,
}

impl SendFault {
    /// Fault-free delivery.
    pub const CLEAN: SendFault = SendFault {
        deliver: true,
        extra_delay_ns: 0,
        duplicate: false,
        reorder: false,
    };
}

/// What kind of fault fired (trace records).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// Random per-link loss.
    Drop,
    /// Dropped because an endpoint node had crashed.
    Crash,
    /// Dropped by an active partition.
    Partition,
    /// Extra delay injected.
    Delay,
    /// Message duplicated.
    Duplicate,
    /// Message reordered.
    Reorder,
}

/// One triggered fault, as recorded in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultRecord {
    /// Sender pid.
    pub src: u64,
    /// Destination pid.
    pub dst: u64,
    /// In-scope sequence number of the message on the (src, dst) link.
    pub seq: u64,
    /// What happened.
    pub kind: FaultKind,
    /// Injected delay (zero unless `kind == Delay`).
    pub delay_ns: u64,
}

/// Runtime state of the fault plan: per-link counters, the fault trace,
/// and dynamically added partitions (for tests that partition/heal at
/// explicit points rather than virtual times).
pub struct FaultInjector {
    plan: FaultPlan,
    randomized: bool,
    scheduled: AtomicBool,
    dynamic_active: AtomicBool,
    counters: Mutex<HashMap<(u64, u64), u64>>,
    /// Per-node (matching sends delivered, tripped) for `crash_after`.
    crash_state: Mutex<HashMap<NodeId, (u64, bool)>>,
    /// Whether any send-count crash rule exists (plan or runtime).
    has_crash_after: AtomicBool,
    /// Send-count crash rules installed after construction (harnesses
    /// that pick the victim only once placement is known).
    dynamic_crash_after: Mutex<Vec<CrashAfterSends>>,
    dynamic_partitions: Mutex<Vec<Partition>>,
    trace: Mutex<Vec<FaultRecord>>,
}

impl FaultInjector {
    /// Builds the runtime injector for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        let randomized = plan.any_randomized();
        let scheduled = !plan.partitions.is_empty()
            || !plan.crashes.is_empty()
            || !plan.crash_after.is_empty();
        let has_crash_after = !plan.crash_after.is_empty();
        Self {
            randomized,
            scheduled: AtomicBool::new(scheduled),
            dynamic_active: AtomicBool::new(false),
            counters: Mutex::new(HashMap::new()),
            crash_state: Mutex::new(HashMap::new()),
            has_crash_after: AtomicBool::new(has_crash_after),
            dynamic_crash_after: Mutex::new(Vec::new()),
            dynamic_partitions: Mutex::new(Vec::new()),
            trace: Mutex::new(Vec::new()),
            plan,
        }
    }

    /// The configured plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether any fault could possibly fire — the fast path for
    /// fault-free runs skips all bookkeeping.
    pub fn is_active(&self) -> bool {
        self.randomized
            || self.scheduled.load(Ordering::Acquire)
            || self.dynamic_active.load(Ordering::Acquire)
    }

    /// Immediately partitions two node sets (until healed).
    pub fn partition_now(&self, left: &[NodeId], right: &[NodeId]) {
        self.dynamic_partitions.lock().push(Partition {
            left: left.to_vec(),
            right: right.to_vec(),
            from_ns: 0,
            until_ns: u64::MAX,
        });
        self.dynamic_active.store(true, Ordering::Release);
    }

    /// Heals every dynamically added partition.
    pub fn heal_partitions(&self) {
        self.dynamic_partitions.lock().clear();
        self.dynamic_active.store(false, Ordering::Release);
    }

    /// Whether `node` has crashed by virtual time `now_ns` per the plan.
    pub fn is_crashed(&self, node: NodeId, now_ns: u64) -> bool {
        self.plan
            .crashes
            .iter()
            .any(|&(n, at)| n == node && now_ns >= at)
    }

    /// Whether a [`CrashAfterSends`] rule for `node` has already tripped.
    /// Harnesses poll this to learn the victim is down before driving the
    /// failure detector.
    pub fn crash_tripped(&self, node: NodeId) -> bool {
        self.crash_state.lock().get(&node).is_some_and(|&(_, t)| t)
    }

    /// Installs a send-count crash rule at runtime. The counterpart of
    /// [`FaultPlan::with_crash_after_sends`] for harnesses that can only
    /// pick the victim after launch — e.g. "the primary of block 0",
    /// known once the placement ring over the live view exists.
    pub fn crash_after_sends_now(&self, node: NodeId, tag_lo: u64, tag_hi: u64, after: u64) {
        self.dynamic_crash_after.lock().push(CrashAfterSends {
            node,
            tag_lo,
            tag_hi,
            after,
        });
        self.has_crash_after.store(true, Ordering::Release);
        self.scheduled.store(true, Ordering::Release);
    }

    /// Send-count crash bookkeeping: returns `true` when this outbound
    /// message from `src_node` must be dropped — either the node already
    /// tripped, or this very send is the one past the rule's budget (the
    /// trigger send itself is lost; the node died producing it).
    fn crashed_by_sends(&self, src_node: NodeId, tag: u64) -> bool {
        if !self.has_crash_after.load(Ordering::Acquire) {
            return false;
        }
        let mut st = self.crash_state.lock();
        let entry = st.entry(src_node).or_insert((0, false));
        if entry.1 {
            return true;
        }
        let dynamic = self.dynamic_crash_after.lock();
        let Some(rule) = self
            .plan
            .crash_after
            .iter()
            .chain(dynamic.iter())
            .find(|r| r.node == src_node)
        else {
            return false;
        };
        let rule = *rule;
        drop(dynamic);
        if !(rule.tag_lo..=rule.tag_hi).contains(&tag) {
            return false;
        }
        if entry.0 >= rule.after {
            entry.1 = true;
            true
        } else {
            entry.0 += 1;
            false
        }
    }

    /// Whether traffic between two nodes is currently cut by a partition.
    pub fn partitioned(&self, a: NodeId, b: NodeId, now_ns: u64) -> bool {
        self.plan.partitions.iter().any(|p| p.cuts(a, b, now_ns))
            || (self.dynamic_active.load(Ordering::Acquire)
                && self.dynamic_partitions.lock().iter().any(|p| p.cuts(a, b, now_ns)))
    }

    /// Decides the fate of one message. Called by the `na` layer with the
    /// sender's virtual departure time.
    pub fn on_send(
        &self,
        src: Pid,
        dst: Pid,
        src_node: NodeId,
        dst_node: NodeId,
        tag: u64,
        now_ns: u64,
    ) -> SendFault {
        // Network-level faults first: they ignore the tag scope.
        if self.is_crashed(src_node, now_ns) || self.is_crashed(dst_node, now_ns) {
            self.record(src, dst, 0, FaultKind::Crash, 0);
            return SendFault {
                deliver: false,
                ..SendFault::CLEAN
            };
        }
        // Send-count crashes cut only the victim's *outbound* traffic; its
        // mailbox keeps accepting (and ignoring) deliveries, so survivors'
        // send streams — and with them the per-link fault seqs — are
        // unperturbed by when exactly the victim died.
        if self.crashed_by_sends(src_node, tag) {
            self.record(src, dst, 0, FaultKind::Crash, 0);
            return SendFault {
                deliver: false,
                ..SendFault::CLEAN
            };
        }
        if self.partitioned(src_node, dst_node, now_ns) {
            self.record(src, dst, 0, FaultKind::Partition, 0);
            return SendFault {
                deliver: false,
                ..SendFault::CLEAN
            };
        }
        if !self.randomized || !self.plan.in_scope(tag) {
            return SendFault::CLEAN;
        }
        let rates = self.plan.rates_for(src_node, dst_node);
        if !rates.any() {
            return SendFault::CLEAN;
        }
        // Only in-scope messages on faulty links consume a sequence
        // number, so out-of-scope traffic (whose volume may vary run to
        // run) cannot perturb the decision stream.
        let seq = {
            let mut c = self.counters.lock();
            let ctr = c.entry((src.0, dst.0)).or_insert(0);
            let s = *ctr;
            *ctr += 1;
            s
        };
        if draw(self.plan.seed, src.0, dst.0, seq, SALT_DROP) < rates.drop {
            self.record(src, dst, seq, FaultKind::Drop, 0);
            return SendFault {
                deliver: false,
                ..SendFault::CLEAN
            };
        }
        let mut fault = SendFault::CLEAN;
        if draw(self.plan.seed, src.0, dst.0, seq, SALT_DELAY) < rates.delay {
            let (lo, hi) = rates.delay_ns;
            let span = hi - lo + 1;
            let extra = lo + mix(&[self.plan.seed, src.0, dst.0, seq, SALT_DELAY_AMT]) % span;
            fault.extra_delay_ns = extra;
            self.record(src, dst, seq, FaultKind::Delay, extra);
        }
        if draw(self.plan.seed, src.0, dst.0, seq, SALT_DUP) < rates.duplicate {
            fault.duplicate = true;
            self.record(src, dst, seq, FaultKind::Duplicate, 0);
        }
        if draw(self.plan.seed, src.0, dst.0, seq, SALT_REORDER) < rates.reorder {
            fault.reorder = true;
            self.record(src, dst, seq, FaultKind::Reorder, 0);
        }
        fault
    }

    /// The fault trace, sorted by `(src, dst, seq, kind)` so it is
    /// comparable across runs regardless of thread interleaving.
    pub fn trace(&self) -> Vec<FaultRecord> {
        let mut t = self.trace.lock().clone();
        t.sort_unstable();
        t
    }

    /// Number of faults triggered so far.
    pub fn fault_count(&self) -> usize {
        self.trace.lock().len()
    }

    fn record(&self, src: Pid, dst: Pid, seq: u64, kind: FaultKind, delay_ns: u64) {
        self.trace.lock().push(FaultRecord {
            src: src.0,
            dst: dst.0,
            seq,
            kind,
            delay_ns,
        });
    }
}

const SALT_DROP: u64 = 0xD509;
const SALT_DELAY: u64 = 0xDE1A;
const SALT_DELAY_AMT: u64 = 0xDE1B;
const SALT_DUP: u64 = 0xD0B1;
const SALT_REORDER: u64 = 0x5EC2;

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix(vals: &[u64]) -> u64 {
    let mut h = 0x243F_6A88_85A3_08D3u64; // pi, as tradition demands
    for &v in vals {
        h = splitmix(h ^ v);
    }
    h
}

/// A uniform draw in `[0, 1)` from the decision hash.
fn draw(seed: u64, src: u64, dst: u64, seq: u64, salt: u64) -> f64 {
    (mix(&[seed, src, dst, seq, salt]) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(n: u64) -> Pid {
        Pid(n)
    }

    #[test]
    fn default_plan_is_inert() {
        let inj = FaultInjector::new(FaultPlan::default());
        assert!(!inj.is_active());
        assert_eq!(inj.on_send(p(0), p(1), 0, 1, 7, 0), SendFault::CLEAN);
        assert_eq!(inj.fault_count(), 0);
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let run = |seed| {
            let inj = FaultInjector::new(
                FaultPlan::seeded(seed)
                    .with_loss(0.3)
                    .with_duplication(0.2)
                    .with_delay(0.4, 10, 100)
                    .with_reorder(0.1),
            );
            for s in 0..200u64 {
                inj.on_send(p(0), p(1), 0, 1, 7, s);
                inj.on_send(p(1), p(0), 1, 0, 7, s);
            }
            inj.trace()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn decisions_are_independent_of_cross_link_interleaving() {
        // Sending A→B then C→D must give the same decisions as the
        // reverse interleaving: links have independent counters.
        let plan = || FaultPlan::seeded(9).with_loss(0.5);
        let a = FaultInjector::new(plan());
        let f1 = a.on_send(p(0), p(1), 0, 1, 7, 0);
        let f2 = a.on_send(p(2), p(3), 2, 3, 7, 0);
        let b = FaultInjector::new(plan());
        let g2 = b.on_send(p(2), p(3), 2, 3, 7, 0);
        let g1 = b.on_send(p(0), p(1), 0, 1, 7, 0);
        assert_eq!(f1, g1);
        assert_eq!(f2, g2);
    }

    #[test]
    fn loss_rate_is_roughly_honored() {
        let inj = FaultInjector::new(FaultPlan::seeded(1).with_loss(0.25));
        let n = 4000;
        let dropped = (0..n)
            .filter(|_| !inj.on_send(p(0), p(1), 0, 1, 7, 0).deliver)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((0.20..0.30).contains(&rate), "observed loss {rate}");
    }

    #[test]
    fn delay_stays_in_range() {
        let inj = FaultInjector::new(FaultPlan::seeded(2).with_delay(1.0, 50, 60));
        for _ in 0..200 {
            let f = inj.on_send(p(0), p(1), 0, 1, 7, 0);
            assert!((50..=60).contains(&f.extra_delay_ns));
        }
    }

    #[test]
    fn tag_scope_limits_randomized_faults() {
        let inj = FaultInjector::new(FaultPlan::seeded(3).with_loss(1.0).scope_tags(100, 200));
        assert!(inj.on_send(p(0), p(1), 0, 1, 99, 0).deliver);
        assert!(!inj.on_send(p(0), p(1), 0, 1, 150, 0).deliver);
        assert!(inj.on_send(p(0), p(1), 0, 1, 201, 0).deliver);
    }

    #[test]
    fn link_rules_override_defaults() {
        let inj = FaultInjector::new(FaultPlan::seeded(4).with_link(
            0,
            1,
            LinkFaults {
                drop: 1.0,
                ..Default::default()
            },
        ));
        assert!(!inj.on_send(p(0), p(1), 0, 1, 7, 0).deliver);
        assert!(inj.on_send(p(1), p(0), 1, 0, 7, 0).deliver, "other direction clean");
    }

    #[test]
    fn scheduled_partition_cuts_cross_traffic_during_window() {
        let inj = FaultInjector::new(FaultPlan::seeded(5).with_partition(
            vec![0],
            vec![1, 2],
            100,
            200,
        ));
        assert!(inj.on_send(p(0), p(1), 0, 1, 7, 50).deliver, "before window");
        assert!(!inj.on_send(p(0), p(1), 0, 1, 7, 150).deliver, "cut in window");
        assert!(!inj.on_send(p(1), p(0), 1, 0, 7, 150).deliver, "both directions");
        assert!(inj.on_send(p(1), p(2), 1, 2, 7, 150).deliver, "same side flows");
        assert!(inj.on_send(p(0), p(1), 0, 1, 7, 250).deliver, "healed");
    }

    #[test]
    fn dynamic_partition_and_heal() {
        let inj = FaultInjector::new(FaultPlan::default());
        assert!(!inj.is_active());
        inj.partition_now(&[0], &[1]);
        assert!(inj.is_active());
        assert!(!inj.on_send(p(0), p(1), 0, 1, 7, 0).deliver);
        inj.heal_partitions();
        assert!(inj.on_send(p(0), p(1), 0, 1, 7, 0).deliver);
    }

    #[test]
    fn crash_drops_traffic_after_the_virtual_time() {
        let inj = FaultInjector::new(FaultPlan::seeded(6).with_crash(1, 1000));
        assert!(inj.on_send(p(0), p(1), 0, 1, 7, 999).deliver);
        assert!(!inj.on_send(p(0), p(1), 0, 1, 7, 1000).deliver, "to crashed");
        assert!(!inj.on_send(p(1), p(0), 1, 0, 7, 1000).deliver, "from crashed");
        assert!(inj.is_crashed(1, 1000));
        assert!(!inj.is_crashed(0, 1000));
    }

    #[test]
    fn crash_after_sends_trips_on_the_matching_send_budget() {
        let inj = FaultInjector::new(FaultPlan::seeded(7).with_crash_after_sends(0, 100, 200, 2));
        assert!(inj.is_active());
        // Out-of-range tags do not count toward the budget.
        assert!(inj.on_send(p(0), p(1), 0, 1, 50, 0).deliver);
        assert!(!inj.crash_tripped(0));
        // Two matching sends are delivered...
        assert!(inj.on_send(p(0), p(1), 0, 1, 150, 0).deliver);
        assert!(inj.on_send(p(0), p(2), 0, 2, 199, 0).deliver);
        assert!(!inj.crash_tripped(0));
        // ...the third matching send trips the crash and is itself lost.
        assert!(!inj.on_send(p(0), p(1), 0, 1, 150, 0).deliver);
        assert!(inj.crash_tripped(0));
        // After the trip, ALL outbound from the node is dropped — even
        // tags outside the counted range (SSG ping replies die too).
        assert!(!inj.on_send(p(0), p(1), 0, 1, 50, 0).deliver);
        // Inbound to the zombie keeps flowing: survivors' send streams
        // are not perturbed.
        assert!(inj.on_send(p(1), p(0), 1, 0, 150, 0).deliver);
        // Every drop is a Crash record with seq 0.
        assert!(inj
            .trace()
            .iter()
            .all(|r| r.kind == FaultKind::Crash && r.seq == 0));
        assert_eq!(inj.fault_count(), 2);
    }

    #[test]
    fn crash_after_sends_does_not_consume_randomized_seqs() {
        // The victim's counted sends must not advance the per-link fault
        // seq stream other links' decisions hash on.
        let base = FaultInjector::new(FaultPlan::seeded(11).with_loss(0.5));
        let with_crash = FaultInjector::new(
            FaultPlan::seeded(11)
                .with_loss(0.5)
                .with_crash_after_sends(9, 0, u64::MAX, 0),
        );
        for _ in 0..50 {
            let a = base.on_send(p(0), p(1), 0, 1, 7, 0);
            let b = with_crash.on_send(p(0), p(1), 0, 1, 7, 0);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn trace_is_sorted_and_reproducible() {
        let run = || {
            let inj = FaultInjector::new(FaultPlan::seeded(8).with_loss(0.5));
            // Interleave two links in opposite orders; the sorted trace
            // must come out identical.
            inj.on_send(p(0), p(1), 0, 1, 7, 0);
            inj.on_send(p(1), p(0), 1, 0, 7, 0);
            inj.on_send(p(0), p(1), 0, 1, 7, 0);
            inj.trace()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(a, sorted);
    }
}
