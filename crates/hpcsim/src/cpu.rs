//! Per-thread CPU time measurement.
//!
//! On the single-core hosts this reproduction targets, wall-clock time is a
//! meaningless measure of a simulated process's compute phase: dozens of
//! simulated ranks share the core and preempt each other. We therefore
//! charge virtual clocks with `CLOCK_THREAD_CPUTIME_ID`, which only ticks
//! while *this* thread is scheduled.

/// Returns this thread's consumed CPU time in nanoseconds.
///
/// This is the only use of `libc` in the workspace (see DESIGN.md §3).
pub fn thread_cpu_ns() -> u64 {
    let mut ts = libc::timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: `ts` is a valid, writable timespec and the clock id is a
    // compile-time constant supported on all Linux targets.
    let rc = unsafe { libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    debug_assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID) failed");
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

/// A stopwatch over this thread's CPU time.
#[derive(Debug, Clone, Copy)]
pub struct CpuTimer {
    start: u64,
}

impl CpuTimer {
    /// Starts a new stopwatch at the current thread CPU time.
    pub fn start() -> Self {
        Self {
            start: thread_cpu_ns(),
        }
    }

    /// CPU nanoseconds consumed by this thread since [`CpuTimer::start`].
    pub fn elapsed_ns(&self) -> u64 {
        thread_cpu_ns().saturating_sub(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_is_monotonic() {
        let a = thread_cpu_ns();
        // Burn a little CPU so the clock must advance.
        let mut x = 0u64;
        for i in 0..200_000u64 {
            x = x.wrapping_add(i).rotate_left(7);
        }
        std::hint::black_box(x);
        let b = thread_cpu_ns();
        assert!(b >= a);
    }

    #[test]
    fn timer_measures_work() {
        let t = CpuTimer::start();
        let mut x = 1u64;
        for i in 1..500_000u64 {
            x = x.wrapping_mul(i) ^ i;
        }
        std::hint::black_box(x);
        assert!(t.elapsed_ns() > 0);
    }

    #[test]
    fn sleeping_does_not_charge_cpu_time() {
        let t = CpuTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(30));
        // Sleeping threads are descheduled; allow generous slack for the
        // syscall overhead itself.
        assert!(t.elapsed_ns() < 20_000_000, "sleep charged CPU time");
    }
}
