//! The fabric delay model.
//!
//! A LogGP-flavoured model: every transfer between two simulated processes
//! pays `latency + bytes * ns_per_byte` on the link connecting their nodes,
//! plus a per-message CPU overhead charged to both endpoints. Intra-node
//! transfers use the shared-memory link; inter-node transfers use the
//! network link. RDMA transfers pay a one-time setup cost (registration /
//! handshake at the initiator) but stream at full link bandwidth with no
//! per-fragment CPU involvement, which is what makes the eager→RDMA switch
//! profitable for large messages.
//!
//! The presets in [`presets`] are calibrated against the paper's own
//! microbenchmarks on Cori (Tables I and II); see EXPERIMENTS.md for the
//! calibration notes.

use crate::cluster::NodeId;

/// Transfer class, selecting which cost components apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Xfer {
    /// Eagerly copied message (header + payload through the messaging path).
    Eager,
    /// One-sided RDMA get/put on registered memory.
    Rdma,
    /// Small control message (RPC header, ack, rendezvous handshake).
    Control,
}

/// Cost parameters of one link type.
#[derive(Debug, Clone, Copy)]
pub struct LinkModel {
    /// One-way latency in nanoseconds.
    pub latency_ns: u64,
    /// Transfer cost per byte, in picoseconds (1 GB/s == 1000 ps/byte).
    pub ps_per_byte: u64,
}

impl LinkModel {
    /// Serialized transfer time for `bytes` over this link.
    pub fn transfer_ns(&self, bytes: usize) -> u64 {
        self.latency_ns + (bytes as u64 * self.ps_per_byte) / 1000
    }

    /// Convenience constructor from gigabytes-per-second bandwidth.
    pub fn from_gbps(latency_ns: u64, gb_per_s: f64) -> Self {
        Self {
            latency_ns,
            ps_per_byte: (1000.0 / gb_per_s) as u64,
        }
    }
}

/// The complete fabric model for a cluster.
#[derive(Debug, Clone, Copy)]
pub struct FabricModel {
    /// Inter-node (network) link.
    pub net: LinkModel,
    /// Intra-node (shared-memory) link.
    pub shm: LinkModel,
    /// CPU overhead charged per eager/control message at each endpoint
    /// (matching, queueing, header processing).
    pub per_msg_cpu_ns: u64,
    /// One-time initiator-side cost of an RDMA operation (memory
    /// registration lookup + doorbell).
    pub rdma_setup_ns: u64,
    /// Additional per-byte cost (picoseconds) of copying an eager payload
    /// through bounce buffers; RDMA avoids it.
    pub eager_copy_ps_per_byte: u64,
}

impl FabricModel {
    /// Delay, in virtual ns, for a transfer of `bytes` from a process on
    /// `src` to a process on `dst` with transfer class `class`.
    ///
    /// The returned value is the *wire* component: time between departure
    /// and arrival. Endpoint CPU overheads are returned separately by
    /// [`FabricModel::endpoint_cpu_ns`] so callers charge them to the right
    /// clock.
    pub fn wire_ns(&self, src: NodeId, dst: NodeId, bytes: usize, class: Xfer) -> u64 {
        let link = if src == dst { &self.shm } else { &self.net };
        match class {
            Xfer::Control => link.latency_ns,
            Xfer::Eager => {
                link.transfer_ns(bytes) + (bytes as u64 * self.eager_copy_ps_per_byte) / 1000
            }
            Xfer::Rdma => self.rdma_setup_ns + link.transfer_ns(bytes),
        }
    }

    /// CPU time charged to an endpoint for sending or receiving one message
    /// of the given class.
    pub fn endpoint_cpu_ns(&self, class: Xfer) -> u64 {
        match class {
            Xfer::Eager | Xfer::Control => self.per_msg_cpu_ns,
            // RDMA progress is offloaded to the NIC; the endpoint only pays
            // a completion-processing sliver.
            Xfer::Rdma => self.per_msg_cpu_ns / 4,
        }
    }

    /// A zero-cost fabric: every transfer is instantaneous. Used by unit
    /// tests that only care about protocol correctness.
    pub fn zero() -> Self {
        Self {
            net: LinkModel {
                latency_ns: 0,
                ps_per_byte: 0,
            },
            shm: LinkModel {
                latency_ns: 0,
                ps_per_byte: 0,
            },
            per_msg_cpu_ns: 0,
            rdma_setup_ns: 0,
            eager_copy_ps_per_byte: 0,
        }
    }
}

impl Default for FabricModel {
    fn default() -> Self {
        presets::aries()
    }
}

/// Calibrated fabric presets.
pub mod presets {
    use super::*;

    /// Cray Aries (Cori Haswell) calibration.
    ///
    /// Derived from the paper's Table I: 1000 small (8 B) Cray-mpich
    /// send/recv round trips take 1.163 ms, i.e. ~580 ns one-way per
    /// message including software overhead. Aries hardware latency is
    /// ~400 ns; we attribute the remainder to per-message CPU overhead.
    /// The effective large-message bandwidth implied by Table I's 512 KiB
    /// Cray-mpich row is ~19 GB/s (bidirectional traffic over the NIC).
    pub fn aries() -> FabricModel {
        FabricModel {
            net: LinkModel::from_gbps(400, 19.0),
            shm: LinkModel::from_gbps(90, 40.0),
            per_msg_cpu_ns: 90,
            rdma_setup_ns: 900,
            eager_copy_ps_per_byte: 150,
        }
    }

    /// Job-launch cost model for the static-restart baseline of Fig. 4.
    /// `srun` start-up on a busy Cray front end is seconds-scale and highly
    /// variable; SWIM-based joining avoids all of it except daemon start.
    pub fn launch() -> LaunchModel {
        LaunchModel {
            srun_min_ns: 2 * crate::SEC,
            srun_max_ns: 25 * crate::SEC,
            daemon_init_ns: 1_200 * crate::MS,
            bootstrap_per_proc_ns: 18 * crate::MS,
        }
    }
}

/// Cost model for launching staging daemons through the resource manager.
#[derive(Debug, Clone, Copy)]
pub struct LaunchModel {
    /// Minimum `srun`/launcher overhead.
    pub srun_min_ns: u64,
    /// Maximum `srun`/launcher overhead (uniformly sampled).
    pub srun_max_ns: u64,
    /// Fixed per-daemon initialization (binary load, transports up).
    pub daemon_init_ns: u64,
    /// Per-process cost of the PMI-style bootstrap exchange when starting a
    /// whole group from scratch.
    pub bootstrap_per_proc_ns: u64,
}

impl LaunchModel {
    /// Samples a launcher overhead using the provided RNG draw in `[0,1)`.
    pub fn sample_srun_ns(&self, unit: f64) -> u64 {
        let span = self.srun_max_ns.saturating_sub(self.srun_min_ns);
        self.srun_min_ns + (span as f64 * unit) as u64
    }

    /// Cost of cold-starting a staging area of `n` processes.
    pub fn cold_start_ns(&self, n: usize, unit: f64) -> u64 {
        self.sample_srun_ns(unit) + self.daemon_init_ns + self.bootstrap_per_proc_ns * n as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fabric_costs_nothing() {
        let f = FabricModel::zero();
        assert_eq!(f.wire_ns(0, 1, 1 << 20, Xfer::Eager), 0);
        assert_eq!(f.endpoint_cpu_ns(Xfer::Eager), 0);
    }

    #[test]
    fn intra_node_is_cheaper_than_inter_node() {
        let f = presets::aries();
        let local = f.wire_ns(3, 3, 4096, Xfer::Eager);
        let remote = f.wire_ns(3, 4, 4096, Xfer::Eager);
        assert!(local < remote, "shm {local} !< net {remote}");
    }

    #[test]
    fn rdma_beats_eager_for_large_messages() {
        let f = presets::aries();
        let big = 512 * 1024;
        assert!(f.wire_ns(0, 1, big, Xfer::Rdma) < f.wire_ns(0, 1, big, Xfer::Eager));
        // ... but not for tiny ones, because of the setup cost.
        assert!(f.wire_ns(0, 1, 8, Xfer::Rdma) > f.wire_ns(0, 1, 8, Xfer::Eager));
    }

    #[test]
    fn bandwidth_term_scales_linearly() {
        let l = LinkModel::from_gbps(0, 1.0); // 1 GB/s == 1 ns/byte
        assert_eq!(l.transfer_ns(1000), 1000);
        assert_eq!(l.transfer_ns(2000), 2000);
    }

    #[test]
    fn launch_model_grows_with_group_size() {
        let l = presets::launch();
        assert!(l.cold_start_ns(16, 0.5) > l.cold_start_ns(1, 0.5));
        assert!(l.sample_srun_ns(0.0) <= l.sample_srun_ns(0.999));
    }

    #[test]
    fn small_message_calibration_matches_paper_order() {
        // One eager 8-byte hop plus two endpoint overheads should land near
        // the ~580 ns per-message figure implied by Table I's first row.
        let f = presets::aries();
        let per_msg = f.wire_ns(0, 1, 8, Xfer::Eager) + 2 * f.endpoint_cpu_ns(Xfer::Eager);
        assert!(
            (400..900).contains(&per_msg),
            "calibration drifted: {per_msg} ns"
        );
    }
}
