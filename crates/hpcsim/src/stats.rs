//! Small summary-statistics helpers used by the experiment harnesses.

/// Summary statistics over a sample of `u64` measurements (virtual ns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Median (lower median for even sizes).
    pub median: u64,
}

impl Summary {
    /// Computes summary statistics; returns `None` for an empty sample.
    pub fn of(samples: &[u64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let var = samples
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        Some(Self {
            n,
            min,
            max,
            mean,
            stddev: var.sqrt(),
            median: sorted[(n - 1) / 2],
        })
    }
}

/// Formats virtual nanoseconds as a human-friendly string.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Formats a byte count as a human-friendly string (KiB/MiB/GiB).
pub fn fmt_bytes(b: u64) -> String {
    const KIB: u64 = 1024;
    const MIB: u64 = KIB * 1024;
    const GIB: u64 = MIB * 1024;
    if b >= GIB {
        format!("{:.2} GiB", b as f64 / GIB as f64)
    } else if b >= MIB {
        format!("{:.2} MiB", b as f64 / MIB as f64)
    } else if b >= KIB {
        format!("{:.2} KiB", b as f64 / KIB as f64)
    } else {
        format!("{b} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_has_no_summary() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[5, 5, 5, 5]).unwrap();
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 5);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 5);
    }

    #[test]
    fn summary_basic_values() {
        let s = Summary::of(&[1, 2, 3, 4, 10]).unwrap();
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 10);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.median, 3);
        assert!(s.stddev > 3.0 && s.stddev < 3.5);
    }

    #[test]
    fn ns_formatting_picks_units() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.500 us");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_500_000_000), "3.500 s");
    }

    #[test]
    fn byte_formatting_picks_units() {
        assert_eq!(fmt_bytes(100), "100 B");
        assert_eq!(fmt_bytes(2048), "2.00 KiB");
        assert_eq!(fmt_bytes(8 * 1024 * 1024), "8.00 MiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024 * 1024), "3.00 GiB");
    }
}
