//! The simulated cluster: node placement and process lifecycle.
//!
//! A [`Cluster`] is the stand-in for a machine allocation on Cori. Simulated
//! processes can be spawned on any node at any time — this is precisely the
//! capability the paper gets from asking the job scheduler for more nodes —
//! and each one runs as an OS thread with a [`crate::process::ProcessCtx`]
//! installed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::RwLock;

use crate::clock::VClock;
use crate::fabric::FabricModel;
use crate::fault::{FaultInjector, FaultPlan};
use crate::process::{enter, Pid, ProcessCtx};
use crate::trace::Tracer;

/// Identifier of a compute node.
pub type NodeId = usize;

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The fabric delay model (defaults to the calibrated Aries preset).
    pub fabric: FabricModel,
    /// Master RNG seed; every process derives a reproducible stream from it.
    pub seed: u64,
    /// Scale factor applied when charging measured compute time to virtual
    /// clocks. Used to map scaled-down workloads back to paper-scale cost.
    pub compute_scale: f64,
    /// Fault-injection schedule applied to the fabric (defaults to none).
    pub faults: FaultPlan,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            fabric: FabricModel::zero(),
            seed: 0xC017A_5EED,
            compute_scale: 1.0,
            faults: FaultPlan::default(),
        }
    }
}

impl ClusterConfig {
    /// Configuration with the calibrated Aries fabric, used by benchmarks.
    pub fn aries() -> Self {
        Self {
            fabric: crate::fabric::presets::aries(),
            ..Default::default()
        }
    }
}

#[derive(Debug, Clone)]
struct ProcInfo {
    node: NodeId,
    clock: VClock,
    name: String,
    alive: bool,
}

/// Shared cluster state, reachable from every process context.
pub struct ClusterShared {
    fabric: FabricModel,
    seed: u64,
    compute_scale: f64,
    faults: FaultInjector,
    tracer: Tracer,
    next_pid: AtomicU64,
    procs: RwLock<HashMap<Pid, ProcInfo>>,
}

impl ClusterShared {
    /// The fabric model.
    pub fn fabric(&self) -> &FabricModel {
        &self.fabric
    }

    /// The fault injector built from the configured [`FaultPlan`].
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// The trace collector (disabled until [`Tracer::set_enabled`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// A canonical snapshot of the trace, with process names attached for
    /// timeline labels.
    pub fn trace_snapshot(&self) -> crate::trace::TraceSnapshot {
        let mut snap = self.tracer.snapshot();
        snap.proc_names = self
            .snapshot()
            .into_iter()
            .map(|(pid, _, name, _, _)| (pid.0, name))
            .collect();
        snap
    }

    /// The compute-time scale factor.
    pub fn compute_scale(&self) -> f64 {
        self.compute_scale
    }

    /// The node a process is placed on, if it exists.
    pub fn node_of(&self, pid: Pid) -> Option<NodeId> {
        self.procs.read().get(&pid).map(|p| p.node)
    }

    /// A handle to a process's virtual clock, if it exists.
    pub fn clock_of(&self, pid: Pid) -> Option<VClock> {
        self.procs.read().get(&pid).map(|p| p.clock.clone())
    }

    /// Whether the process has been spawned and has not yet terminated.
    pub fn is_alive(&self, pid: Pid) -> bool {
        self.procs.read().get(&pid).map(|p| p.alive).unwrap_or(false)
    }

    /// Number of processes ever spawned.
    pub fn spawned_count(&self) -> usize {
        self.procs.read().len()
    }

    fn register(&self, node: NodeId, name: &str) -> (Pid, VClock) {
        let pid = Pid(self.next_pid.fetch_add(1, Ordering::Relaxed));
        let clock = VClock::default();
        self.procs.write().insert(
            pid,
            ProcInfo {
                node,
                clock: clock.clone(),
                name: name.to_string(),
                alive: true,
            },
        );
        (pid, clock)
    }

    fn mark_dead(&self, pid: Pid) {
        if let Some(p) = self.procs.write().get_mut(&pid) {
            p.alive = false;
        }
    }

    /// The maximum virtual clock across all processes — the best available
    /// notion of "current wall time" for aligning newly spawned processes
    /// (elastic daemons start *now*, not at t = 0).
    pub fn max_clock_ns(&self) -> u64 {
        self.procs
            .read()
            .values()
            .map(|p| p.clock.now())
            .max()
            .unwrap_or(0)
    }

    /// Diagnostic snapshot: `(pid, node, name, virtual now, alive)` rows.
    pub fn snapshot(&self) -> Vec<(Pid, NodeId, String, u64, bool)> {
        let mut rows: Vec<_> = self
            .procs
            .read()
            .iter()
            .map(|(pid, p)| (*pid, p.node, p.name.clone(), p.clock.now(), p.alive))
            .collect();
        rows.sort_by_key(|r| r.0);
        rows
    }
}

/// A handle to a spawned simulated process.
pub struct SimHandle<R> {
    pid: Pid,
    join: JoinHandle<R>,
}

impl<R> SimHandle<R> {
    /// The process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Waits for the process to finish and returns its result.
    ///
    /// # Panics
    /// Propagates a panic from the simulated process.
    pub fn join(self) -> R {
        match self.join.join() {
            Ok(r) => r,
            Err(e) => std::panic::resume_unwind(e),
        }
    }
}

/// A simulated cluster.
pub struct Cluster {
    shared: Arc<ClusterShared>,
}

impl Cluster {
    /// Creates a cluster with the given configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        Self {
            shared: Arc::new(ClusterShared {
                fabric: cfg.fabric,
                seed: cfg.seed,
                compute_scale: cfg.compute_scale,
                faults: FaultInjector::new(cfg.faults),
                tracer: Tracer::new(),
                next_pid: AtomicU64::new(0),
                procs: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// The shared state (what `ProcessCtx::cluster()` returns).
    pub fn shared(&self) -> &Arc<ClusterShared> {
        &self.shared
    }

    /// Spawns a simulated process named `name` on `node` running `f`.
    pub fn spawn<R: Send + 'static>(
        &self,
        name: &str,
        node: NodeId,
        f: impl FnOnce() -> R + Send + 'static,
    ) -> SimHandle<R> {
        let (pid, clock) = self.shared.register(node, name);
        let ctx = Arc::new(ProcessCtx::new(
            pid,
            node,
            name.to_string(),
            clock,
            self.shared.seed,
            Arc::clone(&self.shared),
        ));
        let shared = Arc::clone(&self.shared);
        let join = std::thread::Builder::new()
            .name(format!("{name}.{}", pid.0))
            .spawn(move || {
                let out = enter(ctx, f);
                shared.mark_dead(pid);
                out
            })
            .expect("failed to spawn simulated process thread");
        SimHandle { pid, join }
    }

    /// Spawns a group of `n` processes, `procs_per_node` per node starting
    /// at `first_node`, running `f(rank)`. Returns the handles in rank
    /// order.
    pub fn spawn_group<R: Send + 'static>(
        &self,
        name: &str,
        n: usize,
        procs_per_node: usize,
        first_node: NodeId,
        f: impl Fn(usize) -> R + Send + Sync + 'static,
    ) -> Vec<SimHandle<R>> {
        assert!(procs_per_node > 0, "procs_per_node must be positive");
        let f = Arc::new(f);
        (0..n)
            .map(|rank| {
                let f = Arc::clone(&f);
                let node = first_node + rank / procs_per_node;
                self.spawn(&format!("{name}[{rank}]"), node, move || f(rank))
            })
            .collect()
    }
}

impl Default for Cluster {
    fn default() -> Self {
        Self::new(ClusterConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pids_are_unique_and_dense() {
        let c = Cluster::default();
        let hs: Vec<_> = (0..8).map(|i| c.spawn("p", i, move || i)).collect();
        let mut pids: Vec<u64> = hs.iter().map(|h| h.pid().0).collect();
        pids.sort_unstable();
        pids.dedup();
        assert_eq!(pids.len(), 8);
        for h in hs {
            h.join();
        }
    }

    #[test]
    fn node_placement_is_recorded() {
        let c = Cluster::default();
        let h = c.spawn("p", 5, || {});
        assert_eq!(c.shared().node_of(h.pid()), Some(5));
        h.join();
    }

    #[test]
    fn group_placement_packs_nodes() {
        let c = Cluster::default();
        let hs = c.spawn_group("g", 8, 4, 10, |rank| rank);
        assert_eq!(c.shared().node_of(hs[0].pid()), Some(10));
        assert_eq!(c.shared().node_of(hs[3].pid()), Some(10));
        assert_eq!(c.shared().node_of(hs[4].pid()), Some(11));
        let ranks: Vec<usize> = hs.into_iter().map(|h| h.join()).collect();
        assert_eq!(ranks, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn liveness_tracks_termination() {
        let c = Cluster::default();
        let h = c.spawn("p", 0, || {});
        let pid = h.pid();
        h.join();
        assert!(!c.shared().is_alive(pid));
        assert_eq!(c.shared().spawned_count(), 1);
    }

    #[test]
    fn clocks_are_observable_from_outside() {
        let c = Cluster::default();
        let h = c.spawn("p", 0, || {
            crate::process::current().advance(123);
        });
        let pid = h.pid();
        h.join();
        assert_eq!(c.shared().clock_of(pid).unwrap().now(), 123);
    }

    #[test]
    fn snapshot_lists_all_processes() {
        let c = Cluster::default();
        let hs = c.spawn_group("s", 3, 1, 0, |r| r);
        for h in hs {
            h.join();
        }
        let snap = c.shared().snapshot();
        assert_eq!(snap.len(), 3);
        assert!(snap.iter().all(|(_, _, name, _, alive)| name.starts_with("s[") && !alive));
    }
}
