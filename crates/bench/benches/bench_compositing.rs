//! Criterion: IceT strategy ablation (DESIGN.md §6) — binary-swap vs
//! tree vs direct-send at several group sizes, real wall time including
//! the in-memory message passing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use icet::{CompositeOp, Strategy};

fn run_composite(n: usize, strategy: Strategy, px: usize) {
    let out = mona::testing::with_comm(n, mona::MonaConfig::default(), move |comm| {
        let vtk = catalyst::MonaVtkComm::new(comm);
        let rank = vizkit::VtkComm::rank(vtk.as_ref());
        let comm2: std::sync::Arc<dyn vizkit::VtkComm> = vtk;
        let icet_comm = catalyst::icet_context::icet_comm_for(&comm2).unwrap();
        let mut img = vizkit::Image::new(px, px);
        for y in 0..px {
            for x in 0..px {
                if (x + y) % 7 == rank % 7 {
                    img.set_if_closer(x, y, 0.2 + rank as f32 / 10.0, [rank as u8, 0, 0, 255]);
                }
            }
        }
        icet::composite(icet_comm.as_ref(), img, CompositeOp::Closest, strategy, None, 0).unwrap()
    });
    assert!(out[0].is_some());
}

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("icet/strategy-ablation");
    g.sample_size(10);
    for n in [4usize, 8] {
        for (label, strategy) in [
            ("binary-swap", Strategy::BinarySwap),
            ("tree", Strategy::Tree),
            ("direct", Strategy::Direct),
        ] {
            g.bench_with_input(
                BenchmarkId::new(label, n),
                &(n, strategy),
                |b, &(n, strategy)| b.iter(|| run_composite(n, strategy, 64)),
            );
        }
    }
    g.finish();
}

fn bench_operators(c: &mut Criterion) {
    let mut g = c.benchmark_group("icet/operators");
    let mut a = vizkit::Image::new(256, 256);
    let mut b_img = vizkit::Image::new(256, 256);
    for i in 0..256 * 256 {
        a.depth[i] = (i % 100) as f32 / 100.0;
        b_img.depth[i] = ((i + 50) % 100) as f32 / 100.0;
        a.rgba[i * 4 + 3] = 128;
        b_img.rgba[i * 4 + 3] = 255;
    }
    g.bench_function("closest-256", |bch| {
        bch.iter(|| {
            let mut x = a.clone();
            x.composite_closest(&b_img);
            std::hint::black_box(x)
        })
    });
    g.bench_function("blend-256", |bch| {
        bch.iter(|| {
            let mut x = a.clone();
            x.composite_over(&b_img);
            std::hint::black_box(x)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_strategies, bench_operators);
criterion_main!(benches);
