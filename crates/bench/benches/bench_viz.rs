//! Criterion: the visualization kernels — contouring, surface
//! rasterization, volume ray-casting — that dominate pipeline execution
//! time (the figures are compute-bound; this is that compute).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vizkit::math::vec3;
use vizkit::render::{render_surface, render_volume, Camera, ColorMap, TransferFunction};

fn sphere_grid(n: usize) -> vizkit::ImageData {
    let mut g = vizkit::ImageData::new([n, n, n]);
    let c = (n - 1) as f32 / 2.0;
    let mut vals = Vec::with_capacity(n * n * n);
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                vals.push(c - vec3(i as f32 - c, j as f32 - c, k as f32 - c).length());
            }
        }
    }
    g.point_data.set("d", vizkit::DataArray::F32(vals));
    g
}

fn bench_contour(c: &mut Criterion) {
    let mut g = c.benchmark_group("viz/contour");
    for n in [16usize, 32] {
        let grid = sphere_grid(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &grid, |b, grid| {
            b.iter(|| std::hint::black_box(vizkit::filters::contour(grid, "d", &[n as f64 / 4.0])))
        });
    }
    g.finish();
}

fn bench_render(c: &mut Criterion) {
    let mut g = c.benchmark_group("viz/render");
    let grid = sphere_grid(24);
    let surf = vizkit::filters::contour(&grid, "d", &[6.0]);
    let (lo, hi) = surf.bounds().unwrap();
    let cam = Camera::fit_bounds(lo, hi);
    let cmap = ColorMap::viridis((0.0, 12.0));
    g.bench_function("surface-256", |b| {
        b.iter(|| std::hint::black_box(render_surface(&surf, &cam, &cmap, Some("d"), 256, 256)))
    });
    let (vlo, vhi) = grid.bounds();
    let vcam = Camera::fit_bounds(vlo, vhi);
    let tf = TransferFunction::ramp(ColorMap::viridis((0.0, 12.0)), 0.8);
    g.bench_function("volume-128", |b| {
        b.iter(|| std::hint::black_box(render_volume(&grid, "d", &vcam, &tf, 128, 128, 0.5)))
    });
    g.finish();
}

fn bench_filters(c: &mut Criterion) {
    let mut g = c.benchmark_group("viz/filters");
    let grid = sphere_grid(24);
    let surf = vizkit::filters::contour(&grid, "d", &[6.0]);
    g.bench_function("clip", |b| {
        let plane = vizkit::filters::Plane::through(vec3(11.5, 11.5, 11.5), vec3(1.0, 0.5, 0.2));
        b.iter(|| std::hint::black_box(vizkit::filters::clip(&surf, plane)))
    });
    let series = sims::dwi::DwiSeries::scaled_down(2);
    let block = series.generate_block(20, 0);
    g.bench_function("resample", |b| {
        b.iter(|| {
            std::hint::black_box(vizkit::filters::resample_to_image(
                &block,
                "v02",
                [32, 32, 32],
                f32::NEG_INFINITY,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_contour, bench_render, bench_filters);
criterion_main!(benches);
