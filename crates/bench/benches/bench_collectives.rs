//! Criterion: real wall time of MoNA and minimpi collectives at small
//! scales, plus the request/buffer-pooling ablation called out in
//! DESIGN.md §6 (the Table I NA-vs-MoNA gap).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives/allreduce-4ranks-1KiB");
    g.sample_size(10);
    g.bench_function("mona", |b| {
        b.iter(|| {
            mona::testing::with_comm(4, mona::MonaConfig::default(), |comm| {
                let data = vec![comm.rank() as u8; 1024];
                for _ in 0..10 {
                    comm.allreduce(&data, &mona::ops::bxor_u8).unwrap();
                }
            })
        })
    });
    g.bench_function("minimpi-vendor", |b| {
        b.iter(|| {
            minimpi::MpiWorld::run(4, minimpi::Profile::Vendor, |comm| {
                let data = vec![comm.rank() as u8; 1024];
                for _ in 0..10 {
                    comm.allreduce(&data, &xor).unwrap();
                }
            })
        })
    });
    g.finish();
}

fn bench_pooling_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives/pooling-ablation");
    g.sample_size(10);
    for (label, pooling) in [("pooled", true), ("unpooled", false)] {
        g.bench_with_input(BenchmarkId::new("reduce", label), &pooling, |b, &pooling| {
            b.iter(|| {
                mona::testing::with_comm(
                    4,
                    mona::MonaConfig {
                        pooling,
                        ..Default::default()
                    },
                    |comm| {
                        let data = vec![comm.rank() as u8; 4096];
                        for _ in 0..10 {
                            comm.reduce(&data, &mona::ops::bxor_u8, 0).unwrap();
                        }
                    },
                )
            })
        });
    }
    g.finish();
}

fn xor(acc: &mut [u8], other: &[u8]) {
    for (a, b) in acc.iter_mut().zip(other) {
        *a ^= b;
    }
}

criterion_group!(benches, bench_allreduce, bench_pooling_ablation);
criterion_main!(benches);
