//! Criterion: wire codec and dataset codec throughput (real wall time of
//! the library code — the per-RPC serialization cost on the hot path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct StageLike {
    pipeline: String,
    name: String,
    block_id: u64,
    iteration: u64,
    size: usize,
    bulk: (u64, u64, u64),
}

fn bench_rpc_args(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire/rpc-args");
    let args = StageLike {
        pipeline: "pipeline".into(),
        name: "gray-scott".into(),
        block_id: 42,
        iteration: 17,
        size: 1 << 20,
        bulk: (3, 99, 1 << 20),
    };
    g.bench_function("encode", |b| {
        let mut buf = Vec::with_capacity(128);
        b.iter(|| {
            buf.clear();
            wire::to_extend(&args, &mut buf).unwrap();
            std::hint::black_box(buf.len())
        })
    });
    let bytes = wire::to_vec(&args).unwrap();
    g.bench_function("decode", |b| {
        b.iter(|| std::hint::black_box(wire::from_slice::<StageLike>(&bytes).unwrap()))
    });
    g.finish();
}

fn bench_dataset_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec/dataset");
    for n in [16usize, 32] {
        let mut img = vizkit::ImageData::new([n, n, n]);
        img.point_data.set(
            "u",
            vizkit::DataArray::F32((0..n * n * n).map(|i| i as f32).collect()),
        );
        let ds = vizkit::DataSet::Image(img);
        let encoded = colza::codec::dataset_to_bytes(&ds);
        g.throughput(Throughput::Bytes(encoded.len() as u64));
        g.bench_with_input(BenchmarkId::new("encode", n), &ds, |b, ds| {
            b.iter(|| std::hint::black_box(colza::codec::dataset_to_bytes(ds)))
        });
        g.bench_with_input(BenchmarkId::new("decode", n), &encoded, |b, bytes| {
            b.iter(|| std::hint::black_box(colza::codec::dataset_from_bytes(bytes).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rpc_args, bench_dataset_codec);
criterion_main!(benches);
