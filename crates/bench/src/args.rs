//! Minimal command-line argument handling for the harness binaries.

use std::collections::HashMap;

/// Parsed `--key value` / `--flag` arguments.
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (tests).
    pub fn from_iter(iter: impl IntoIterator<Item = String>) -> Self {
        let mut values = HashMap::new();
        let mut flags = Vec::new();
        let mut iter = iter.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        values.insert(key.to_string(), iter.next().unwrap());
                    }
                    _ => flags.push(key.to_string()),
                }
            }
        }
        Self { values, flags }
    }

    /// A typed value with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A string value with a default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Whether a bare flag was passed.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::from_iter(s.split_whitespace().map(String::from))
    }

    #[test]
    fn values_and_flags() {
        let a = args("--servers 8 --render --scale 0.5");
        assert_eq!(a.get("servers", 1usize), 8);
        assert_eq!(a.get("scale", 1.0f64), 0.5);
        assert!(a.has("render"));
        assert!(!a.has("missing"));
    }

    #[test]
    fn defaults_apply() {
        let a = args("");
        assert_eq!(a.get("servers", 4usize), 4);
        assert_eq!(a.get_str("mode", "mona"), "mona");
    }

    #[test]
    fn malformed_values_fall_back() {
        let a = args("--servers lots");
        assert_eq!(a.get("servers", 2usize), 2);
    }
}
