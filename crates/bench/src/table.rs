//! Plain-text table/series output matching the paper's presentation.

use hpcsim::stats::fmt_ns;

/// Prints a header box for an experiment.
pub fn banner(title: &str, detail: &str) {
    println!("==================================================================");
    println!("{title}");
    if !detail.is_empty() {
        println!("{detail}");
    }
    println!("==================================================================");
}

/// Prints one table with a left label column and value columns.
pub fn print_table(label_header: &str, columns: &[&str], rows: &[(String, Vec<f64>)], unit: &str) {
    print!("{label_header:>14} |");
    for c in columns {
        print!(" {c:>14} |");
    }
    println!();
    print!("{:->15}+", "");
    for _ in columns {
        print!("{:->16}+", "");
    }
    println!();
    for (label, vals) in rows {
        print!("{label:>14} |");
        for v in vals {
            print!(" {v:>14.3} |");
        }
        println!();
    }
    println!("(values in {unit})");
}

/// Prints a per-iteration series, one line each, with named columns.
pub fn print_series(x_header: &str, columns: &[&str], rows: &[(u64, Vec<Option<u64>>)]) {
    print!("{x_header:>10}");
    for c in columns {
        print!(" {c:>18}");
    }
    println!();
    for (x, vals) in rows {
        print!("{x:>10}");
        for v in vals {
            match v {
                Some(ns) => print!(" {:>18}", fmt_ns(*ns)),
                None => print!(" {:>18}", "-"),
            }
        }
        println!();
    }
}
