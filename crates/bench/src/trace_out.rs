//! Timeline export for harness binaries (`--trace <path>`).
//!
//! Every harness that opts in takes a `--trace results/BENCH_trace.json`
//! argument and, after its measured (untraced) runs, performs one extra
//! traced capture run and writes the cluster's Chrome-trace timeline to
//! the given path (open it at <https://ui.perfetto.dev>). Keeping the
//! capture separate from the measured runs means the published numbers
//! are always from dark runs — tracing can never perturb a result row.

use crate::Args;

/// Where (and whether) a harness should export a timeline.
pub struct TraceOut {
    path: Option<String>,
}

impl TraceOut {
    /// Reads the `--trace <path>` argument; absent means no export.
    pub fn from_args(args: &Args) -> Self {
        let p = args.get_str("trace", "");
        Self {
            path: (!p.is_empty()).then_some(p),
        }
    }

    /// Whether a capture run should happen at all.
    pub fn wanted(&self) -> bool {
        self.path.is_some()
    }

    /// Enables recording on a capture cluster.
    pub fn arm(&self, cluster: &hpcsim::Cluster) {
        if self.wanted() {
            cluster.shared().tracer().set_enabled(true);
        }
    }

    /// Writes the cluster's timeline as Chrome-trace JSON, plus the
    /// counter/histogram dump as JSONL next to it (`<path>.metrics.jsonl`).
    pub fn export(&self, cluster: &hpcsim::Cluster) {
        let Some(path) = &self.path else { return };
        let snap = cluster.shared().trace_snapshot();
        match std::fs::write(path, snap.to_chrome_json()) {
            Ok(()) => println!(
                "trace: wrote {} spans to {path} (open at https://ui.perfetto.dev)",
                snap.spans.len()
            ),
            Err(e) => eprintln!("trace: failed to write {path}: {e}"),
        }
        let metrics_path = format!("{path}.metrics.jsonl");
        if let Err(e) = std::fs::write(&metrics_path, snap.to_metrics_jsonl()) {
            eprintln!("trace: failed to write {metrics_path}: {e}");
        }
    }
}
