//! # colza-bench — experiment harnesses for every table and figure
//!
//! Each binary in `src/bin/` regenerates one of the paper's results (the
//! mapping lives in DESIGN.md §5). This library holds the shared
//! machinery: argument parsing, the full client/server pipeline-experiment
//! runner, and table formatting.
//!
//! All timings are **virtual nanoseconds** from the `hpcsim` platform
//! model — scale-faithful on any host (see DESIGN.md §2). Paper scales
//! (512 clients, 128 servers) exceed a small host's thread budget, so
//! every harness takes `--scale`-style flags and prints the configuration
//! it actually ran.

pub mod args;
pub mod experiment;
pub mod table;
pub mod trace_out;

pub use args::Args;
pub use experiment::{run_pipeline_experiment, IterationTimes, PipelineExperiment};
pub use trace_out::TraceOut;
