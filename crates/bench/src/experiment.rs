//! The full Colza pipeline experiment runner: staging daemons + an MPI
//! simulation staging blocks each iteration, with optional mid-run
//! growth of the staging area — the common machinery behind the
//! Fig. 5–10 harnesses.

use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};

use colza::daemon::{launch_group, settle_views};
use colza::{AdminClient, BlockMeta, ColzaClient, ColzaDaemon, CommMode, DaemonConfig};
use margo::MargoInstance;
use na::{Address, Fabric};
use vizkit::DataSet;

/// Experiment configuration.
#[derive(Clone)]
pub struct PipelineExperiment {
    /// Initial number of staging servers.
    pub servers: usize,
    /// Staging processes per node.
    pub servers_per_node: usize,
    /// Number of simulation (client) ranks.
    pub clients: usize,
    /// Client processes per node.
    pub clients_per_node: usize,
    /// Pipeline communication layer (MoNA or static MPI).
    pub comm: CommMode,
    /// Pipeline script to deploy.
    pub script: catalyst::PipelineScript,
    /// Number of analysis iterations.
    pub iterations: u64,
    /// Servers to add *before* given iterations: `(iteration, how_many)`.
    pub grow_at: Vec<(u64, usize)>,
    /// Virtual-cluster seed (defaults to the hpcsim default).
    pub seed: u64,
}

impl PipelineExperiment {
    /// A basic static experiment with default per-node packing.
    pub fn new(
        servers: usize,
        clients: usize,
        comm: CommMode,
        script: catalyst::PipelineScript,
        iterations: u64,
    ) -> Self {
        Self {
            servers,
            servers_per_node: 4,
            clients,
            clients_per_node: 4,
            comm,
            script,
            iterations,
            grow_at: Vec::new(),
            seed: hpcsim::ClusterConfig::aries().seed,
        }
    }
}

/// Client-observed virtual durations of one iteration's four calls.
#[derive(Debug, Clone, Copy)]
pub struct IterationTimes {
    /// Iteration number.
    pub iteration: u64,
    /// Staging-area size during this iteration.
    pub servers: usize,
    /// `activate` (2PC) span.
    pub activate_ns: u64,
    /// Total span of rank 0's `stage` calls.
    pub stage_ns: u64,
    /// `execute` span (the pipeline execution time the figures report).
    pub execute_ns: u64,
    /// `deactivate` span.
    pub deactivate_ns: u64,
    /// Whether the pipeline's trigger gate skipped this iteration
    /// (DESIGN.md §15) — `execute` returned `ExecOutcome::Skipped`.
    pub skipped: bool,
}

enum HarnessReq {
    Grow { count: usize },
    Done,
}

/// Runs the experiment. `make_blocks(client_rank, iteration, n_clients)`
/// produces each client's blocks for an iteration. Returns rank 0's
/// per-iteration timings.
pub fn run_pipeline_experiment(
    exp: PipelineExperiment,
    make_blocks: Arc<dyn Fn(usize, u64, usize) -> Vec<(u64, DataSet)> + Send + Sync>,
) -> Vec<IterationTimes> {
    assert!(
        exp.grow_at.is_empty() || matches!(exp.comm, CommMode::Mona),
        "a static MPI staging area cannot be resized"
    );
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig {
        seed: exp.seed,
        ..hpcsim::ClusterConfig::aries()
    });
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let conn_file = std::env::temp_dir().join(format!(
        "colza-exp-{}-{}.addrs",
        std::process::id(),
        rand_suffix()
    ));
    std::fs::remove_file(&conn_file).ok();
    let mut cfg = DaemonConfig::new(&conn_file);
    cfg.comm = exp.comm;

    let total_growth: usize = exp.grow_at.iter().map(|(_, c)| c).sum();
    let server_nodes =
        (exp.servers + total_growth).div_ceil(exp.servers_per_node);
    let mut daemons = launch_group(&cluster, &fabric, exp.servers, exp.servers_per_node, 0, &cfg);
    let contact = daemons[0].address();

    let (req_tx, req_rx): (Sender<HarnessReq>, Receiver<HarnessReq>) = bounded(4);
    let (ack_tx, ack_rx) = bounded::<Vec<Address>>(4);

    // Spawn the simulation ranks (PMI-style bootstrap, as mpirun does).
    let (addr_tx, addr_rx) = crossbeam::channel::unbounded();
    let (list_tx, list_rx) = crossbeam::channel::unbounded::<Vec<Address>>();
    let exp = Arc::new(exp);
    let handles: Vec<_> = (0..exp.clients)
        .map(|rank| {
            let fabric = fabric.clone();
            let addr_tx = addr_tx.clone();
            let list_rx = list_rx.clone();
            let exp = Arc::clone(&exp);
            let make_blocks = Arc::clone(&make_blocks);
            let req_tx = req_tx.clone();
            let ack_rx = ack_rx.clone();
            cluster.spawn(
                &format!("sim[{rank}]"),
                server_nodes + rank / exp.clients_per_node,
                move || {
                    let endpoint = Arc::new(fabric.open());
                    addr_tx.send((rank, endpoint.address())).unwrap();
                    let members = list_rx.recv().unwrap();
                    let comm = minimpi::MpiComm::from_endpoint(
                        Arc::clone(&endpoint),
                        members,
                        minimpi::Profile::Vendor,
                    );
                    client_body(comm, &exp, contact, &make_blocks, &req_tx, &ack_rx)
                },
            )
        })
        .collect();
    let mut addrs = vec![Address(0); exp.clients];
    for _ in 0..exp.clients {
        let (rank, addr) = addr_rx.recv().unwrap();
        addrs[rank] = addr;
    }
    for _ in 0..exp.clients {
        list_tx.send(addrs.clone()).unwrap();
    }

    // Serve growth requests until the simulation reports completion.
    let mut next_node = exp.servers.div_ceil(exp.servers_per_node) * 0
        + exp.servers / exp.servers_per_node;
    let mut in_node = exp.servers % exp.servers_per_node;
    while let Ok(req) = req_rx.recv() {
        match req {
            HarnessReq::Grow { count } => {
                let mut fresh = Vec::new();
                for _ in 0..count {
                    let d = ColzaDaemon::spawn(&cluster, &fabric, next_node, cfg.clone());
                    fresh.push(d.address());
                    daemons.push(d);
                    in_node += 1;
                    if in_node == exp.servers_per_node {
                        in_node = 0;
                        next_node += 1;
                    }
                }
                settle_views(&daemons, daemons.len());
                ack_tx.send(fresh).unwrap();
            }
            HarnessReq::Done => break,
        }
    }

    let mut results = Vec::new();
    for h in handles {
        results.extend(h.join());
    }
    std::fs::remove_file(&conn_file).ok();
    for d in daemons {
        d.stop();
    }
    results
}

fn rand_suffix() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64)
        .unwrap_or(0)
        ^ (std::thread::current().id().as_u64_fallback())
}

trait ThreadIdExt {
    fn as_u64_fallback(&self) -> u64;
}

impl ThreadIdExt for std::thread::ThreadId {
    fn as_u64_fallback(&self) -> u64 {
        // Stable Rust has no ThreadId::as_u64; hash the Debug repr.
        let s = format!("{self:?}");
        s.bytes().fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(b as u64))
    }
}

const PIPELINE_NAME: &str = "pipeline";

fn client_body(
    sim_comm: minimpi::MpiComm,
    exp: &PipelineExperiment,
    contact: Address,
    make_blocks: &Arc<dyn Fn(usize, u64, usize) -> Vec<(u64, DataSet)> + Send + Sync>,
    req_tx: &Sender<HarnessReq>,
    ack_rx: &Receiver<Vec<Address>>,
) -> Vec<IterationTimes> {
    let rank = sim_comm.rank();
    let margo = MargoInstance::from_endpoint(Arc::clone(sim_comm.endpoint()));
    let client = ColzaClient::new(Arc::clone(&margo));
    let admin = AdminClient::new(Arc::clone(&margo));
    let script_json = exp.script.to_json();

    // Rank 0 deploys the pipeline everywhere before anyone proceeds.
    let mut known: Vec<Address> = Vec::new();
    if rank == 0 {
        let view = client.view_from(contact).expect("staging area reachable");
        admin
            .create_pipeline_on_all(&view, "catalyst", PIPELINE_NAME, &script_json)
            .expect("pipeline deploys");
        known = view;
    }
    sim_comm.barrier().unwrap();

    let handle = client
        .distributed_handle(contact, PIPELINE_NAME)
        .expect("handle");
    let ctx = hpcsim::current();
    let mut results = Vec::new();

    for iter in 0..exp.iterations {
        // Elastic growth before this iteration (rank 0 drives it).
        let growth: usize = exp
            .grow_at
            .iter()
            .filter(|&&(at, _)| at == iter)
            .map(|&(_, c)| c)
            .sum();
        if growth > 0 {
            if rank == 0 {
                req_tx.send(HarnessReq::Grow { count: growth }).unwrap();
                let fresh = ack_rx.recv().expect("harness grew the group");
                deploy_pipeline_on_new(
                    &admin,
                    &mut known,
                    &fresh,
                    "catalyst",
                    PIPELINE_NAME,
                    &script_json,
                )
                .expect("deploy on new servers");
            }
            sim_comm.barrier().unwrap();
            handle.refresh_view().expect("refreshed view");
        }

        let mut t = IterationTimes {
            iteration: iter,
            servers: 0,
            activate_ns: 0,
            stage_ns: 0,
            execute_ns: 0,
            deactivate_ns: 0,
            skipped: false,
        };
        if rank == 0 {
            let before = ctx.now();
            handle.activate(iter).expect("activate");
            t.activate_ns = ctx.now() - before;
            t.servers = handle.members().len();
        }
        sim_comm.barrier().unwrap();

        // Producing the blocks is the simulation's compute phase.
        let blocks = ctx.charge_compute(|| make_blocks(rank, iter, exp.clients));
        let before = ctx.now();
        stage_blocks(&handle, iter, &blocks).expect("stage");
        t.stage_ns = ctx.now() - before;
        sim_comm.barrier().unwrap();

        if rank == 0 {
            let before = ctx.now();
            let outcome = handle.execute(iter).expect("execute");
            t.execute_ns = ctx.now() - before;
            t.skipped = outcome.is_skipped();
            let before = ctx.now();
            handle.deactivate(iter).expect("deactivate");
            t.deactivate_ns = ctx.now() - before;
            results.push(t);
        }
        sim_comm.barrier().unwrap();
    }

    if rank == 0 {
        req_tx.send(HarnessReq::Done).unwrap();
    }
    sim_comm.barrier().unwrap();
    margo.finalize();
    results
}

/// Serializes blocks and stages them through a handle.
pub fn stage_blocks(
    handle: &colza::DistributedPipelineHandle,
    iteration: u64,
    blocks: &[(u64, DataSet)],
) -> Result<(), colza::ColzaError> {
    for (block_id, ds) in blocks {
        let payload: Bytes = colza::codec::dataset_to_bytes(ds);
        handle.stage(
            BlockMeta::new("block".to_string(), *block_id, iteration, payload.len()),
            &payload,
        )?;
    }
    Ok(())
}

/// Deploys a pipeline on servers that do not have it yet.
pub fn deploy_pipeline_on_new(
    admin: &AdminClient,
    known: &mut Vec<Address>,
    fresh: &[Address],
    library: &str,
    name: &str,
    config: &str,
) -> Result<(), colza::ColzaError> {
    for &addr in fresh {
        if !known.contains(&addr) {
            admin.create_pipeline(addr, library, name, config)?;
            known.push(addr);
        }
    }
    Ok(())
}
