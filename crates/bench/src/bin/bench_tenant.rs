//! **Multi-tenant QoS sweep** — a well-behaved tenant sharing one
//! staging server with a pack of noisy tenants that flood past their
//! staged-byte quotas every iteration (DESIGN.md §14). Runs the same
//! concurrent workload twice — tenancy enforcement off, then on — and
//! reports the well-behaved tenant's per-iteration latency distribution
//! next to the refusal/throttle counters that show the QoS machinery
//! actually engaged.
//!
//! All timings are virtual nanoseconds (`compute_scale: 0.0`), so the
//! latencies measure protocol and modeled queueing, not host speed.
//!
//! Emits JSON rows to `results/BENCH_tenant.json`.
//!
//! Run: `cargo run --release -p colza-bench --bin bench_tenant
//!       [--out results/BENCH_tenant.json] [--smoke] [--assert]
//!       [--bound-ns N]`
//!
//! `--smoke` shrinks tenants and iterations for CI; `--assert` exits
//! nonzero unless, with enforcement on, the noisy tenants were refused
//! and throttled AND the well-behaved tenant's worst iteration stayed
//! within the latency bound (the gate `scripts/check.sh` runs).

use std::io::Write;
use std::sync::{Arc, Barrier};

use bytes::Bytes;

use colza::provider::{ColzaProvider, ProviderComm};
use colza::{
    AdminClient, BlockMeta, ColzaClient, ColzaError, PriorityClass, TenancyConfig, TenantConfig,
};
use colza_bench::Args;
use margo::MargoInstance;
use mona::{MonaConfig, MonaInstance};
use na::Fabric;
use ssg::{SsgConfig, SsgGroup};

/// Well-behaved tenant's block size and blocks per iteration.
const WB_BLOCK: usize = 16 * 1024;
const WB_BLOCKS: u64 = 4;
/// Noisy block size; each noisy tenant tries `FLOOD` of these per
/// iteration but its quota admits only two.
const NOISY_BLOCK: usize = 64 * 1024;
const FLOOD: u64 = 8;
const NOISY_QUOTA: u64 = 2 * NOISY_BLOCK as u64;
/// Execute-window quota far below a flood-sized render, so every noisy
/// execute trips the throttle.
const NOISY_EXEC_QUOTA_NS: u64 = 50_000;
/// Default `--assert` bound on the well-behaved tenant's worst
/// iteration with enforcement on: generous against modeled queueing
/// (one in-service noisy execute may be ahead of the gate), tight
/// against unthrottled flooding.
const DEFAULT_BOUND_NS: u64 = 10_000_000;

#[derive(serde::Serialize)]
struct Row {
    mode: &'static str,
    noisy_tenants: usize,
    iterations: u64,
    flood_blocks_per_iter: u64,
    wb_p50_ns: u64,
    wb_p99_ns: u64,
    wb_max_ns: u64,
    wb_latencies_ns: Vec<u64>,
    quota_refused: u64,
    exec_throttled: u64,
    staged_bytes_peak_noisy: u64,
}

fn policy(noisy_tenants: usize) -> TenancyConfig {
    let mut cfg = TenancyConfig::enforcing().with_tenant(
        "wb",
        TenantConfig {
            priority: PriorityClass::Gold,
            ..TenantConfig::default()
        },
    );
    for k in 0..noisy_tenants {
        cfg = cfg.with_tenant(
            format!("noisy{k}"),
            TenantConfig {
                staged_byte_quota: NOISY_QUOTA,
                execute_quota_ns: NOISY_EXEC_QUOTA_NS,
                priority: PriorityClass::Bronze,
            },
        );
    }
    cfg
}

/// One concurrent session: a server on node 0, the well-behaved client
/// on node 1 and one flooding client per noisy tenant on nodes 2+,
/// all running their iterations at the same time against the same
/// staging server.
fn run_mode(enforce: bool, noisy_tenants: usize, iterations: u64, seed: u64) -> Row {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig {
        seed,
        compute_scale: 0.0,
        ..hpcsim::ClusterConfig::aries()
    });
    cluster.shared().tracer().set_enabled(true);
    let fabric = Fabric::new(Arc::clone(cluster.shared()));

    let (addr_tx, addr_rx) = crossbeam::channel::bounded(1);
    let (stop_tx, stop_rx) = crossbeam::channel::bounded::<()>(1);
    let f2 = fabric.clone();
    let server = cluster.spawn("server", 0, move || {
        let endpoint = Arc::new(f2.open());
        let margo = MargoInstance::from_endpoint(Arc::clone(&endpoint));
        let mona = MonaInstance::from_endpoint(Arc::clone(&endpoint), MonaConfig::default());
        let group = SsgGroup::create(Arc::clone(&margo), "colza", SsgConfig::default());
        let _provider = ColzaProvider::register(
            Arc::clone(&margo),
            mona,
            Arc::clone(&group),
            ProviderComm::Mona,
        );
        addr_tx.send(margo.address()).unwrap();
        stop_rx.recv().ok();
        margo.finalize();
    });
    let contact = addr_rx.recv().unwrap();

    // Setup pass: pipelines and (when enforcing) the tenancy policy.
    let f3 = fabric.clone();
    cluster
        .spawn("setup", 1, move || {
            let margo = MargoInstance::init(&f3);
            let admin = AdminClient::new(Arc::clone(&margo));
            admin.create_pipeline(contact, "null", "wb", "").unwrap();
            for k in 0..noisy_tenants {
                admin
                    .create_pipeline(contact, "null", &format!("noisy{k}"), "")
                    .unwrap();
            }
            if enforce {
                admin.set_tenancy(contact, &policy(noisy_tenants)).unwrap();
            }
            margo.finalize();
        })
        .join();

    // All clients line up behind one barrier so the well-behaved
    // iterations really contend with the floods.
    let barrier = Arc::new(Barrier::new(1 + noisy_tenants));

    let noisy_handles: Vec<_> = (0..noisy_tenants)
        .map(|k| {
            let fabric = fabric.clone();
            let barrier = Arc::clone(&barrier);
            cluster.spawn(&format!("noisy{k}"), 2 + k, move || {
                let margo = MargoInstance::init(&fabric);
                let client = ColzaClient::new(Arc::clone(&margo));
                let name = format!("noisy{k}");
                let mut handle = client.distributed_handle(contact, &name).unwrap();
                handle.set_tenant(&name);
                let payload = Bytes::from(vec![0xA0u8 | k as u8; NOISY_BLOCK]);
                barrier.wait();
                for it in 0..iterations {
                    handle.activate(it).unwrap();
                    for b in 0..FLOOD {
                        match handle.stage(BlockMeta::new("f", b, it, NOISY_BLOCK), &payload) {
                            Ok(()) => {}
                            Err(ColzaError::QuotaExceeded(_)) => {}
                            Err(e) => panic!("noisy{k} stage failed oddly: {e}"),
                        }
                    }
                    handle.execute(it).unwrap();
                    handle.deactivate(it).unwrap();
                }
                margo.finalize();
            })
        })
        .collect();

    let f4 = fabric.clone();
    let b2 = Arc::clone(&barrier);
    let wb_latencies = cluster
        .spawn("wb", 1, move || {
            let ctx = hpcsim::process::current();
            let margo = MargoInstance::init(&f4);
            let client = ColzaClient::new(Arc::clone(&margo));
            let mut handle = client.distributed_handle(contact, "wb").unwrap();
            handle.set_tenant("wb");
            let payload = Bytes::from(vec![0x55u8; WB_BLOCK]);
            let mut latencies = Vec::with_capacity(iterations as usize);
            b2.wait();
            for it in 0..iterations {
                let t0 = ctx.now();
                handle.activate(it).unwrap();
                for b in 0..WB_BLOCKS {
                    handle
                        .stage(BlockMeta::new("w", b, it, WB_BLOCK), &payload)
                        .unwrap();
                }
                handle.execute(it).unwrap();
                handle.deactivate(it).unwrap();
                latencies.push(ctx.now() - t0);
            }
            margo.finalize();
            latencies
        })
        .join();
    for h in noisy_handles {
        h.join();
    }
    stop_tx.send(()).unwrap();
    server.join();

    let snap = cluster.shared().trace_snapshot();
    let mut sorted = wb_latencies.clone();
    sorted.sort_unstable();
    let staged_bytes_peak_noisy: u64 = (0..noisy_tenants)
        .map(|k| snap.counter_total(&format!("colza.tenant.noisy{k}.stage.bytes")))
        .max()
        .unwrap_or(0)
        / iterations.max(1);
    Row {
        mode: if enforce { "qos_on" } else { "qos_off" },
        noisy_tenants,
        iterations,
        flood_blocks_per_iter: FLOOD,
        wb_p50_ns: percentile(&sorted, 50.0),
        wb_p99_ns: percentile(&sorted, 99.0),
        wb_max_ns: *sorted.last().unwrap(),
        wb_latencies_ns: wb_latencies,
        quota_refused: snap.counter_total("colza.qos.quota.refused"),
        exec_throttled: snap.counter_total("colza.qos.exec.throttled"),
        staged_bytes_peak_noisy,
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty());
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let out_path = args.get_str("out", "results/BENCH_tenant.json");
    let bound_ns: u64 = args.get("bound-ns", DEFAULT_BOUND_NS);

    let iterations = if smoke { 4 } else { 8 };
    let tenant_counts: Vec<usize> = if smoke { vec![2] } else { vec![1, 2, 4] };

    let mut rows = Vec::new();
    for &n in &tenant_counts {
        for enforce in [false, true] {
            let row = run_mode(enforce, n, iterations, 42);
            println!(
                "{:>7} noisy={} iters={}  wb p50={:>9} ns  p99={:>9} ns  max={:>9} ns  \
                 refused={:>3}  throttled={:>3}  noisy-bytes/iter={}",
                row.mode,
                row.noisy_tenants,
                row.iterations,
                row.wb_p50_ns,
                row.wb_p99_ns,
                row.wb_max_ns,
                row.quota_refused,
                row.exec_throttled,
                row.staged_bytes_peak_noisy,
            );
            rows.push(row);
        }
    }

    write_json(&out_path, &rows);
    println!("\nwrote {} rows to {out_path}", rows.len());

    if args.has("assert") {
        let mut ok = true;
        for row in rows.iter().filter(|r| r.mode == "qos_on") {
            if row.quota_refused == 0 {
                eprintln!(
                    "Assert FAILED: qos_on noisy={} saw no quota refusals — admission \
                     control never engaged",
                    row.noisy_tenants
                );
                ok = false;
            }
            if row.exec_throttled == 0 {
                eprintln!(
                    "Assert FAILED: qos_on noisy={} saw no execute throttling — the \
                     DRR gate never engaged",
                    row.noisy_tenants
                );
                ok = false;
            }
            if row.wb_max_ns > bound_ns {
                eprintln!(
                    "Assert FAILED: qos_on noisy={} well-behaved worst iteration \
                     {} ns > bound {bound_ns} ns",
                    row.noisy_tenants, row.wb_max_ns
                );
                ok = false;
            }
        }
        // Enforcement must bound what the noisy tenants can pin: with
        // QoS off a flood iteration stages FLOOD blocks, with it on at
        // most the quota's worth.
        for row in rows.iter().filter(|r| r.mode == "qos_on") {
            if row.staged_bytes_peak_noisy > NOISY_QUOTA {
                eprintln!(
                    "Assert FAILED: qos_on noisy={} staged {} B/iter > quota {NOISY_QUOTA} B",
                    row.noisy_tenants, row.staged_bytes_peak_noisy
                );
                ok = false;
            }
        }
        if !ok {
            std::process::exit(1);
        }
        println!("Assert: quotas refused, executes throttled, well-behaved latency bounded (OK)");
    }
}

fn write_json(path: &str, rows: &[Row]) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    let mut f = std::fs::File::create(path).expect("create output file");
    let body = serde_json::to_string(&rows).expect("serialize rows");
    writeln!(f, "{body}").expect("write output file");
}
