//! **Figure 10** — Deep Water Impact with elasticity: rendering time per
//! iteration for (a) an elastic staging area grown every other iteration
//! once the data gets heavy, (b) a small static deployment, and (c) a
//! large static deployment.
//!
//! Paper scale: 8 → 72 processes, growing by 8 every other iteration from
//! iteration 13. Scaled default: 2 → 8, growing by 1 from iteration 12.
//!
//! Run: `cargo run --release -p colza-bench --bin fig10_elastic_dwi
//!       [--small 2] [--large 8] [--blocks 16] [--clients 4] [--iters 30]`

use std::sync::Arc;

use colza::CommMode;
use colza_bench::{run_pipeline_experiment, table, Args, PipelineExperiment};
use sims::dwi::DwiSeries;

fn main() {
    let args = Args::parse();
    let small: usize = args.get("small", 2);
    let large: usize = args.get("large", 8);
    let blocks: usize = args.get("blocks", 16);
    let clients: usize = args.get("clients", 4);
    let iters: u64 = args.get("iters", 30);
    let grow_from: u64 = args.get("grow-from", 12);
    table::banner(
        "Figure 10: Deep Water Impact with an elastic staging area",
        &format!(
            "(servers: elastic {small}->{large} growing every other iteration from {grow_from}; \
             vs static {small} and static {large}; paper: 8 -> 72 from iteration 13)"
        ),
    );

    let series = DwiSeries::scaled_down(blocks);
    let maker = || -> Arc<dyn Fn(usize, u64, usize) -> Vec<(u64, vizkit::DataSet)> + Send + Sync> {
        Arc::new(move |rank, iter, n_clients| {
            (0..blocks)
                .filter(|b| b % n_clients == rank)
                .map(|b| {
                    (
                        b as u64,
                        vizkit::DataSet::UGrid(series.generate_block(iter + 1, b)),
                    )
                })
                .collect()
        })
    };
    let script = catalyst::PipelineScript::deep_water_impact(256, 192);

    // Elastic: +1 server every other iteration from `grow_from`.
    let mut elastic = PipelineExperiment::new(small, clients, CommMode::Mona, script.clone(), iters);
    elastic.grow_at = (0..(large - small))
        .map(|i| (grow_from + 2 * i as u64, 1))
        .filter(|&(at, _)| at < iters)
        .collect();
    let elastic_times = run_pipeline_experiment(elastic, maker());

    // Static small and static large.
    let static_small = run_pipeline_experiment(
        PipelineExperiment::new(small, clients, CommMode::Mona, script.clone(), iters),
        maker(),
    );
    let static_large = run_pipeline_experiment(
        PipelineExperiment::new(large, clients, CommMode::Mona, script, iters),
        maker(),
    );

    println!(
        "{:>10} {:>9} {:>18} {:>18} {:>18}",
        "iteration", "servers", "elastic", format!("static {small}"), format!("static {large}")
    );
    for i in 0..iters as usize {
        println!(
            "{:>10} {:>9} {:>18} {:>18} {:>18}",
            i + 1,
            elastic_times[i].servers,
            hpcsim::stats::fmt_ns(elastic_times[i].execute_ns),
            hpcsim::stats::fmt_ns(static_small[i].execute_ns),
            hpcsim::stats::fmt_ns(static_large[i].execute_ns),
        );
    }
    println!();
    println!("Paper shape: the small static deployment's rendering time grows");
    println!("unboundedly with the data; the elastic deployment keeps it bounded");
    println!("(spikes on join iterations from pipeline init); the large static");
    println!("deployment is the floor but wastes resources early in the run.");
}
