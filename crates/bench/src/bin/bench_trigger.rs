//! **Trigger sweep** — reactive triggers on the Deep Water Impact
//! growing-complexity curve (DESIGN.md §15): the same simulation staged
//! through the same staging area, once with the always-on script and once
//! with the triggered script (`max(v02) > 3.2 || iter % 4 == 1`), which
//! renders the cadence heartbeat plus every jet iteration and skips the
//! quiet early splash.
//!
//! Emits per-iteration JSON rows to `results/BENCH_trigger.json` with
//! both modes' execute spans and the triggered run's skip schedule, plus
//! a rerun of the triggered sweep under the same seed to document that
//! the decision trace replays identically.
//!
//! Run: `cargo run --release -p colza-bench --bin bench_trigger
//!       [--out results/BENCH_trigger.json] [--servers 2] [--clients 2]
//!       [--blocks 8] [--iters 12] [--smoke] [--assert]`
//!
//! `--smoke` shrinks the sweep for CI; `--assert` exits nonzero unless
//! the triggered run skipped iterations, cut total execute time by at
//! least 1.2x, and reproduced the exact decision schedule on the rerun
//! (the gates `scripts/check.sh` runs).

use std::io::Write;
use std::sync::Arc;

use colza::CommMode;
use colza_bench::{run_pipeline_experiment, Args, IterationTimes, PipelineExperiment};
use sims::dwi::DwiSeries;

#[derive(serde::Serialize)]
struct Row {
    mode: &'static str,
    iteration: u64,
    servers: usize,
    execute_ns: u64,
    iteration_ns: u64,
    skipped: bool,
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let out_path = args.get_str("out", "results/BENCH_trigger.json");
    let servers: usize = args.get("servers", 2);
    let clients: usize = args.get("clients", 2);
    let blocks: usize = args.get("blocks", if smoke { 4 } else { 8 });
    let iters: u64 = args.get("iters", if smoke { 10 } else { 12 });
    let seed: u64 = args.get("seed", 42);
    let (w, h) = if smoke { (64, 48) } else { (128, 96) };

    println!(
        "trigger sweep: dwi {blocks} blocks / {clients} clients / {servers} servers, \
         {iters} iterations, seed {seed}"
    );

    let always = run_mode(
        catalyst::PipelineScript::deep_water_impact(w, h),
        servers,
        clients,
        blocks,
        iters,
        seed,
    );
    let triggered = run_mode(
        catalyst::PipelineScript::deep_water_impact_triggered(w, h),
        servers,
        clients,
        blocks,
        iters,
        seed,
    );
    // Same-seed rerun: the decision schedule must replay exactly.
    let rerun = run_mode(
        catalyst::PipelineScript::deep_water_impact_triggered(w, h),
        servers,
        clients,
        blocks,
        iters,
        seed,
    );

    let mut rows = Vec::new();
    for (mode, times) in [("always-on", &always), ("triggered", &triggered)] {
        for t in times {
            rows.push(Row {
                mode,
                iteration: t.iteration,
                servers: t.servers,
                execute_ns: t.execute_ns,
                iteration_ns: t.activate_ns + t.stage_ns + t.execute_ns + t.deactivate_ns,
                skipped: t.skipped,
            });
        }
    }

    let schedule = decision_trace(&triggered);
    let rerun_schedule = decision_trace(&rerun);
    let skipped = triggered.iter().filter(|t| t.skipped).count();
    // The savings triggers guarantee: on every skipped iteration the
    // always-on run paid a full render while the triggered run paid only
    // the fused stats allreduce. (End-to-end steady totals are reported
    // too, but host-measured render times carry scheduling noise, so the
    // gate is on the skipped iterations themselves.)
    // Pairs on always-on's *steady* iterations: its first executed
    // iteration carries the one-time init, which a skip merely defers.
    let always_first_ran = always.iter().position(|t| !t.skipped);
    let saved_ns: u64 = triggered
        .iter()
        .zip(&always)
        .enumerate()
        .filter(|&(i, (t, _))| t.skipped && Some(i) != always_first_ran)
        .map(|(_, (t, a))| a.execute_ns.saturating_sub(t.execute_ns))
        .sum();
    let skip_cost_max = triggered
        .iter()
        .filter(|t| t.skipped)
        .map(|t| t.execute_ns)
        .max()
        .unwrap_or(0);
    // Steady state excludes each mode's first *executed* iteration (the
    // one-time pipeline initialization, which triggers cannot save).
    let exec_always = steady_execute_ns(&always);
    let exec_triggered = steady_execute_ns(&triggered);

    println!("decision trace : {schedule}");
    println!("rerun trace    : {rerun_schedule}");
    println!(
        "skipped {skipped}/{iters} iterations; saved {:.2} ms of always-on execute \
         (max skip cost {:.3} ms); steady-state execute {:.2} ms -> {:.2} ms",
        saved_ns as f64 / 1e6,
        skip_cost_max as f64 / 1e6,
        exec_always as f64 / 1e6,
        exec_triggered as f64 / 1e6,
    );

    write_json(&out_path, &rows);
    println!("wrote {} rows to {out_path}", rows.len());

    if args.has("assert") {
        let mut failed = false;
        if skipped == 0 {
            eprintln!("Assert FAILED: the triggered run never skipped an iteration");
            failed = true;
        }
        // Skips must charge ~zero virtual time...
        if skip_cost_max >= 2_000_000 {
            eprintln!(
                "Assert FAILED: a skipped iteration cost {:.3} ms (not ~zero)",
                skip_cost_max as f64 / 1e6
            );
            failed = true;
        }
        // ...and the savings must be a measurable share of the always-on
        // steady-state execute budget.
        if (saved_ns as f64) < 0.05 * exec_always as f64 {
            eprintln!(
                "Assert FAILED: skipping saved only {:.2} ms of {:.2} ms always-on execute (< 5%)",
                saved_ns as f64 / 1e6,
                exec_always as f64 / 1e6
            );
            failed = true;
        }
        if schedule != rerun_schedule {
            eprintln!(
                "Assert FAILED: same-seed decision traces diverged:\n  {schedule}\n  {rerun_schedule}"
            );
            failed = true;
        }
        if always.iter().any(|t| t.skipped) {
            eprintln!("Assert FAILED: the always-on script skipped an iteration");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "Assert: {skipped} skips saved {:.2} ms ({:.0}% of always-on steady execute), \
             max skip cost {:.3} ms, same-seed decision trace replayed exactly (OK)",
            saved_ns as f64 / 1e6,
            100.0 * saved_ns as f64 / exec_always as f64,
            skip_cost_max as f64 / 1e6,
        );
    }
}

fn run_mode(
    script: catalyst::PipelineScript,
    servers: usize,
    clients: usize,
    blocks: usize,
    iters: u64,
    seed: u64,
) -> Vec<IterationTimes> {
    let series = DwiSeries {
        total_blocks: blocks,
        scale: 1.0 / 1024.0,
        iterations: iters,
    };
    let make: Arc<dyn Fn(usize, u64, usize) -> Vec<(u64, vizkit::DataSet)> + Send + Sync> =
        Arc::new(move |rank, iter, n_clients| {
            (0..blocks)
                .filter(|b| b % n_clients == rank)
                .map(|b| {
                    (
                        b as u64,
                        vizkit::DataSet::UGrid(series.generate_block(iter, b)),
                    )
                })
                .collect()
        });
    let mut exp = PipelineExperiment::new(servers, clients, CommMode::Mona, script, iters);
    exp.seed = seed;
    run_pipeline_experiment(exp, make)
}

/// Total execute span excluding the first executed (non-skipped)
/// iteration, which pays the pipeline's one-time initialization.
fn steady_execute_ns(times: &[IterationTimes]) -> u64 {
    let first_ran = times.iter().position(|t| !t.skipped);
    times
        .iter()
        .enumerate()
        .filter(|&(i, _)| Some(i) != first_ran)
        .map(|(_, t)| t.execute_ns)
        .sum()
}

/// The canonical per-iteration decision string ("R" ran, "s" skipped):
/// the trace the same-seed determinism gate compares byte-for-byte.
fn decision_trace(times: &[IterationTimes]) -> String {
    times
        .iter()
        .map(|t| if t.skipped { 's' } else { 'R' })
        .collect()
}

fn write_json(path: &str, rows: &[Row]) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    let mut f = std::fs::File::create(path).expect("create output file");
    let body = serde_json::to_string(&rows).expect("serialize rows");
    writeln!(f, "{body}").expect("write output file");
}
