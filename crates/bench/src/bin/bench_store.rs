//! **Store bench** — cost of live rebalance in the resilient staging
//! store (DESIGN.md §10) as the replication factor sweeps 1..=3, for the
//! two membership changes that can strike a staging area mid-iteration:
//!
//! * **crash** — a server dies after `stage`; SWIM detects the death and
//!   the survivors re-replicate from the remaining copies when the client
//!   re-activates the iteration.
//! * **leave** — a server is retired via `request_leave`; it drains its
//!   holdings to the surviving owners before exiting.
//!
//! Reported per event: bytes relocated (push counters) and the virtual
//! time from the membership change to quiescence.
//!
//! Run: `cargo run --release -p colza-bench --bin bench_store
//!       [--servers 4] [--blocks 24] [--out results/BENCH_store.json]`

use std::sync::Arc;
use std::time::Duration;

use colza::daemon::launch_group;
use colza::{drain_aware_victims, AdminClient, BlockMeta, ColzaClient, DaemonConfig};
use colza_bench::{table, Args};
use margo::MargoInstance;
use na::Fabric;

#[derive(Clone, Copy, PartialEq)]
enum Event {
    Crash,
    Leave,
}

#[derive(serde::Serialize)]
struct Row {
    replication: usize,
    event: &'static str,
    servers_before: usize,
    servers_after: usize,
    blocks: u64,
    staged_bytes: u64,
    moved_bytes: u64,
    drain_bytes: u64,
    recv_bytes: u64,
    rebalance_virtual_ns: u64,
}

#[derive(serde::Serialize)]
struct Report {
    bench: &'static str,
    servers: usize,
    blocks: u64,
    rows: Vec<Row>,
}

fn main() {
    let args = Args::parse();
    let servers: usize = args.get("servers", 4);
    let blocks: u64 = args.get("blocks", 24);
    let out = args.get_str("out", "results/BENCH_store.json");
    table::banner(
        "Store bench: live rebalance cost vs replication factor",
        &format!("({servers} servers, {blocks} blocks; crash repair and drain-before-leave)"),
    );
    println!(
        "{:>4} {:>7} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "k", "event", "servers", "staged B", "moved B", "drained B", "received B", "rebal ms"
    );

    let mut rows = Vec::new();
    for replication in 1..=3usize {
        for event in [Event::Crash, Event::Leave] {
            let row = run_event(replication, event, servers, blocks);
            println!(
                "{:>4} {:>7} {:>5}->{:<2} {:>12} {:>12} {:>12} {:>12} {:>12.2}",
                row.replication,
                row.event,
                row.servers_before,
                row.servers_after,
                row.staged_bytes,
                row.moved_bytes,
                row.drain_bytes,
                row.recv_bytes,
                row.rebalance_virtual_ns as f64 / 1e6,
            );
            rows.push(row);
        }
    }

    let report = Report {
        bench: "store_rebalance",
        servers,
        blocks,
        rows,
    };
    if let Some(dir) = std::path::Path::new(out.as_str()).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    match std::fs::write(&out, serde_json::to_string(&report).unwrap()) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => eprintln!("\nfailed to write {out}: {e}"),
    }
    println!("Shape: relocated bytes grow with k (more copies to restore); a");
    println!("leave always drains the victim's full holdings, while a crash at");
    println!("k=1 has nothing left to copy — the replicas are what make the");
    println!("repair possible at all.");
}

/// Runs one membership event against a freshly staged iteration and
/// returns the relocation counters plus the virtual time the rebalance
/// took (membership change to quiescence, staging-area clocks).
fn run_event(replication: usize, event: Event, servers: usize, blocks: u64) -> Row {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    cluster.shared().tracer().set_enabled(true);
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let conn = std::env::temp_dir().join(format!(
        "bench-store-{}-{replication}-{}.addrs",
        std::process::id(),
        if event == Event::Crash { "crash" } else { "leave" },
    ));
    std::fs::remove_file(&conn).ok();
    let cfg = DaemonConfig::new(&conn);
    let mut daemons = launch_group(&cluster, &fabric, servers, 1, 0, &cfg);
    let contact = daemons[0].address();

    let (staged_tx, staged_rx) = crossbeam::channel::bounded::<u64>(1);
    let (victim_tx, victim_rx) = crossbeam::channel::bounded::<na::Address>(1);
    let (settled_tx, settled_rx) = crossbeam::channel::bounded::<()>(1);
    let (synced_tx, synced_rx) = crossbeam::channel::bounded::<()>(1);
    let (done_tx, done_rx) = crossbeam::channel::bounded::<()>(1);

    let f2 = fabric.clone();
    let sim = cluster.spawn("sim", 16, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let view = client.view_from(contact).unwrap();
        admin.create_pipeline_on_all(&view, "null", "p", "").unwrap();
        let mut handle = client.distributed_handle(contact, "p").unwrap();
        handle.set_replication(replication);
        handle.activate(0).unwrap();
        let mut staged = 0u64;
        for b in 0..blocks {
            let payload = bytes::Bytes::from(vec![0xB5u8; 4096 * (b as usize % 4 + 1)]);
            staged += payload.len() as u64;
            handle
                .stage(
                    BlockMeta::new("bench", b, 0, payload.len()),
                    &payload,
                )
                .unwrap();
        }
        staged_tx.send(staged).unwrap();

        match event {
            Event::Crash => {
                // The host picks the victim; we wait for the survivors to
                // notice the death, then re-activate the same iteration:
                // the 2PC commit carries the shrunken view and every
                // survivor re-syncs its holdings to the new ring.
                settled_rx.recv().unwrap();
                loop {
                    let _ = handle.refresh_view();
                    if handle.members().len() == servers - 1 {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                handle.activate(0).unwrap();
                synced_tx.send(()).unwrap();
            }
            Event::Leave => {
                // Drain-aware shrink: nominate the cheapest server.
                let victim = drain_aware_victims(&admin, &handle.members(), 1)[0];
                victim_tx.send(victim).unwrap();
                admin.request_leave(victim).unwrap();
            }
        }

        done_rx.recv().unwrap();
        // The view changed under us; finish the iteration with the usual
        // refresh-and-retry loop.
        for _ in 0..400 {
            match handle.deactivate(0) {
                Ok(()) => break,
                Err(e) if e.is_retryable() => {
                    std::thread::sleep(Duration::from_millis(2));
                    let _ = handle.refresh_view();
                }
                Err(e) => panic!("deactivate failed: {e}"),
            }
        }
        margo.finalize();
    });

    let staged_bytes = staged_rx.recv().unwrap();
    let shared = cluster.shared();
    let before = shared.trace_snapshot();
    let t0 = shared.max_clock_ns();

    match event {
        Event::Crash => {
            // Kill a non-contact server and wait for SWIM to converge.
            let victim = daemons.remove(1);
            let victim_addr = victim.address();
            victim.kill();
            for _ in 0..5000 {
                if daemons.iter().all(|d| !d.view().contains(&victim_addr)) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            settled_tx.send(()).unwrap();
            synced_rx.recv().unwrap();
        }
        Event::Leave => {
            let victim_addr = victim_rx.recv().unwrap();
            let victim = daemons
                .iter()
                .position(|d| d.address() == victim_addr)
                .unwrap();
            // Quiescent when every survivor dropped the leaver from its
            // view and the leaver's store is empty (drain finished).
            for _ in 0..5000 {
                let gone = daemons
                    .iter()
                    .enumerate()
                    .all(|(i, d)| i == victim || !d.view().contains(&victim_addr));
                if gone && daemons[victim].provider().store().is_empty() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }

    let t1 = shared.max_clock_ns();
    let after = shared.trace_snapshot();
    done_tx.send(()).unwrap();
    sim.join();
    for d in daemons {
        d.stop();
    }
    std::fs::remove_file(&conn).ok();

    let delta = |name: &str| after.counter_total(name) - before.counter_total(name);
    Row {
        replication,
        event: if event == Event::Crash { "crash" } else { "leave" },
        servers_before: servers,
        servers_after: servers - 1,
        blocks,
        staged_bytes,
        moved_bytes: delta("colza.store.moved.bytes"),
        drain_bytes: delta("colza.store.drain.bytes"),
        recv_bytes: delta("colza.store.recv.bytes"),
        rebalance_virtual_ns: t1.saturating_sub(t0),
    }
}
