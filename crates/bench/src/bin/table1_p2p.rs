//! **Table I** — time to complete 1000 send/recv (ping-pong) operations
//! as a function of message size, for Cray-mpich / OpenMPI (minimpi
//! profiles), MoNA, and raw NA (MoNA without request/buffer pooling; the
//! paper's NA column stops at 2 KiB because NA alone has no
//! large-message protocol).
//!
//! Run: `cargo run --release -p colza-bench --bin table1_p2p [--ops 1000]
//!       [--trace results/BENCH_trace.json]`

use std::sync::Arc;

use colza_bench::{table, Args, TraceOut};
use na::Fabric;

fn main() {
    let args = Args::parse();
    let trace = TraceOut::from_args(&args);
    let ops: usize = args.get("ops", 1000);
    let sizes: &[(usize, &str)] = &[
        (8, "8 bytes"),
        (128, "128 bytes"),
        (2 * 1024, "2 KiB"),
        (16 * 1024, "16 KiB"),
        (32 * 1024, "32 KiB"),
        (512 * 1024, "512 KiB"),
    ];
    table::banner(
        "Table I: time (ms) to complete 1000 send/recv operations",
        &format!("(measured over {ops} ping-pong pairs of virtual time; 2 ranks on 2 nodes)"),
    );

    let mut rows = Vec::new();
    for &(size, label) in sizes {
        let cray = mpi_pingpong(minimpi::Profile::Vendor, size, ops);
        let open = mpi_pingpong(minimpi::Profile::Open, size, ops);
        let mona_t = mona_pingpong(mona::MonaConfig::default(), size, ops);
        let na_t = (size <= 2 * 1024).then(|| {
            mona_pingpong(
                mona::MonaConfig {
                    // Raw NA: no pooling, eager only.
                    rdma_threshold: usize::MAX,
                    ..mona::MonaConfig::raw_na()
                },
                size,
                ops,
            )
        });
        rows.push((
            label.to_string(),
            vec![
                to_ms(cray, ops),
                to_ms(open, ops),
                to_ms(mona_t, ops),
                na_t.map(|t| to_ms(t, ops)).unwrap_or(f64::NAN),
            ],
        ));
    }
    table::print_table(
        "Message size",
        &["Cray-mpich", "OpenMPI", "MoNA", "NA"],
        &rows,
        "milliseconds per 1000 operations; NaN = not applicable",
    );
    println!();
    println!("Paper shape checks:");
    println!("  - Cray-mpich fastest at every size");
    println!("  - OpenMPI collapses at >= 16 KiB (rendezvous cliff); MoNA overtakes it there");
    println!("  - raw NA slower than MoNA at small sizes (no request/buffer pooling)");

    // One extra traced capture run — the measured rows above are always
    // dark, so exporting a timeline cannot perturb the table.
    if trace.wanted() {
        export_timeline(&trace, 2 * 1024, ops.min(100));
    }
}

/// A traced MoNA ping-pong capture exported as a Perfetto timeline.
fn export_timeline(trace: &TraceOut, size: usize, ops: usize) {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    trace.arm(&cluster);
    mona::testing::run_ranks(
        &cluster,
        2,
        1,
        mona::MonaConfig::default(),
        move |comm| {
            let data = vec![0u8; size];
            for _ in 0..ops {
                if comm.rank() == 0 {
                    comm.send(&data, 1, 0).unwrap();
                    comm.recv(1, 1).unwrap();
                } else {
                    comm.recv(0, 0).unwrap();
                    comm.send(&data, 0, 1).unwrap();
                }
            }
        },
    );
    trace.export(&cluster);
}

/// Virtual ns for `ops` ping-pong pairs under a minimpi profile.
fn mpi_pingpong(profile: minimpi::Profile, size: usize, ops: usize) -> u64 {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let out = minimpi::MpiWorld::launch(&cluster, &fabric, 2, 1, 0, profile, move |comm| {
        let data = vec![0u8; size];
        let ctx = hpcsim::current();
        let before = ctx.now();
        for _ in 0..ops {
            if comm.rank() == 0 {
                comm.send(&data, 1, 0).unwrap();
                comm.recv(1, 1).unwrap();
            } else {
                comm.recv(0, 0).unwrap();
                comm.send(&data, 0, 1).unwrap();
            }
        }
        ctx.now() - before
    });
    out[0]
}

/// Virtual ns for `ops` ping-pong pairs under a MoNA configuration.
fn mona_pingpong(config: mona::MonaConfig, size: usize, ops: usize) -> u64 {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    let out = mona::testing::run_ranks(&cluster, 2, 1, config, move |comm| {
        let data = vec![0u8; size];
        let ctx = hpcsim::current();
        let before = ctx.now();
        for _ in 0..ops {
            if comm.rank() == 0 {
                comm.send(&data, 1, 0).unwrap();
                comm.recv(1, 1).unwrap();
            } else {
                comm.recv(0, 0).unwrap();
                comm.send(&data, 0, 1).unwrap();
            }
        }
        ctx.now() - before
    });
    out[0]
}

/// Normalizes a measured run to the paper's 1000-operation convention.
fn to_ms(total_ns: u64, ops: usize) -> f64 {
    total_ns as f64 / 1e6 * (1000.0 / ops as f64)
}
