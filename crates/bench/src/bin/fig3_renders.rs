//! **Figure 3** — rendered results of the Gray–Scott (isosurfaces +
//! clip) and Mandelbulb (single isosurface) pipelines.
//!
//! Run: `cargo run --release -p colza-bench --bin fig3_renders
//!       [--grid 48] [--steps 400] [--out /tmp]`

use std::sync::Arc;

use colza_bench::{table, Args};
use sims::gray_scott::{GrayScott, GrayScottParams};
use sims::mandelbulb::Mandelbulb;
use vizkit::Controller;

fn main() {
    let args = Args::parse();
    let grid: usize = args.get("grid", 48);
    let steps: usize = args.get("steps", 400);
    let out_dir = std::path::PathBuf::from(args.get_str("out", "/tmp"));
    table::banner("Figure 3: rendered pipeline outputs", "");

    // (a) Gray-Scott: run the reaction to a patterned state, then render.
    let mut sim = GrayScott::serial(grid, GrayScottParams::default());
    sim.run(steps, None).expect("serial run");
    let script = catalyst::PipelineScript::gray_scott(480, 360);
    let pipeline = catalyst::CatalystPipeline::new(script, catalyst::CatalystConfig::default());
    let ctrl = Controller::new(Arc::new(vizkit::controller::DummyComm));
    let img = pipeline
        .execute(&[sim.to_dataset()], &ctrl)
        .expect("gray-scott render")
        .expect("root image");
    let path = out_dir.join("fig3a_gray_scott.ppm");
    img.write_ppm(&path).expect("write ppm");
    println!(
        "(a) Gray-Scott {grid}^3 after {steps} steps: {:.1}% covered -> {}",
        img.coverage() * 100.0,
        path.display()
    );

    // (b) Mandelbulb: one isosurface.
    let bulb = Mandelbulb {
        dims: [args.get("bulb-grid", 96), args.get("bulb-grid", 96), args.get("bulb-grid", 96)],
        ..Default::default()
    };
    let block = bulb.generate_block(0, 1);
    let script = catalyst::PipelineScript::mandelbulb(480, 360);
    let pipeline = catalyst::CatalystPipeline::new(script, catalyst::CatalystConfig::default());
    let img = pipeline
        .execute(&[block], &ctrl)
        .expect("mandelbulb render")
        .expect("root image");
    let path = out_dir.join("fig3b_mandelbulb.ppm");
    img.write_ppm(&path).expect("write ppm");
    println!(
        "(b) Mandelbulb {}^3: {:.1}% covered -> {}",
        bulb.dims[0],
        img.coverage() * 100.0,
        path.display()
    );
}
