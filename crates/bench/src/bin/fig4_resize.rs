//! **Figure 4** — time to resize a staging area from N to N+1 processes,
//! comparing a *static* deployment (kill everything, ask the launcher to
//! restart at N+1) against an *elastic* one (start one daemon; SSG gossip
//! propagates the membership).
//!
//! Run: `cargo run --release -p colza-bench --bin fig4_resize
//!       [--max-n 12] [--trials 3]`

use std::sync::Arc;

use colza::daemon::{launch_group, settle_views};
use colza::{ColzaDaemon, DaemonConfig};
use colza_bench::{table, Args};
use hpcsim::stats::{fmt_ns, Summary};
use na::Fabric;
use rand::{Rng, SeedableRng};

fn main() {
    let args = Args::parse();
    let max_n: usize = args.get("max-n", 12);
    let trials: usize = args.get("trials", 3);
    table::banner(
        "Figure 4: resizing time from N to N+1 staging processes",
        &format!("(static restart vs elastic SSG join; {trials} trials per N)"),
    );
    println!(
        "{:>4} {:>16} {:>16} {:>16} {:>16}",
        "N", "elastic mean", "elastic max", "static mean", "static max"
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let mut all_elastic = Vec::new();
    let mut all_static = Vec::new();
    for n in 1..=max_n {
        let mut elastic = Vec::new();
        let mut stat = Vec::new();
        for t in 0..trials {
            elastic.push(elastic_resize_ns(n, t as u64));
            stat.push(static_resize_ns(n, &mut rng));
        }
        let es = Summary::of(&elastic).unwrap();
        let ss = Summary::of(&stat).unwrap();
        println!(
            "{n:>4} {:>16} {:>16} {:>16} {:>16}",
            fmt_ns(es.mean as u64),
            fmt_ns(es.max),
            fmt_ns(ss.mean as u64),
            fmt_ns(ss.max)
        );
        all_elastic.extend(elastic);
        all_static.extend(stat);
    }
    let es = Summary::of(&all_elastic).unwrap();
    let ss = Summary::of(&all_static).unwrap();
    println!();
    println!(
        "overall elastic: mean {} (min {}, max {})",
        fmt_ns(es.mean as u64),
        fmt_ns(es.min),
        fmt_ns(es.max)
    );
    println!(
        "overall static:  mean {} (min {}, max {})",
        fmt_ns(ss.mean as u64),
        fmt_ns(ss.min),
        fmt_ns(ss.max)
    );
    println!();
    println!("Paper shape: elastic stable around ~5 s; static larger (5-40 s),");
    println!("unpredictable, averaging ~16 s.");
}

/// Elastic: group of n exists; spawn one more daemon and measure virtual
/// time until every member's view includes it.
fn elastic_resize_ns(n: usize, seed_shift: u64) -> u64 {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig {
        fabric: hpcsim::fabric::presets::aries(),
        seed: 7 + seed_shift,
        ..Default::default()
    });
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let conn = std::env::temp_dir().join(format!(
        "fig4-elastic-{}-{n}-{seed_shift}.addrs",
        std::process::id()
    ));
    std::fs::remove_file(&conn).ok();
    let cfg = DaemonConfig::new(&conn);
    let mut daemons = launch_group(&cluster, &fabric, n, 4, 0, &cfg);
    // Let the group settle, then measure from the current wall time.
    let t0 = cluster.shared().max_clock_ns();
    let newcomer = ColzaDaemon::spawn(&cluster, &fabric, n / 4 + 1, cfg.clone());
    daemons.push(newcomer);
    settle_views(&daemons, n + 1);
    let t1 = daemons
        .iter()
        .map(|d| cluster.shared().clock_of_daemon(d))
        .max()
        .unwrap_or(t0);
    for d in daemons {
        d.stop();
    }
    std::fs::remove_file(&conn).ok();
    t1.saturating_sub(t0)
}

/// Static: kill the staging area and cold-start N+1 daemons through the
/// launcher (sampled `srun` overhead + bootstrap), measuring until the
/// fresh group has settled.
fn static_resize_ns(n: usize, rng: &mut impl Rng) -> u64 {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let conn = std::env::temp_dir().join(format!(
        "fig4-static-{}-{n}.addrs",
        std::process::id()
    ));
    std::fs::remove_file(&conn).ok();
    let cfg = DaemonConfig::new(&conn);
    let launch = hpcsim::fabric::presets::launch();
    // Kill + relaunch: the job manager charge happens before daemons run.
    let srun = launch.sample_srun_ns(rng.random::<f64>())
        + launch.bootstrap_per_proc_ns * (n as u64 + 1);
    let t0 = cluster.shared().max_clock_ns();
    let daemons = launch_group(&cluster, &fabric, n + 1, 4, 0, &cfg);
    let t1 = daemons
        .iter()
        .map(|d| cluster.shared().clock_of_daemon(d))
        .max()
        .unwrap_or(t0);
    for d in daemons {
        d.stop();
    }
    std::fs::remove_file(&conn).ok();
    srun + t1.saturating_sub(t0)
}

/// Helper: a daemon's current virtual clock.
trait DaemonClock {
    fn clock_of_daemon(&self, d: &ColzaDaemon) -> u64;
}

impl DaemonClock for Arc<hpcsim::cluster::ClusterShared> {
    fn clock_of_daemon(&self, d: &ColzaDaemon) -> u64 {
        self.clock_of(d.address().pid())
            .map(|c| c.now())
            .unwrap_or(0)
    }
}
