//! **Figure 8** — pipeline execution time for the Mandelbulb workload
//! across frameworks: Colza+MoNA, Colza+MPI, Damaris (dedicated-nodes
//! mode) and DataSpaces.
//!
//! Paper scale: 64 clients + 64 servers on 32 nodes, 1 MB × 32 blocks per
//! client. Scaled defaults keep the topology's proportions.
//!
//! Run: `cargo run --release -p colza-bench --bin fig8_frameworks
//!       [--clients 8] [--servers 8] [--blocks-per-client 4] [--iters 4]`

use std::sync::Arc;

use baselines::damaris::{run_damaris, DamarisConfig};
use baselines::dataspaces::{DataSpacesDeployment, DsClient};
use colza::CommMode;
use colza_bench::{run_pipeline_experiment, table, Args, PipelineExperiment};
use hpcsim::stats::fmt_ns;
use sims::mandelbulb::Mandelbulb;

fn main() {
    let args = Args::parse();
    let clients: usize = args.get("clients", 8);
    let servers: usize = args.get("servers", 8);
    let blocks_per_client: usize = args.get("blocks-per-client", 4);
    let iters: u64 = args.get("iters", 4);
    let grid: usize = args.get("grid", 16);
    table::banner(
        "Figure 8: Mandelbulb pipeline execution time across frameworks",
        &format!(
            "({clients} clients + {servers} servers, {blocks_per_client} blocks/client; \
             paper: 64 + 64 with 1 MB x 32 blocks)"
        ),
    );

    let total_blocks = clients * blocks_per_client;
    let script = catalyst::PipelineScript::mandelbulb(256, 256);

    // --- Colza (MoNA and MPI) through the shared experiment runner.
    let make = colza_maker(grid, blocks_per_client, total_blocks);
    let colza_mona = avg(&colza_times(
        servers,
        clients,
        CommMode::Mona,
        &script,
        iters,
        Arc::clone(&make),
    ));
    let colza_mpi = avg(&colza_times(
        servers,
        clients,
        CommMode::MpiStatic(minimpi::Profile::Vendor),
        &script,
        iters,
        make,
    ));

    // --- Damaris: same world size, dedicated cores.
    let damaris = {
        let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
        let fabric = na::Fabric::new(Arc::clone(cluster.shared()));
        let cfg = DamarisConfig {
            clients,
            servers,
            profile: minimpi::Profile::Vendor,
            script: script.clone(),
            iterations: iters,
        };
        let m = Mandelbulb {
            dims: [grid, grid, 4 * total_blocks],
            ..Default::default()
        };
        let times = run_damaris(&cluster, &fabric, cfg, move |rank, _iter| {
            // The same per-client blocks Colza's clients stage.
            (0..blocks_per_client)
                .map(|b| m.generate_block(rank * blocks_per_client + b, total_blocks))
                .collect()
        });
        avg_skip_first(&times)
    };

    // --- DataSpaces: put/exec over margo.
    let dataspaces = run_dataspaces(clients, servers, blocks_per_client, grid, iters, &script);

    println!("{:>14} {:>16}", "framework", "avg exec time");
    for (name, t) in [
        ("Colza (MoNA)", colza_mona),
        ("Colza (MPI)", colza_mpi),
        ("Damaris", damaris),
        ("DataSpaces", dataspaces),
    ] {
        println!("{name:>14} {:>16}", fmt_ns(t));
    }
    println!();
    println!("Paper shape: Colza+MPI <= DataSpaces <= Colza+MoNA < Damaris");
    println!("(Damaris pays per-client trigger skew; DataSpaces matches Colza+MPI's");
    println!("pipeline but pays put-indexing overhead; MoNA adds its layer cost).");
}

type Maker = Arc<dyn Fn(usize, u64, usize) -> Vec<(u64, vizkit::DataSet)> + Send + Sync>;

fn colza_maker(grid: usize, blocks_per_client: usize, total_blocks: usize) -> Maker {
    Arc::new(move |rank, _iter, _clients| {
        let m = Mandelbulb {
            dims: [grid, grid, 4 * total_blocks],
            ..Default::default()
        };
        (0..blocks_per_client)
            .map(|b| {
                let id = rank * blocks_per_client + b;
                (id as u64, m.generate_block(id, total_blocks))
            })
            .collect()
    })
}

fn colza_times(
    servers: usize,
    clients: usize,
    comm: CommMode,
    script: &catalyst::PipelineScript,
    iters: u64,
    make: Maker,
) -> Vec<u64> {
    let exp = PipelineExperiment::new(servers, clients, comm, script.clone(), iters);
    run_pipeline_experiment(exp, make)
        .iter()
        .map(|t| t.execute_ns)
        .collect()
}

fn run_dataspaces(
    clients: usize,
    servers: usize,
    blocks_per_client: usize,
    grid: usize,
    iters: u64,
    script: &catalyst::PipelineScript,
) -> u64 {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    let fabric = na::Fabric::new(Arc::clone(cluster.shared()));
    let deployment = DataSpacesDeployment::launch(
        &cluster,
        &fabric,
        servers,
        4,
        0,
        minimpi::Profile::Vendor,
        script.clone(),
    );
    let server_addrs = deployment.addrs().to_vec();
    let total_blocks = clients * blocks_per_client;
    // Clients form their own MPI world (the simulation side).
    let out = minimpi::MpiWorld::launch(
        &cluster,
        &fabric,
        clients,
        4,
        servers.div_ceil(4),
        minimpi::Profile::Vendor,
        move |comm| {
            let margo = margo::MargoInstance::from_endpoint(Arc::clone(comm.endpoint()));
            let client = DsClient::new(Arc::clone(&margo), server_addrs.clone());
            let m = Mandelbulb {
                dims: [grid, grid, 4 * total_blocks],
                ..Default::default()
            };
            let ctx = hpcsim::current();
            let mut times = Vec::new();
            for iter in 0..iters {
                for b in 0..blocks_per_client {
                    let id = comm.rank() * blocks_per_client + b;
                    let ds = m.generate_block(id, total_blocks);
                    let payload = colza::codec::dataset_to_bytes(&ds);
                    client.put("mandelbulb", iter, id as u64, &payload).unwrap();
                }
                comm.barrier().unwrap();
                if comm.rank() == 0 {
                    let before = ctx.now();
                    client.exec(iter).unwrap();
                    times.push(ctx.now() - before);
                }
                comm.barrier().unwrap();
            }
            margo.finalize();
            times
        },
    );
    deployment.stop();
    let times: Vec<u64> = out.into_iter().flatten().collect();
    avg_skip_first(&times)
}

fn avg(times: &[u64]) -> u64 {
    avg_skip_first(times)
}

fn avg_skip_first(times: &[u64]) -> u64 {
    let rest = &times[1.min(times.len().saturating_sub(1))..];
    (rest.iter().sum::<u64>() / rest.len().max(1) as u64).max(1)
}
