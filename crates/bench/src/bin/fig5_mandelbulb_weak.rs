//! **Figure 5** — Mandelbulb weak scaling: average pipeline execution
//! time at several staging-area sizes, MPI vs MoNA, with the per-server
//! data volume held constant (blocks ∝ servers).
//!
//! Paper scale: 512 clients, 4–128 servers, 8 MB blocks, 6 iterations
//! with the first discarded. Scaled defaults here keep the same protocol.
//!
//! Run: `cargo run --release -p colza-bench --bin fig5_mandelbulb_weak
//!       [--max-servers 8] [--grid 24] [--iters 6]`

use std::sync::Arc;

use colza::CommMode;
use colza_bench::{run_pipeline_experiment, table, Args, PipelineExperiment};
use hpcsim::stats::fmt_ns;
use sims::mandelbulb::Mandelbulb;

fn main() {
    let args = Args::parse();
    let max_servers: usize = args.get("max-servers", 8);
    let grid: usize = args.get("grid", 24);
    let iters: u64 = args.get("iters", 6);
    table::banner(
        "Figure 5: Mandelbulb weak scaling (pipeline execution time)",
        &format!(
            "(grid {grid}x{grid}x(4*servers) blocks; {iters} iterations, first discarded; \
             paper runs 4-128 servers with 8 MB blocks)"
        ),
    );
    println!("{:>8} {:>8} {:>16} {:>16}", "servers", "clients", "MPI", "MoNA");

    let mut servers = 1;
    while servers <= max_servers {
        let clients = servers; // weak scaling: data grows with servers
        let blocks_per_client = 4;
        let total_blocks = clients * blocks_per_client;
        let make = block_maker(grid, blocks_per_client, total_blocks);
        let mpi = average_execute(
            PipelineExperiment::new(
                servers,
                clients,
                CommMode::MpiStatic(minimpi::Profile::Vendor),
                catalyst::PipelineScript::mandelbulb(256, 256),
                iters,
            ),
            Arc::clone(&make),
        );
        let mona_t = average_execute(
            PipelineExperiment::new(
                servers,
                clients,
                CommMode::Mona,
                catalyst::PipelineScript::mandelbulb(256, 256),
                iters,
            ),
            make,
        );
        println!(
            "{servers:>8} {clients:>8} {:>16} {:>16}",
            fmt_ns(mpi),
            fmt_ns(mona_t)
        );
        servers *= 2;
    }
    println!();
    println!("Paper shape: MoNA within noise of MPI at every scale (the pipeline");
    println!("is compute-bound; communication is only the final compositing).");
}

type Maker = Arc<dyn Fn(usize, u64, usize) -> Vec<(u64, vizkit::DataSet)> + Send + Sync>;

fn block_maker(grid: usize, blocks_per_client: usize, total_blocks: usize) -> Maker {
    Arc::new(move |rank, _iter, _clients| {
        let m = Mandelbulb {
            dims: [grid, grid, 4 * total_blocks],
            ..Default::default()
        };
        (0..blocks_per_client)
            .map(|b| {
                let id = rank * blocks_per_client + b;
                (id as u64, m.generate_block(id, total_blocks))
            })
            .collect()
    })
}

fn average_execute(exp: PipelineExperiment, make: Maker) -> u64 {
    let times = run_pipeline_experiment(exp, make);
    // Discard the first iteration (library loading / interpreter start).
    let rest: Vec<u64> = times.iter().skip(1).map(|t| t.execute_ns).collect();
    (rest.iter().sum::<u64>() / rest.len().max(1) as u64).max(1)
}
