//! **Table II** — time to complete 1000 binary-xor reduce operations as a
//! function of payload size, for the two MPI profiles and MoNA.
//!
//! The paper runs 512 processes (32 nodes × 16); that many OS threads is
//! past a small host's budget, so the default here is 64 ranks and the
//! `--procs`/`--ops` flags rescale. Virtual times are scale-faithful.
//!
//! Run: `cargo run --release -p colza-bench --bin table2_reduce
//!       [--procs 64] [--ops 200] [--per-node 16] [--check-shape]
//!       [--trace results/BENCH_trace_reduce.json]`
//!
//! `--check-shape` re-verifies the paper's Table II shape numerically and
//! exits nonzero on violation: Cray-mpich fastest at every size, the
//! OpenMPI collapse (>= 50x Cray at >= 16 KiB), and MoNA within a small
//! factor of Cray-mpich (<= 8x, and <= 15 ms absolute at >= 16 KiB now
//! that large reduces are pipelined).

use std::sync::Arc;

use colza_bench::{table, Args, TraceOut};
use na::Fabric;

fn main() {
    let args = Args::parse();
    let trace = TraceOut::from_args(&args);
    let procs: usize = args.get("procs", 64);
    let ops: usize = args.get("ops", 200);
    let per_node: usize = args.get("per-node", 16);
    let sizes: &[(usize, &str)] = &[
        (8, "8 B"),
        (128, "128 B"),
        (2 * 1024, "2 KiB"),
        (16 * 1024, "16 KiB"),
        (32 * 1024, "32 KiB"),
    ];
    table::banner(
        "Table II: time (ms) to complete 1000 binary-xor reduce operations",
        &format!(
            "({procs} ranks, {per_node} per node; measured over {ops} ops of virtual time; \
             paper scale is 512 ranks)"
        ),
    );

    let mut rows = Vec::new();
    for &(size, label) in sizes {
        let cray = mpi_reduce(minimpi::Profile::Vendor, procs, per_node, size, ops);
        let open = mpi_reduce(minimpi::Profile::Open, procs, per_node, size, ops);
        let mona_t = mona_reduce(procs, per_node, size, ops);
        rows.push((
            label.to_string(),
            vec![to_ms(cray, ops), to_ms(open, ops), to_ms(mona_t, ops)],
        ));
    }
    table::print_table(
        "Message size",
        &["Cray-mpich", "OpenMPI", "MoNA"],
        &rows,
        "milliseconds per 1000 operations",
    );
    println!();
    println!("Paper shape checks:");
    println!("  - Cray-mpich fastest throughout");
    println!("  - OpenMPI collapses by orders of magnitude at >= 16 KiB");
    println!("    (rendezvous penalty x linear-reduce fallback)");
    println!("  - MoNA stays within a small factor of Cray-mpich");

    // Separate traced capture run so the table rows stay dark.
    if trace.wanted() {
        export_timeline(&trace, procs.min(16), per_node, 2 * 1024, ops.min(20));
    }

    if args.has("check-shape") {
        let mut violations = Vec::new();
        for ((size, label), row) in sizes.iter().zip(&rows) {
            let (cray, open, mona_ms) = (row.1[0], row.1[1], row.1[2]);
            if cray > open || cray > mona_ms {
                violations.push(format!("{label}: Cray-mpich is not fastest"));
            }
            if mona_ms / cray > 8.0 {
                violations.push(format!(
                    "{label}: MoNA is {:.1}x Cray-mpich (limit 8x)",
                    mona_ms / cray
                ));
            }
            if *size >= 16 * 1024 {
                if open / cray < 50.0 {
                    violations.push(format!(
                        "{label}: OpenMPI collapse missing ({:.1}x Cray-mpich, expected >= 50x)",
                        open / cray
                    ));
                }
                if mona_ms > 15.0 {
                    violations.push(format!(
                        "{label}: MoNA at {mona_ms:.3} ms (pipelined target <= 15 ms)"
                    ));
                }
            }
        }
        if violations.is_empty() {
            println!();
            println!("Shape check: OK ({} sizes verified)", sizes.len());
        } else {
            eprintln!();
            eprintln!("Shape check FAILED:");
            for v in &violations {
                eprintln!("  - {v}");
            }
            std::process::exit(1);
        }
    }
}

/// A traced MoNA reduce capture exported as a Perfetto timeline.
fn export_timeline(trace: &TraceOut, procs: usize, per_node: usize, size: usize, ops: usize) {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    trace.arm(&cluster);
    mona::testing::run_ranks(
        &cluster,
        procs,
        per_node,
        mona::MonaConfig::default(),
        move |comm| {
            let data = vec![(comm.rank() % 251) as u8; size];
            comm.barrier().unwrap();
            for _ in 0..ops {
                comm.reduce(&data, &mona::ops::bxor_u8, 0).unwrap();
            }
            comm.barrier().unwrap();
        },
    );
    trace.export(&cluster);
}

fn mpi_reduce(
    profile: minimpi::Profile,
    procs: usize,
    per_node: usize,
    size: usize,
    ops: usize,
) -> u64 {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let out = minimpi::MpiWorld::launch(&cluster, &fabric, procs, per_node, 0, profile, move |comm| {
        let data = vec![(comm.rank() % 251) as u8; size];
        let ctx = hpcsim::current();
        comm.barrier().unwrap();
        let before = ctx.now();
        for _ in 0..ops {
            comm.reduce(&data, &xor_op, 0).unwrap();
        }
        // Synchronize so the root's completion time is what we report.
        comm.barrier().unwrap();
        ctx.now() - before
    });
    *out.iter().max().unwrap()
}

fn mona_reduce(procs: usize, per_node: usize, size: usize, ops: usize) -> u64 {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    let out = mona::testing::run_ranks(
        &cluster,
        procs,
        per_node,
        mona::MonaConfig::default(),
        move |comm| {
            let data = vec![(comm.rank() % 251) as u8; size];
            let ctx = hpcsim::current();
            comm.barrier().unwrap();
            let before = ctx.now();
            for _ in 0..ops {
                comm.reduce(&data, &mona::ops::bxor_u8, 0).unwrap();
            }
            comm.barrier().unwrap();
            ctx.now() - before
        },
    );
    *out.iter().max().unwrap()
}

fn xor_op(acc: &mut [u8], other: &[u8]) {
    for (a, b) in acc.iter_mut().zip(other) {
        *a ^= b;
    }
}

fn to_ms(total_ns: u64, ops: usize) -> f64 {
    total_ns as f64 / 1e6 * (1000.0 / ops as f64)
}
