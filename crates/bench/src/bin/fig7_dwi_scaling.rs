//! **Figure 7** — Deep Water Impact: rendering time per iteration (the
//! payload grows every iteration) at several staging-area sizes, MPI vs
//! MoNA.
//!
//! Paper scale: 32 client processes reading 512 files per iteration;
//! 8/16/32/64 Colza processes. Scaled defaults sweep smaller sizes.
//!
//! Run: `cargo run --release -p colza-bench --bin fig7_dwi_scaling
//!       [--servers 2,4,8] [--blocks 16] [--clients 4] [--iters 30]`

use std::sync::Arc;

use colza::CommMode;
use colza_bench::{run_pipeline_experiment, table, Args, PipelineExperiment};
use sims::dwi::DwiSeries;

fn main() {
    let args = Args::parse();
    let server_list: Vec<usize> = args
        .get_str("servers", "2,4,8")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    let blocks: usize = args.get("blocks", 16);
    let clients: usize = args.get("clients", 4);
    let iters: u64 = args.get("iters", 30);
    table::banner(
        "Figure 7: Deep Water Impact rendering time per iteration",
        &format!(
            "({blocks} blocks over {clients} clients; growing mesh; \
             paper: 512 files, 8-64 Colza processes)"
        ),
    );

    let series = DwiSeries::scaled_down(blocks);
    let mut columns = Vec::new();
    let mut data: Vec<Vec<Option<u64>>> = vec![Vec::new(); iters as usize];
    for &servers in &server_list {
        for (mode, label) in [
            (CommMode::MpiStatic(minimpi::Profile::Vendor), "MPI"),
            (CommMode::Mona, "MoNA"),
        ] {
            columns.push(format!("{label}({servers})"));
            let times = run_experiment(servers, clients, mode, series, iters, blocks);
            for (i, t) in times.iter().enumerate() {
                data[i].push(Some(t.execute_ns));
            }
        }
    }
    let col_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let rows: Vec<(u64, Vec<Option<u64>>)> = data
        .into_iter()
        .enumerate()
        .map(|(i, vals)| (i as u64 + 1, vals))
        .collect();
    colza_bench::table::print_series("iteration", &col_refs, &rows);
    println!();
    println!("Paper shape: rendering time grows with the iteration number;");
    println!("more Colza processes keep it lower; MoNA is on par with MPI");
    println!("(occasionally faster at small scales thanks to shared memory).");
}

fn run_experiment(
    servers: usize,
    clients: usize,
    comm: CommMode,
    series: DwiSeries,
    iters: u64,
    blocks: usize,
) -> Vec<colza_bench::IterationTimes> {
    let make: Arc<dyn Fn(usize, u64, usize) -> Vec<(u64, vizkit::DataSet)> + Send + Sync> =
        Arc::new(move |rank, iter, n_clients| {
            // Blocks are distributed evenly across clients (as the proxy
            // distributes its VTU files).
            (0..blocks)
                .filter(|b| b % n_clients == rank)
                .map(|b| {
                    (
                        b as u64,
                        vizkit::DataSet::UGrid(series.generate_block(iter + 1, b)),
                    )
                })
                .collect()
        });
    let exp = PipelineExperiment::new(
        servers,
        clients,
        comm,
        catalyst::PipelineScript::deep_water_impact(256, 192),
        iters,
    );
    run_pipeline_experiment(exp, make)
}
