//! **Figure 1a** — cell counts and file sizes of the Deep Water Impact
//! dataset across its 30 iterations — and **Figure 1b** — volume
//! renderings of three iterations (pass `--render`).
//!
//! Run: `cargo run --release -p colza-bench --bin fig1_dwi_growth
//!       [--blocks 8] [--render] [--out /tmp]`

use colza_bench::{table, Args};
use hpcsim::stats::fmt_bytes;
use sims::dwi::DwiSeries;
use vizkit::Controller;

fn main() {
    let args = Args::parse();
    let blocks: usize = args.get("blocks", 8);
    table::banner(
        "Figure 1a: Deep Water Impact data growth over iterations",
        "(analytic series at paper scale; generated series at harness scale)",
    );
    let paper = DwiSeries::default();
    let local = DwiSeries::scaled_down(blocks);
    println!(
        "{:>9} {:>16} {:>14} {:>18}",
        "iteration", "paper cells (M)", "paper size", "generated cells"
    );
    for iter in 1..=30u64 {
        let generated = if iter % 3 == 1 {
            format!("{}", local.generated_cells(iter))
        } else {
            "-".to_string()
        };
        println!(
            "{iter:>9} {:>16.1} {:>14} {:>18}",
            paper.cells_at(iter) as f64 / 1e6,
            fmt_bytes(paper.bytes_at(iter)),
            generated
        );
    }
    println!();
    println!("Paper shape: ~4 M cells growing to ~132 M; file sizes to ~16 GiB.");

    if args.has("render") {
        let out_dir = std::path::PathBuf::from(args.get_str("out", "/tmp"));
        println!();
        println!("Figure 1b: renderings of iterations 1, 15, 30");
        let script = catalyst::PipelineScript::deep_water_impact(320, 240);
        for iter in [1u64, 15, 30] {
            let pipeline =
                catalyst::CatalystPipeline::new(script.clone(), catalyst::CatalystConfig::default());
            let merged: Vec<vizkit::DataSet> = (0..blocks)
                .map(|b| vizkit::DataSet::UGrid(local.generate_block(iter, b)))
                .collect();
            let ctrl = Controller::new(std::sync::Arc::new(vizkit::controller::DummyComm));
            let img = pipeline
                .execute(&merged, &ctrl)
                .expect("render")
                .expect("serial root image");
            let path = out_dir.join(format!("dwi_iter{iter:02}.ppm"));
            img.write_ppm(&path).expect("write ppm");
            println!(
                "  iteration {iter:>2}: {} ({:.1}% covered) -> {}",
                fmt_bytes((img.width * img.height * 3) as u64),
                img.coverage() * 100.0,
                path.display()
            );
        }
    }
}
