//! **Recovery bench** — crash-to-recovered-iteration latency for the
//! fault-tolerant collective path (DESIGN.md §12).
//!
//! A staging server is killed *inside a MoNA collective round* of
//! `execute` via a send-count crash rule: its Nth MoNA-plane send is the
//! last thing it ever produces, and everything outbound afterwards is
//! silently dropped. Survivors revoke the communicator instead of
//! hanging, their execute handlers abort the iteration retryably, and the
//! client's `execute_with_recovery` re-runs the activate 2PC on the
//! shrunk view and re-executes from store replicas.
//!
//! Reported per run: the virtual time and wall time from the crash trip
//! to the recovered iteration's completion, the SWIM rounds it took the
//! survivors to declare the death, and the abort/revoke/promotion
//! counters behind the recovery.
//!
//! Run: `cargo run --release -p colza-bench --bin bench_recovery
//!       [--runs 3] [--blocks 4] [--out results/BENCH_recovery.json]`

use std::sync::Arc;
use std::time::{Duration, Instant};

use colza::{AdminClient, BlockMeta, ColzaClient, ColzaDaemon, DaemonConfig};
use colza_bench::{table, Args};
use margo::{MargoInstance, RetryConfig};
use na::{Address, Fabric};
use store::{BlockKey, HashRing, RingConfig};

#[derive(serde::Serialize)]
struct Row {
    run: usize,
    blocks: u64,
    /// Serialized SWIM rounds until every survivor declared the death.
    detect_rounds: u64,
    /// Virtual ns from the crash trip to the recovered `execute` return.
    crash_to_recover_virtual_ns: u64,
    /// Wall-clock ms for the same interval (host-dependent).
    crash_to_recover_wall_ms: f64,
    aborted: u64,
    recoveries: u64,
    revoke_sent: u64,
    promoted: u64,
}

#[derive(serde::Serialize)]
struct Report {
    bench: &'static str,
    servers: usize,
    runs: usize,
    blocks: u64,
    rows: Vec<Row>,
}

fn main() {
    let args = Args::parse();
    let runs: usize = args.get("runs", 3);
    let blocks: u64 = args.get("blocks", 4);
    let out = args.get_str("out", "results/BENCH_recovery.json");
    table::banner(
        "Recovery bench: mid-collective crash to recovered iteration",
        &format!("(3 servers, {blocks} blocks, replication 2; {runs} runs)"),
    );
    println!(
        "{:>4} {:>8} {:>14} {:>12} {:>8} {:>10} {:>8} {:>9}",
        "run", "detect", "recover ms(v)", "wall ms", "aborted", "recovered", "revokes", "promoted"
    );

    let mut rows = Vec::new();
    for run in 0..runs {
        let row = run_once(run, blocks);
        println!(
            "{:>4} {:>8} {:>14.2} {:>12.2} {:>8} {:>10} {:>8} {:>9}",
            row.run,
            row.detect_rounds,
            row.crash_to_recover_virtual_ns as f64 / 1e6,
            row.crash_to_recover_wall_ms,
            row.aborted,
            row.recoveries,
            row.revoke_sent,
            row.promoted,
        );
        rows.push(row);
    }

    let report = Report {
        bench: "crash_recovery",
        servers: 3,
        runs,
        blocks,
        rows,
    };
    if let Some(dir) = std::path::Path::new(out.as_str()).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    match std::fs::write(&out, serde_json::to_string(&report).unwrap()) {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => eprintln!("\nfailed to write {out}: {e}"),
    }
    println!("Shape: virtual recovery time is dominated by the failure");
    println!("detector (SWIM rounds at one period each); the abort, the");
    println!("re-activate 2PC, and the replayed collective round are cheap");
    println!("next to declaring the death.");
}

/// One crash-and-recover cycle; returns the latency and the counters.
fn run_once(run: usize, blocks: u64) -> Row {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    cluster.shared().tracer().set_enabled(true);
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let conn = std::env::temp_dir().join(format!(
        "bench-recovery-{}-{run}.addrs",
        std::process::id()
    ));
    std::fs::remove_file(&conn).ok();
    let mut cfg = DaemonConfig::new(&conn);
    cfg.tick_interval = Duration::from_secs(3600); // harness-driven SWIM
    cfg.auto_repair = false; // all migration at the 2PC boundary
    // Generous deadline backstop: SWIM detects the death first; the
    // deadline only guards against a detector that never fires.
    cfg.mona.fault.recv_deadline = Some(Duration::from_secs(5));
    let mut daemons: Vec<ColzaDaemon> = (0..3)
        .map(|i| ColzaDaemon::spawn(&cluster, &fabric, i, cfg.clone()))
        .collect();
    for _ in 0..60 {
        for d in &daemons {
            d.tick_sync();
        }
    }
    assert!(
        daemons.iter().all(|d| d.view().len() == 3),
        "serialized gossip failed to converge"
    );
    let contact = daemons[0].address();

    // The victim is block 0's primary under the shared ring, so the
    // crash provably forces replica promotion during recovery.
    let members: Vec<Address> = {
        let mut m: Vec<Address> = daemons.iter().map(|d| d.address()).collect();
        m.sort_unstable();
        m
    };
    let ring_cfg = RingConfig {
        replication: 2,
        ..RingConfig::default()
    };
    let shared = Arc::clone(cluster.shared());
    let ring = HashRing::build(&members, |a| shared.node_of(a.pid()), ring_cfg);
    let victim_addr = ring.primary(&BlockKey::new("m", 0)).unwrap();
    let victim_idx = daemons
        .iter()
        .position(|d| d.address() == victim_addr)
        .unwrap();
    let victim_node = shared.node_of(victim_addr.pid()).unwrap();
    // Kill switch: the victim's 3rd MoNA-plane send (inside the execute
    // collectives) is its moment of death.
    cluster.shared().faults().crash_after_sends_now(
        victim_node,
        na::tags::MONA_BASE,
        na::tags::MPI_BASE - 1,
        2,
    );

    let script = catalyst::PipelineScript::mandelbulb(48, 48).to_json();
    let f2 = fabric.clone();
    let (staged_tx, staged_rx) = crossbeam::channel::bounded::<()>(1);
    let (executed_tx, executed_rx) = crossbeam::channel::bounded::<()>(1);
    let (done_tx, done_rx) = crossbeam::channel::bounded::<()>(1);
    let sim = cluster.spawn("sim", 8, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let view = client.view_from(contact).unwrap();
        admin
            .create_pipeline_on_all(&view, "catalyst", "m", &script)
            .unwrap();
        let mut handle = client.distributed_handle(contact, "m").unwrap();
        handle.set_replication(2);
        // Short per-try: the victim's reply is swallowed, so the call to
        // it must be re-probed without a ten-second stall.
        handle.set_heavy_retry(RetryConfig {
            max_attempts: 0,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(100),
            per_try_timeout: Duration::from_secs(2),
            deadline: Some(Duration::from_secs(120)),
            ..Default::default()
        });
        let bulb = sims::mandelbulb::Mandelbulb {
            dims: [12, 12, 12],
            ..Default::default()
        };
        handle.activate(0).unwrap();
        for b in 0..blocks {
            let payload = colza::codec::dataset_to_bytes(
                &bulb.generate_block(b as usize, blocks as usize),
            );
            handle
                .stage(
                    BlockMeta::new("m", b, 0, payload.len()),
                    &payload,
                )
                .unwrap();
        }
        staged_tx.send(()).unwrap();
        handle
            .execute_with_recovery(0)
            .expect("iteration must recover from the mid-collective crash");
        executed_tx.send(()).unwrap();
        done_rx.recv().unwrap();
        handle.deactivate(0).unwrap();
        margo.finalize();
    });

    staged_rx.recv().unwrap();
    let mut tripped = false;
    for _ in 0..30_000 {
        if cluster.shared().faults().crash_tripped(victim_node) {
            tripped = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(tripped, "the victim never hit its send-count crash budget");
    // The crash instant: start both clocks, then make it a real crash by
    // closing the victim's endpoint so probes fail fast.
    let shared = cluster.shared();
    let t0_virtual = shared.max_clock_ns();
    let t0_wall = Instant::now();
    daemons.remove(victim_idx).kill();
    let mut detect_rounds = 0u64;
    while daemons.iter().any(|d| d.view().contains(&victim_addr)) {
        for d in &daemons {
            d.tick_sync();
        }
        detect_rounds += 1;
        assert!(
            detect_rounds < 500,
            "survivors never declared the victim dead"
        );
    }
    for _ in 0..10 {
        for d in &daemons {
            d.tick_sync();
        }
    }

    executed_rx.recv().unwrap();
    let t1_virtual = shared.max_clock_ns();
    let wall = t0_wall.elapsed();
    done_tx.send(()).unwrap();
    sim.join();

    let snap = shared.trace_snapshot();
    let row = Row {
        run,
        blocks,
        detect_rounds,
        crash_to_recover_virtual_ns: t1_virtual.saturating_sub(t0_virtual),
        crash_to_recover_wall_ms: wall.as_secs_f64() * 1e3,
        aborted: snap.counter_total("colza.exec.aborted"),
        recoveries: snap.counter_total("colza.exec.recoveries"),
        revoke_sent: snap.counter_total("mona.revoke.sent"),
        promoted: snap.counter_total("colza.store.promoted.blocks")
            + snap.counter_total("colza.store.exec.promoted"),
    };
    for d in daemons {
        d.stop();
    }
    std::fs::remove_file(&conn).ok();
    row
}
