//! **Figure 9** — exercising elasticity with the Mandelbulb workload:
//! per-iteration durations of `activate`, `stage`, `execute` and
//! `deactivate` while the staging area grows one node at a time.
//!
//! Paper scale: 256 clients × 1 block, Colza resized from 2 to 8 nodes
//! every 60 s. Here growth happens every other iteration (the paper's
//! Fig. 10 protocol), which exercises exactly the same machinery.
//!
//! Run: `cargo run --release -p colza-bench --bin fig9_elastic_mandelbulb
//!       [--start 2] [--end 8] [--clients 4] [--grid 16]`

use std::sync::Arc;

use colza::CommMode;
use colza_bench::{run_pipeline_experiment, table, Args, PipelineExperiment};
use sims::mandelbulb::Mandelbulb;

fn main() {
    let args = Args::parse();
    let start: usize = args.get("start", 2);
    let end: usize = args.get("end", 8);
    let clients: usize = args.get("clients", 4);
    let grid: usize = args.get("grid", 16);
    let blocks_per_client: usize = args.get("blocks-per-client", 4);
    assert!(end >= start);

    // One new server every other iteration until `end` is reached, then a
    // few steady iterations.
    let growth_steps = end - start;
    let iterations = (growth_steps as u64) * 2 + 4;
    let grow_at: Vec<(u64, usize)> = (0..growth_steps).map(|i| (2 + 2 * i as u64, 1)).collect();

    table::banner(
        "Figure 9: per-call durations while the staging area grows",
        &format!(
            "(Mandelbulb, {clients} clients x {blocks_per_client} blocks; servers {start} -> {end}; \
             paper: 256 blocks, 2 -> 8 nodes)"
        ),
    );

    let total_blocks = clients * blocks_per_client;
    let make: Arc<dyn Fn(usize, u64, usize) -> Vec<(u64, vizkit::DataSet)> + Send + Sync> =
        Arc::new(move |rank, _iter, _clients| {
            let m = Mandelbulb {
                dims: [grid, grid, 4 * total_blocks],
                ..Default::default()
            };
            (0..blocks_per_client)
                .map(|b| {
                    let id = rank * blocks_per_client + b;
                    (id as u64, m.generate_block(id, total_blocks))
                })
                .collect()
        });

    let mut exp = PipelineExperiment::new(
        start,
        clients,
        CommMode::Mona,
        catalyst::PipelineScript::mandelbulb(256, 256),
        iterations,
    );
    exp.grow_at = grow_at;
    let times = run_pipeline_experiment(exp, make);

    let rows: Vec<(u64, Vec<Option<u64>>)> = times
        .iter()
        .map(|t| {
            (
                t.iteration,
                vec![
                    Some(t.servers as u64),
                    Some(t.activate_ns),
                    Some(t.stage_ns),
                    Some(t.execute_ns),
                    Some(t.deactivate_ns),
                ],
            )
        })
        .collect();
    println!(
        "{:>10} {:>18} {:>18} {:>18} {:>18} {:>18}",
        "iteration", "servers", "activate", "stage", "execute", "deactivate"
    );
    for (iter, vals) in &rows {
        print!("{iter:>10} {:>18}", vals[0].unwrap());
        for v in &vals[1..] {
            print!(" {:>18}", hpcsim::stats::fmt_ns(v.unwrap()));
        }
        println!();
    }
    println!();
    println!("Paper shape: execute time falls as servers are added, spiking on");
    println!("join iterations (pipeline init on the new node); activate/stage/");
    println!("deactivate are negligible (ms-scale; paper: 4 ms / 100 ms / 0.6 ms).");
}
