//! **Collective engine sweep** — virtual-time cost of MoNA's collectives
//! across message sizes and communicator sizes, with the size-adaptive
//! engine (pipelined trees + Rabenseifner allreduce) measured against the
//! naive whole-payload algorithms ([`mona::MonaConfig::naive_collectives`]).
//!
//! Emits JSON rows keyed by op/size/algorithm to `results/BENCH_coll.json`
//! so the selection table in DESIGN.md §11 stays justified by data.
//!
//! Run: `cargo run --release -p colza-bench --bin bench_coll
//!       [--out results/BENCH_coll.json] [--smoke] [--assert]`
//!
//! `--smoke` shrinks the sweep for CI; `--assert` exits nonzero unless the
//! adaptive engine beats the naive one for every op at sizes above the
//! pipeline switchover.

use std::io::Write;

use colza_bench::Args;

#[derive(Clone, Copy, PartialEq)]
enum Op {
    Bcast,
    Reduce,
    Allreduce,
    Allgather,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Bcast => "bcast",
            Op::Reduce => "reduce",
            Op::Allreduce => "allreduce",
            Op::Allgather => "allgather",
        }
    }
}

#[derive(serde::Serialize)]
struct Row {
    op: &'static str,
    ranks: usize,
    size: usize,
    engine: &'static str,
    algorithm: &'static str,
    ns_per_op: u64,
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let out_path = args.get_str("out", "results/BENCH_coll.json");

    let sizes: Vec<usize> = if smoke {
        vec![2 * 1024, 64 * 1024]
    } else {
        vec![128, 2 * 1024, 16 * 1024, 128 * 1024, 1024 * 1024, 4 * 1024 * 1024]
    };
    let rank_counts: Vec<usize> = if smoke { vec![16] } else { vec![16, 64] };
    let ops = [Op::Bcast, Op::Reduce, Op::Allreduce, Op::Allgather];

    let mut rows = Vec::new();
    for &ranks in &rank_counts {
        for &size in &sizes {
            for op in ops {
                // Allgather materializes n * size bytes on every rank; cap
                // the total so the sweep stays host-friendly.
                if op == Op::Allgather && size * ranks > 1024 * 1024 {
                    continue;
                }
                let iters = if smoke {
                    3
                } else if size >= 1024 * 1024 {
                    5
                } else if size >= 64 * 1024 {
                    10
                } else {
                    30
                };
                for (engine, config) in [
                    ("adaptive", mona::MonaConfig::default()),
                    ("naive", mona::MonaConfig::naive_collectives()),
                ] {
                    let algorithm = algorithm_label(&config.coll, op, size, ranks);
                    let ns = measure(op, config, ranks, size, iters);
                    println!(
                        "{:>9} n={ranks:<3} {:>9} B  {engine:<8} {algorithm:<22} {:>12} ns/op",
                        op.name(),
                        size,
                        ns
                    );
                    rows.push(Row {
                        op: op.name(),
                        ranks,
                        size,
                        engine,
                        algorithm,
                        ns_per_op: ns,
                    });
                }
            }
        }
    }

    write_json(&out_path, &rows);
    println!("\nwrote {} rows to {out_path}", rows.len());

    if args.has("assert") {
        let failures = check_adaptive_wins(&rows);
        if failures.is_empty() {
            println!("Assert: adaptive engine beats naive above the switchover (OK)");
        } else {
            eprintln!("Assert FAILED:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
    }
}

fn algorithm_label(coll: &mona::CollTuning, op: Op, size: usize, n: usize) -> &'static str {
    match op {
        Op::Bcast | Op::Reduce => coll.tree_algorithm(size, n),
        Op::Allreduce => coll.allreduce_algorithm(size, n),
        Op::Allgather => coll.allgather_algorithm(size, n),
    }
}

/// Maximum per-rank virtual time for `iters` back-to-back collectives.
fn measure(op: Op, config: mona::MonaConfig, ranks: usize, size: usize, iters: usize) -> u64 {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    let out = mona::testing::run_ranks(&cluster, ranks, 16, config, move |comm| {
        let data = vec![(comm.rank() % 251) as u8; size];
        let ctx = hpcsim::current();
        comm.barrier().unwrap();
        let before = ctx.now();
        for _ in 0..iters {
            match op {
                Op::Bcast => {
                    comm.bcast((comm.rank() == 0).then_some(&data[..]), 0).unwrap();
                }
                Op::Reduce => {
                    comm.reduce(&data, &mona::ops::bxor_u8, 0).unwrap();
                }
                Op::Allreduce => {
                    comm.allreduce(&data, &mona::ops::bxor_u8).unwrap();
                }
                Op::Allgather => {
                    comm.allgather(&data).unwrap();
                }
            }
        }
        comm.barrier().unwrap();
        ctx.now() - before
    });
    out.into_iter().max().unwrap() / iters as u64
}

/// For every (op, ranks, size) where the adaptive engine picked a different
/// algorithm than naive, the adaptive time must not lose.
fn check_adaptive_wins(rows: &[Row]) -> Vec<String> {
    let mut failures = Vec::new();
    for a in rows.iter().filter(|r| r.engine == "adaptive") {
        let Some(naive) = rows.iter().find(|r| {
            r.engine == "naive" && r.op == a.op && r.ranks == a.ranks && r.size == a.size
        }) else {
            continue;
        };
        if a.algorithm == naive.algorithm {
            continue; // below the switchover: engines run the same code
        }
        if a.ns_per_op >= naive.ns_per_op {
            failures.push(format!(
                "{} n={} size={}: {} at {} ns/op does not beat {} at {} ns/op",
                a.op, a.ranks, a.size, a.algorithm, a.ns_per_op, naive.algorithm, naive.ns_per_op
            ));
        }
    }
    failures
}

fn write_json(path: &str, rows: &[Row]) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    let mut f = std::fs::File::create(path).expect("create output file");
    let body = serde_json::to_string(&rows).expect("serialize rows");
    writeln!(f, "{body}").expect("write output file");
}
