//! **Figure 6** — Gray–Scott strong scaling: fixed total data volume,
//! varying staging-area size, MPI vs MoNA.
//!
//! Paper scale: 512 clients on 16 nodes, 2 GB per iteration, 4–128
//! servers. Scaled defaults keep the protocol: a fixed global grid
//! partitioned across a fixed client count, servers swept.
//!
//! Run: `cargo run --release -p colza-bench --bin fig6_grayscott_strong
//!       [--max-servers 8] [--grid 32] [--clients 4] [--iters 5]`

use std::sync::Arc;

use colza::CommMode;
use colza_bench::{run_pipeline_experiment, table, Args, PipelineExperiment};
use hpcsim::stats::fmt_ns;
use parking_lot::Mutex;
use sims::gray_scott::{GrayScott, GrayScottParams};

fn main() {
    let args = Args::parse();
    let max_servers: usize = args.get("max-servers", 8);
    let grid: usize = args.get("grid", 32);
    let clients: usize = args.get("clients", 4);
    let iters: u64 = args.get("iters", 5);
    let steps_per_iter: usize = args.get("steps", 5);
    table::banner(
        "Figure 6: Gray-Scott strong scaling (pipeline execution time)",
        &format!(
            "(global grid {grid}^3 over {clients} clients, fixed; {iters} iterations + warmup; \
             paper: 2 GB per iteration over 4-128 servers)"
        ),
    );
    println!("{:>8} {:>16} {:>16}", "servers", "MPI", "MoNA");

    let mut servers = 1;
    while servers <= max_servers {
        let mpi = average_execute(
            servers,
            clients,
            CommMode::MpiStatic(minimpi::Profile::Vendor),
            grid,
            iters,
            steps_per_iter,
        );
        let mona_t = average_execute(servers, clients, CommMode::Mona, grid, iters, steps_per_iter);
        println!("{servers:>8} {:>16} {:>16}", fmt_ns(mpi), fmt_ns(mona_t));
        servers *= 2;
    }
    println!();
    println!("Paper shape: execution time falls with server count (strong scaling);");
    println!("MoNA tracks MPI closely at every size.");
}

fn average_execute(
    servers: usize,
    clients: usize,
    comm: CommMode,
    grid: usize,
    iters: u64,
    steps: usize,
) -> u64 {
    // Persistent simulation state per client rank across iterations.
    let sims: Arc<Mutex<Vec<Option<GrayScott>>>> =
        Arc::new(Mutex::new((0..clients).map(|_| None).collect()));
    let make: Arc<dyn Fn(usize, u64, usize) -> Vec<(u64, vizkit::DataSet)> + Send + Sync> =
        Arc::new(move |rank, _iter, n_clients| {
            let mut sims = sims.lock();
            let sim = sims[rank].get_or_insert_with(|| {
                GrayScott::new(grid, rank, n_clients, GrayScottParams::default())
            });
            // Advance the simulation serially (the ghost planes wrap within
            // the slab; physics fidelity across slabs is not what this
            // figure measures - data volume and pipeline cost are).
            for _ in 0..steps {
                sim.exchange_ghosts(None).expect("ghosts");
                sim.step();
            }
            vec![(rank as u64, sim.to_dataset())]
        });
    let mut exp = PipelineExperiment::new(
        servers,
        clients,
        comm,
        catalyst::PipelineScript::gray_scott(256, 256),
        iters + 1,
    );
    exp.clients_per_node = 32.min(clients.max(1));
    let times = run_pipeline_experiment(exp, make);
    let rest: Vec<u64> = times.iter().skip(1).map(|t| t.execute_ns).collect();
    (rest.iter().sum::<u64>() / rest.len().max(1) as u64).max(1)
}
