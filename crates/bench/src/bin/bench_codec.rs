//! **Codec sweep** — bytes-on-wire and host encode/decode cost for every
//! staging codec (DESIGN.md §13) across the three paper workloads:
//!
//! * `gray-scott` — slowly varying regular grid, the delta-codec target;
//! * `mandelbulb` — smooth static-ish scalar field (power drifts per
//!   iteration so deltas are small but nonzero);
//! * `dwi` — growing unstructured mesh whose size changes every iteration,
//!   forcing the delta codec to anchor (honest worst case).
//!
//! Emits JSON rows to `results/BENCH_codec.json` with bytes-in,
//! bytes-on-wire, compression ratio, host-clock encode/decode throughput
//! and the observed max elementwise error (zero for lossless codecs).
//!
//! Run: `cargo run --release -p colza-bench --bin bench_codec
//!       [--out results/BENCH_codec.json] [--smoke] [--assert]`
//!
//! `--smoke` shrinks grids and iteration counts for CI; `--assert` exits
//! nonzero unless the delta codec cuts Gray–Scott wire bytes by at least
//! 1.5x (the gate `scripts/check.sh` runs).

use std::io::Write;
use std::time::Instant;

use bytes::Bytes;
use colza::codec::{self, CodecId, CodecSpec};
use colza_bench::Args;
use vizkit::{DataArray, DataSet};

const LOSSY_BOUND: f32 = 1e-3;

#[derive(serde::Serialize)]
struct Row {
    series: &'static str,
    codec: &'static str,
    iterations: usize,
    bytes_in: u64,
    bytes_wire: u64,
    ratio: f64,
    encode_ns: u64,
    decode_ns: u64,
    encode_mb_per_s: f64,
    decode_mb_per_s: f64,
    max_abs_err: f64,
}

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let out_path = args.get_str("out", "results/BENCH_codec.json");

    let iters = if smoke { 3 } else { 6 };
    let series: Vec<(&'static str, Vec<Bytes>)> = vec![
        ("gray-scott", gray_scott_series(if smoke { 32 } else { 64 }, iters)),
        ("mandelbulb", mandelbulb_series(if smoke { 24 } else { 48 }, iters)),
        ("dwi", dwi_series(iters)),
    ];
    let codecs: Vec<(&'static str, CodecSpec)> = vec![
        ("raw", CodecSpec::Raw),
        ("shuffle_lz", CodecSpec::ShuffleLz),
        ("lossy", CodecSpec::Lossy { error_bound: LOSSY_BOUND }),
        ("delta", CodecSpec::Delta),
    ];

    let mut rows = Vec::new();
    for (name, payloads) in &series {
        for &(codec_name, spec) in &codecs {
            let row = sweep(name, codec_name, spec, payloads);
            println!(
                "{:>11} {:<10} in={:>9} B  wire={:>9} B  ratio={:>5.2}  enc={:>7.1} MB/s  dec={:>7.1} MB/s  err={:.2e}",
                row.series,
                row.codec,
                row.bytes_in,
                row.bytes_wire,
                row.ratio,
                row.encode_mb_per_s,
                row.decode_mb_per_s,
                row.max_abs_err,
            );
            rows.push(row);
        }
    }

    write_json(&out_path, &rows);
    println!("\nwrote {} rows to {out_path}", rows.len());

    if args.has("assert") {
        let gs_delta = rows
            .iter()
            .find(|r| r.series == "gray-scott" && r.codec == "delta")
            .expect("gray-scott delta row");
        if gs_delta.ratio >= 1.5 {
            println!(
                "Assert: gray-scott delta wire reduction {:.2}x >= 1.5x (OK)",
                gs_delta.ratio
            );
        } else {
            eprintln!(
                "Assert FAILED: gray-scott delta wire reduction {:.2}x < 1.5x",
                gs_delta.ratio
            );
            std::process::exit(1);
        }
    }
}

/// Encodes the iteration series with one codec, decoding every frame back
/// and comparing against the original dataset for the error column.
fn sweep(series: &'static str, codec_name: &'static str, spec: CodecSpec, payloads: &[Bytes]) -> Row {
    let mut bytes_in = 0u64;
    let mut bytes_wire = 0u64;
    let mut encode_ns = 0u64;
    let mut decode_ns = 0u64;
    let mut max_abs_err = 0f64;
    // The delta chain threads the *decoded* previous payload, exactly what
    // `DistributedPipelineHandle::stage` caches client-side.
    let mut prev: Option<Bytes> = None;

    for (i, payload) in payloads.iter().enumerate() {
        let base = match spec {
            CodecSpec::Delta => prev.as_ref().map(|p| (p, (i - 1) as u64)),
            _ => None,
        };
        let t0 = Instant::now();
        let enc = codec::encode_block(spec, payload, base.map(|(p, it)| (p, it))).expect("encode");
        encode_ns += t0.elapsed().as_nanos() as u64;

        bytes_in += payload.len() as u64;
        bytes_wire += enc.frame.len() as u64;

        let dec_base = match enc.codec {
            CodecId::DeltaDiff => prev.clone(),
            _ => None,
        };
        let t1 = Instant::now();
        let plain = codec::decode_block(enc.codec, &enc.frame, dec_base.as_ref()).expect("decode");
        decode_ns += t1.elapsed().as_nanos() as u64;

        match spec {
            CodecSpec::Lossy { .. } => {
                let err = dataset_max_err(payload, &plain);
                // Lattice points are rounded to the nearest representable
                // f32, so the bound holds up to ~ulp/2 of the values.
                let tol = LOSSY_BOUND as f64 * 1.001 + 1e-5;
                assert!(err <= tol, "{series}: lossy error {err} exceeds bound {LOSSY_BOUND}");
                max_abs_err = max_abs_err.max(err);
            }
            _ => assert_eq!(&plain[..], &payload[..], "{series}/{codec_name}: lossless roundtrip"),
        }

        // What lands in the store (and the next delta base) is the decoded
        // payload, so lossy chains never accumulate error.
        prev = Some(plain);
    }

    Row {
        series,
        codec: codec_name,
        iterations: payloads.len(),
        bytes_in,
        bytes_wire,
        ratio: bytes_in as f64 / bytes_wire.max(1) as f64,
        encode_ns,
        decode_ns,
        encode_mb_per_s: mb_per_s(bytes_in, encode_ns),
        decode_mb_per_s: mb_per_s(bytes_in, decode_ns),
        max_abs_err,
    }
}

fn mb_per_s(bytes: u64, ns: u64) -> f64 {
    if ns == 0 {
        return f64::INFINITY;
    }
    (bytes as f64 / (1024.0 * 1024.0)) / (ns as f64 / 1e9)
}

/// Max elementwise attribute error between the original and decoded
/// serialized datasets (geometry is kept exact by the lossy codec).
fn dataset_max_err(original: &Bytes, decoded: &Bytes) -> f64 {
    let a = codec::dataset_from_bytes(original).expect("original parses");
    let b = codec::dataset_from_bytes(decoded).expect("decoded parses");
    let pairs: Vec<(&vizkit::Attributes, &vizkit::Attributes)> = match (&a, &b) {
        (DataSet::Image(x), DataSet::Image(y)) => {
            vec![(&x.point_data, &y.point_data), (&x.cell_data, &y.cell_data)]
        }
        (DataSet::UGrid(x), DataSet::UGrid(y)) => {
            vec![(&x.point_data, &y.point_data), (&x.cell_data, &y.cell_data)]
        }
        (DataSet::Poly(x), DataSet::Poly(y)) => vec![(&x.point_data, &y.point_data)],
        _ => panic!("dataset kind changed across the codec"),
    };
    let mut max = 0f64;
    for (at_a, at_b) in pairs {
        for (name, arr_a) in at_a.iter() {
            let arr_b = at_b.get(name).expect("attribute survives");
            if let DataArray::U8(_) | DataArray::I32(_) = arr_a {
                continue; // integers pass through exactly
            }
            assert_eq!(arr_a.len(), arr_b.len());
            for i in 0..arr_a.len() {
                let d = (arr_a.get(i) - arr_b.get(i)).abs();
                if d.is_finite() {
                    max = max.max(d);
                }
            }
        }
    }
    max
}

/// Serial Gray–Scott slab: warm up past the seed noise, then capture the
/// field every couple of steps — the slowly-varying series the delta
/// codec is designed for.
fn gray_scott_series(n: usize, iters: usize) -> Vec<Bytes> {
    // Small dt = the paper's cadence of rendering every solver step: the
    // field drifts slowly between captures, which is the delta target.
    let params = sims::gray_scott::GrayScottParams { dt: 0.1, ..Default::default() };
    let mut sim = sims::gray_scott::GrayScott::serial(n, params);
    sim.run(200, None).expect("warmup");
    let mut out = Vec::with_capacity(iters);
    for _ in 0..iters {
        sim.run(1, None).expect("step");
        out.push(codec::dataset_to_bytes(&sim.to_dataset()));
    }
    out
}

/// Mandelbulb with a slowly drifting fractal power, so consecutive
/// iterations differ smoothly instead of being bit-identical.
fn mandelbulb_series(dim: usize, iters: usize) -> Vec<Bytes> {
    (0..iters)
        .map(|i| {
            let bulb = sims::mandelbulb::Mandelbulb {
                dims: [dim, dim, dim],
                power: 8.0 + 0.05 * i as f32,
                ..Default::default()
            };
            codec::dataset_to_bytes(&bulb.generate_block(0, 1))
        })
        .collect()
}

/// Deep-water-impact proxy: the mesh grows every iteration, so payload
/// sizes differ and the delta codec must re-anchor each frame.
fn dwi_series(iters: usize) -> Vec<Bytes> {
    let series = sims::dwi::DwiSeries { total_blocks: 8, scale: 1.0 / 4096.0, iterations: iters as u64 };
    (0..iters)
        .map(|i| codec::dataset_to_bytes(&DataSet::UGrid(series.generate_block(i as u64, 0))))
        .collect()
}

fn write_json(path: &str, rows: &[Row]) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    let mut f = std::fs::File::create(path).expect("create output file");
    let body = serde_json::to_string(&rows).expect("serialize rows");
    writeln!(f, "{body}").expect("write output file");
}
