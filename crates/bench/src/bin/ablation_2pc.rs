//! **Ablation (§II-E / DESIGN.md §6)** — cost of the `activate` two-phase
//! commit: (a) when the group has not changed since the last iteration
//! (the common case — the paper reports "no overhead"), and (b) when the
//! group changed right before activate, forcing view refresh and retry
//! (the paper reports "an overhead in the order of a second", dominated
//! by gossip propagation).
//!
//! Also sweeps the SWIM gossip period to show the Fig. 4 sensitivity the
//! paper mentions ("this overhead depends on SSG's configuration").
//!
//! Run: `cargo run --release -p colza-bench --bin ablation_2pc`

use std::sync::Arc;

use colza::daemon::{launch_group, settle_views};
use colza::{AdminClient, ColzaClient, ColzaDaemon, DaemonConfig};
use colza_bench::{table, Args};
use hpcsim::stats::fmt_ns;
use margo::MargoInstance;
use na::Fabric;

fn main() {
    let args = Args::parse();
    let servers: usize = args.get("servers", 4);
    let iters: usize = args.get("iters", 20);
    table::banner(
        "Ablation: activate-2PC cost, unchanged vs changed group",
        &format!("({servers} servers, {iters} steady activations)"),
    );

    // (a) Steady state: repeated activates on an unchanged group.
    let steady = steady_activate_ns(servers, iters);
    println!(
        "steady-state activate (group unchanged): mean {} over {iters} calls",
        fmt_ns(steady)
    );

    // (b) A join lands between the client's view fetch and its activate:
    // the 2PC must abort, refresh, and retry.
    let churn = churn_activate_ns(servers);
    println!("activate across a membership change:    {}", fmt_ns(churn));
    println!();

    // SWIM period sensitivity (Fig. 4's "depends on SSG configuration").
    println!("SWIM-period sensitivity of join propagation:");
    for period_ms in [250u64, 500, 1000, 2000] {
        let t = join_propagation_ns(4, period_ms);
        println!("  period {period_ms:>5} ms -> propagation {}", fmt_ns(t));
    }
    println!();
    println!("Paper shape: no overhead when the group is unchanged. The ~1 s");
    println!("order the paper reports for a changed group is dominated by gossip");
    println!("propagation (the sensitivity sweep above); the 2PC retry itself,");
    println!("measured here against an already-settled view, costs microseconds.");
}

fn env(tag: &str) -> (hpcsim::Cluster, Fabric, DaemonConfig) {
    let cluster = hpcsim::Cluster::new(hpcsim::ClusterConfig::aries());
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let conn = std::env::temp_dir().join(format!("abl2pc-{tag}-{}.addrs", std::process::id()));
    std::fs::remove_file(&conn).ok();
    (cluster, fabric, DaemonConfig::new(conn))
}

fn steady_activate_ns(servers: usize, iters: usize) -> u64 {
    let (cluster, fabric, cfg) = env("steady");
    let daemons = launch_group(&cluster, &fabric, servers, 4, 0, &cfg);
    let contact = daemons[0].address();
    let f2 = fabric.clone();
    let mean = cluster
        .spawn("sim", 8, move || {
            let margo = MargoInstance::init(&f2);
            let client = ColzaClient::new(Arc::clone(&margo));
            let admin = AdminClient::new(Arc::clone(&margo));
            let view = client.view_from(contact).unwrap();
            admin
                .create_pipeline_on_all(&view, "null", "p", "")
                .unwrap();
            let handle = client.distributed_handle(contact, "p").unwrap();
            let ctx = hpcsim::current();
            let mut total = 0u64;
            for i in 0..iters as u64 {
                let before = ctx.now();
                handle.activate(i).unwrap();
                total += ctx.now() - before;
                handle.deactivate(i).unwrap();
            }
            margo.finalize();
            total / iters as u64
        })
        .join();
    for d in daemons {
        d.stop();
    }
    mean
}

fn churn_activate_ns(servers: usize) -> u64 {
    let (cluster, fabric, cfg) = env("churn");
    let mut daemons = launch_group(&cluster, &fabric, servers, 4, 0, &cfg);
    let contact = daemons[0].address();
    let (go_tx, go_rx) = crossbeam::channel::bounded::<()>(1);
    let (grown_tx, grown_rx) = crossbeam::channel::bounded::<()>(1);
    let f2 = fabric.clone();
    let sim = cluster.spawn("sim", 8, move || {
        let margo = MargoInstance::init(&f2);
        let client = ColzaClient::new(Arc::clone(&margo));
        let admin = AdminClient::new(Arc::clone(&margo));
        let view = client.view_from(contact).unwrap();
        admin
            .create_pipeline_on_all(&view, "null", "p", "")
            .unwrap();
        let handle = client.distributed_handle(contact, "p").unwrap();
        // Handle's view is now stale: the harness grows the group.
        go_tx.send(()).unwrap();
        grown_rx.recv().unwrap();
        // The newcomer also needs the pipeline before activate can commit.
        let fresh = client.view_from(contact).unwrap();
        admin
            .create_pipeline_on_all(&fresh, "null", "p", "")
            .unwrap();
        let ctx = hpcsim::current();
        let before = ctx.now();
        handle.activate(0).unwrap();
        let span = ctx.now() - before;
        handle.deactivate(0).unwrap();
        margo.finalize();
        span
    });
    go_rx.recv().unwrap();
    let newcomer = ColzaDaemon::spawn(&cluster, &fabric, 9, cfg.clone());
    daemons.push(newcomer);
    settle_views(&daemons, servers + 1);
    grown_tx.send(()).unwrap();
    let span = sim.join();
    for d in daemons {
        d.stop();
    }
    span
}

fn join_propagation_ns(n: usize, period_ms: u64) -> u64 {
    let (cluster, fabric, mut cfg) = env(&format!("period{period_ms}"));
    cfg.ssg.period_ns = period_ms * hpcsim::MS;
    let mut daemons = launch_group(&cluster, &fabric, n, 4, 0, &cfg);
    let t0 = cluster.shared().max_clock_ns();
    let newcomer = ColzaDaemon::spawn(&cluster, &fabric, 5, cfg.clone());
    daemons.push(newcomer);
    settle_views(&daemons, n + 1);
    let t1 = daemons
        .iter()
        .map(|d| {
            cluster
                .shared()
                .clock_of(d.address().pid())
                .map(|c| c.now())
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(t0);
    for d in daemons {
        d.stop();
    }
    t1.saturating_sub(t0)
}
