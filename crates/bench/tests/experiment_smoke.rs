//! Smoke tests for the shared experiment runner (static, static-MPI, and
//! elastic configurations at tiny scales).

use std::sync::Arc;

use colza::CommMode;
use colza_bench::{run_pipeline_experiment, PipelineExperiment};
use sims::mandelbulb::Mandelbulb;

fn mandelbulb_blocks(
    blocks_per_client: usize,
) -> Arc<dyn Fn(usize, u64, usize) -> Vec<(u64, vizkit::DataSet)> + Send + Sync> {
    Arc::new(move |rank, _iter, clients| {
        let total = clients * blocks_per_client;
        let m = Mandelbulb {
            dims: [12, 12, total.next_power_of_two().max(4) * 3],
            ..Default::default()
        };
        (0..blocks_per_client)
            .map(|b| {
                let id = rank * blocks_per_client + b;
                (id as u64, m.generate_block(id, total))
            })
            .collect()
    })
}

#[test]
fn static_mona_experiment_completes() {
    let exp = PipelineExperiment::new(
        2,
        2,
        CommMode::Mona,
        catalyst::PipelineScript::mandelbulb(24, 24),
        2,
    );
    let times = run_pipeline_experiment(exp, mandelbulb_blocks(2));
    assert_eq!(times.len(), 2);
    for t in &times {
        assert_eq!(t.servers, 2);
        assert!(t.execute_ns > 0);
        assert!(t.activate_ns > 0);
    }
    // The first iteration pays pipeline initialization.
    assert!(times[0].execute_ns > times[1].execute_ns);
}

#[test]
fn static_mpi_experiment_completes() {
    let exp = PipelineExperiment::new(
        2,
        2,
        CommMode::MpiStatic(minimpi::Profile::Vendor),
        catalyst::PipelineScript::mandelbulb(24, 24),
        2,
    );
    let times = run_pipeline_experiment(exp, mandelbulb_blocks(1));
    assert_eq!(times.len(), 2);
    assert!(times.iter().all(|t| t.execute_ns > 0));
}

#[test]
fn elastic_growth_changes_server_count() {
    let mut exp = PipelineExperiment::new(
        1,
        2,
        CommMode::Mona,
        catalyst::PipelineScript::mandelbulb(24, 24),
        4,
    );
    exp.grow_at = vec![(2, 1)];
    let times = run_pipeline_experiment(exp, mandelbulb_blocks(2));
    assert_eq!(times.len(), 4);
    assert_eq!(times[0].servers, 1);
    assert_eq!(times[1].servers, 1);
    assert_eq!(times[2].servers, 2, "growth before iteration 2");
    assert_eq!(times[3].servers, 2);
}
