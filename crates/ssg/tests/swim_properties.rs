//! Property tests: SWIM membership must stay converged under sustained
//! packet loss.
//!
//! This drives the pure [`SwimState`] machine through a simulated lossy
//! network reproducing the `SsgGroup` probe protocol (direct ping with one
//! retry, then indirect ping-req through k helpers). A false `Dead` is
//! permanent in this SWIM variant, so the property is strong: for loss
//! rates up to 20%, no member may ever be falsely declared dead and every
//! view must equal the full roster at the end.

use na::Address;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ssg::swim::{Status, SwimConfig, SwimState, Update};

/// Direct-ping retries (mirrors `SsgConfig::ping_retries` default).
const PING_RETRIES: usize = 1;
/// Indirect-probe fanout, tuned up from the gossip default of 2 so the
/// probe path survives 20% loss (`(1-0.8^4)^3` residual per probe).
const PINGREQ_K: usize = 3;

struct LossyNet {
    rng: SmallRng,
    loss: f64,
}

impl LossyNet {
    /// One message leg: true if it survives the wire.
    fn leg(&mut self) -> bool {
        self.rng.random::<f64>() >= self.loss
    }
}

/// Target of one ping exchange: `src` sends its updates, `dst` applies
/// them and replies with its own. Each direction is one lossy leg.
fn ping(
    net: &mut LossyNet,
    states: &mut [SwimState],
    src: usize,
    dst: usize,
    updates: &[Update],
) -> bool {
    if !net.leg() {
        return false;
    }
    for &u in updates {
        states[dst].apply_update(u);
    }
    let reply = states[dst].take_piggyback();
    if !net.leg() {
        return false;
    }
    for u in reply {
        states[src].apply_update(u);
    }
    true
}

/// One protocol round for every node: advance, probe (direct with retry,
/// then indirect), mark failure only when every path failed.
fn run_round(net: &mut LossyNet, states: &mut Vec<SwimState>) {
    let n = states.len();
    for i in 0..n {
        let (target, _events) = states[i].advance_round();
        let Some(target) = target else { continue };
        let dst = states
            .iter()
            .position(|s| s.me() == target)
            .expect("target is a real node");
        let updates = states[i].take_piggyback();

        let mut alive = false;
        for _ in 0..=PING_RETRIES {
            if ping(net, states, i, dst, &updates) {
                alive = true;
                break;
            }
        }
        if !alive {
            for helper in states[i].pingreq_candidates(target, PINGREQ_K) {
                let h = states
                    .iter()
                    .position(|s| s.me() == helper)
                    .expect("helper is a real node");
                // Four legs: request to the helper, the helper's ping
                // round trip, and the result back to the origin.
                if !net.leg() {
                    continue;
                }
                let relayed = ping(net, states, h, dst, &updates);
                if !net.leg() {
                    continue;
                }
                if relayed {
                    alive = true;
                    break;
                }
            }
        }
        if !alive {
            states[i].on_probe_failure(target);
        }
    }
}

/// Builds `n` members that all know the full roster, runs `rounds` lossy
/// protocol rounds, and returns the final states.
fn simulate(n: usize, loss: f64, seed: u64, rounds: usize) -> Vec<SwimState> {
    let addrs: Vec<Address> = (0..n as u64).map(Address).collect();
    let roster: Vec<Update> = addrs
        .iter()
        .map(|&addr| Update {
            addr,
            incarnation: 0,
            status: Status::Alive,
        })
        .collect();
    let mut states: Vec<SwimState> = addrs
        .iter()
        .map(|&a| {
            let mut s = SwimState::new(a, SwimConfig::default());
            s.absorb_roster(&roster);
            s
        })
        .collect();
    let mut net = LossyNet {
        rng: SmallRng::seed_from_u64(seed),
        loss,
    };
    for _ in 0..rounds {
        run_round(&mut net, &mut states);
    }
    states
}

fn assert_converged(states: &[SwimState]) {
    let full: Vec<Address> = states.iter().map(|s| s.me()).collect();
    for s in states {
        let mut expect = full.clone();
        expect.sort();
        assert_eq!(
            s.view(),
            expect,
            "node {} lost members (false death is permanent)",
            s.me()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn views_stay_converged_up_to_twenty_percent_loss(
        n in 3usize..=5,
        loss in 0.0f64..0.20,
        seed in any::<u64>(),
    ) {
        let states = simulate(n, loss, seed, 40);
        let full: Vec<Address> = states.iter().map(|s| s.me()).collect();
        for s in &states {
            let mut expect = full.clone();
            expect.sort();
            prop_assert_eq!(s.view(), expect);
        }
    }
}

// Fixed-seed regression cases: exact scenarios that must keep passing.

#[test]
fn converges_without_loss() {
    assert_converged(&simulate(5, 0.0, 1, 20));
}

#[test]
fn converges_at_twenty_percent_loss_seed_42() {
    assert_converged(&simulate(4, 0.20, 42, 60));
}

#[test]
fn converges_at_twenty_percent_loss_seed_c0ffee() {
    assert_converged(&simulate(5, 0.20, 0xC0FFEE, 60));
}

#[test]
fn suspicion_is_refuted_not_fatal() {
    // At 15% loss suspicions do occur; the property that matters is that
    // refutation wins: incarnation numbers rise above zero somewhere, yet
    // nobody dies.
    let states = simulate(4, 0.15, 7, 80);
    assert_converged(&states);
}
