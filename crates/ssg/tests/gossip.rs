//! Live SWIM group tests: daemons on a simulated cluster, join/leave
//! propagation, failure detection, freeze semantics.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Sender};
use margo::MargoInstance;
use na::{Address, Fabric};
use ssg::{Event, SsgConfig, SsgGroup, Status};

enum Cmd {
    Tick,
    Leave,
    Die, // abrupt: finalize margo without leaving
    Stop,
}

struct Daemon {
    group: Arc<SsgGroup>,
    cmd: Sender<Cmd>,
    handle: Option<hpcsim::cluster::SimHandle<()>>,
}

impl Daemon {
    fn addr(&self) -> Address {
        self.group.address()
    }
    fn tick(&self) {
        self.cmd.send(Cmd::Tick).unwrap();
    }
    fn stop(mut self) {
        let _ = self.cmd.send(Cmd::Stop);
        if let Some(h) = self.handle.take() {
            h.join();
        }
    }
}

fn config() -> SsgConfig {
    SsgConfig {
        ping_timeout: Duration::from_millis(60),
        ..Default::default()
    }
}

fn spawn_daemon(
    cluster: &hpcsim::Cluster,
    fabric: &Fabric,
    node: usize,
    contact: Option<Address>,
) -> Daemon {
    let (cmd_tx, cmd_rx) = bounded::<Cmd>(64);
    let (group_tx, group_rx) = bounded(1);
    let fabric = fabric.clone();
    let handle = cluster.spawn("ssg-daemon", node, move || {
        let margo = MargoInstance::init(&fabric);
        let group = match contact {
            None => SsgGroup::create(Arc::clone(&margo), "g", config()),
            Some(c) => SsgGroup::join(Arc::clone(&margo), "g", c, config()).expect("join"),
        };
        group_tx.send(Arc::clone(&group)).unwrap();
        loop {
            match cmd_rx.recv() {
                Ok(Cmd::Tick) => group.tick(),
                Ok(Cmd::Leave) => {
                    group.leave();
                    margo.finalize();
                    break;
                }
                Ok(Cmd::Die) => {
                    margo.finalize();
                    break;
                }
                Ok(Cmd::Stop) | Err(_) => {
                    margo.finalize();
                    break;
                }
            }
        }
        // Drain remaining commands so senders never block.
        while let Ok(c) = cmd_rx.try_recv() {
            if matches!(c, Cmd::Stop) {
                break;
            }
        }
    });
    let group = group_rx.recv().unwrap();
    Daemon {
        group,
        cmd: cmd_tx,
        handle: Some(handle),
    }
}

/// Pumps one round of ticks across all daemons.
fn pump(daemons: &[&Daemon], rounds: usize) {
    for _ in 0..rounds {
        for d in daemons {
            d.tick();
        }
        // Give ping handlers a moment to run (real time, not virtual).
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn join_propagates_to_all_members() {
    let cluster = hpcsim::Cluster::default();
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let boot = spawn_daemon(&cluster, &fabric, 0, None);
    let d1 = spawn_daemon(&cluster, &fabric, 1, Some(boot.addr()));
    let d2 = spawn_daemon(&cluster, &fabric, 2, Some(boot.addr()));
    let d3 = spawn_daemon(&cluster, &fabric, 3, Some(d1.addr()));
    let all = [&boot, &d1, &d2, &d3];
    for _ in 0..40 {
        pump(&all, 1);
        if all.iter().all(|d| d.group.view().len() == 4) {
            break;
        }
    }
    let mut expect: Vec<Address> = all.iter().map(|d| d.addr()).collect();
    expect.sort_unstable();
    for d in all {
        assert_eq!(d.group.view(), expect);
    }
    for d in [boot, d1, d2, d3] {
        d.stop();
    }
}

#[test]
fn graceful_leave_disseminates() {
    let cluster = hpcsim::Cluster::default();
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let boot = spawn_daemon(&cluster, &fabric, 0, None);
    let d1 = spawn_daemon(&cluster, &fabric, 1, Some(boot.addr()));
    let d2 = spawn_daemon(&cluster, &fabric, 2, Some(boot.addr()));
    pump(&[&boot, &d1, &d2], 10);
    let leaver = d1.addr();
    d1.cmd.send(Cmd::Leave).unwrap();
    for _ in 0..40 {
        pump(&[&boot, &d2], 1);
        if boot.group.view().len() == 2 && d2.group.view().len() == 2 {
            break;
        }
    }
    assert!(!boot.group.view().contains(&leaver));
    assert!(!d2.group.view().contains(&leaver));
    boot.stop();
    d2.stop();
    if let Some(h) = { d1 }.handle.take() {
        h.join();
    }
}

#[test]
fn crashed_member_is_detected_and_removed() {
    let cluster = hpcsim::Cluster::default();
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let boot = spawn_daemon(&cluster, &fabric, 0, None);
    let d1 = spawn_daemon(&cluster, &fabric, 1, Some(boot.addr()));
    let d2 = spawn_daemon(&cluster, &fabric, 2, Some(boot.addr()));
    pump(&[&boot, &d1, &d2], 10);
    assert_eq!(boot.group.view().len(), 3);
    let victim = d2.addr();
    d2.cmd.send(Cmd::Die).unwrap(); // no goodbye
    // Suspicion must mature into death after enough rounds.
    for _ in 0..80 {
        pump(&[&boot, &d1], 1);
        if !boot.group.view().contains(&victim) && !d1.group.view().contains(&victim) {
            break;
        }
    }
    assert!(!boot.group.view().contains(&victim), "boot still sees victim");
    assert!(!d1.group.view().contains(&victim), "d1 still sees victim");
    boot.stop();
    d1.stop();
    if let Some(h) = { d2 }.handle.take() {
        h.join();
    }
}

#[test]
fn frozen_group_refuses_joins() {
    let cluster = hpcsim::Cluster::default();
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let boot = spawn_daemon(&cluster, &fabric, 0, None);
    boot.group.freeze();
    let contact = boot.addr();
    let f2 = fabric.clone();
    let refused = cluster
        .spawn("late", 5, move || {
            let margo = MargoInstance::init(&f2);
            let r = SsgGroup::join(Arc::clone(&margo), "g", contact, config());
            let refused = r.is_err();
            margo.finalize();
            refused
        })
        .join();
    assert!(refused, "join must be refused while frozen");
    boot.group.unfreeze();
    let late = spawn_daemon(&cluster, &fabric, 5, Some(boot.addr()));
    assert_eq!(late.group.view().len(), 2);
    boot.stop();
    late.stop();
}

#[test]
fn observers_fire_on_membership_changes() {
    let cluster = hpcsim::Cluster::default();
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let boot = spawn_daemon(&cluster, &fabric, 0, None);
    let events = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let ev2 = Arc::clone(&events);
    boot.group.observe(move |e| ev2.lock().push(e));
    let d1 = spawn_daemon(&cluster, &fabric, 1, Some(boot.addr()));
    let joined = d1.addr();
    pump(&[&boot, &d1], 5);
    assert!(events.lock().contains(&Event::Joined(joined)));
    boot.stop();
    d1.stop();
}

#[test]
fn injected_suspicion_about_self_is_refuted() {
    let cluster = hpcsim::Cluster::default();
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let boot = spawn_daemon(&cluster, &fabric, 0, None);
    let me = boot.addr();
    boot.group.inject_update(me, 0, Status::Suspect);
    // We must still consider ourselves alive (with a bumped incarnation).
    assert!(boot.group.view().contains(&me));
    boot.stop();
}

#[test]
fn observer_events_for_one_member_arrive_in_incarnation_order() {
    let cluster = hpcsim::Cluster::default();
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let boot = spawn_daemon(&cluster, &fabric, 0, None);
    let events = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let ev2 = Arc::clone(&events);
    boot.group.observe(move |e| ev2.lock().push(e));

    // Gossip about one member, delivered in protocol order: join,
    // suspicion, refutation at a higher incarnation, then death.
    let x = Address(0xdead_0001);
    boot.group.inject_update(x, 0, Status::Alive);
    boot.group.inject_update(x, 0, Status::Suspect);
    boot.group.inject_update(x, 1, Status::Alive);
    // Stale suspicion from the old incarnation: superseded, no event.
    boot.group.inject_update(x, 0, Status::Suspect);
    boot.group.inject_update(x, 1, Status::Dead);
    // Death is terminal: a later Alive must not resurrect the member.
    boot.group.inject_update(x, 2, Status::Alive);

    let got: Vec<Event> = events
        .lock()
        .iter()
        .copied()
        .filter(|e| e.addr() == x)
        .collect();
    assert_eq!(
        got,
        vec![
            Event::Joined(x),
            Event::Suspected(x),
            Event::Refuted(x),
            Event::Died(x),
        ],
        "stale and post-mortem updates must not surface as events"
    );
    assert!(!boot.group.view().contains(&x));
    boot.stop();
}

#[test]
fn concurrent_death_reports_deliver_exactly_one_died_event() {
    // A crash is routinely detected twice at once: the direct ping path
    // and a ping-req helper both gossip `Dead` for the same incarnation.
    // Observer delivery must collapse the duplicates to one event.
    let cluster = hpcsim::Cluster::default();
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let boot = spawn_daemon(&cluster, &fabric, 0, None);
    let events = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let ev2 = Arc::clone(&events);
    boot.group.observe(move |e| ev2.lock().push(e));

    let x = Address(0xdead_0002);
    boot.group.inject_update(x, 3, Status::Alive);

    let barrier = Arc::new(std::sync::Barrier::new(2));
    let reporters: Vec<_> = (0..2)
        .map(|_| {
            let group = Arc::clone(&boot.group);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                group.inject_update(x, 3, Status::Dead);
            })
        })
        .collect();
    for r in reporters {
        r.join().unwrap();
    }

    let died = events
        .lock()
        .iter()
        .filter(|e| matches!(e, Event::Died(a) if *a == x))
        .count();
    assert_eq!(died, 1, "duplicate death reports must deliver exactly once");
    assert!(!boot.group.view().contains(&x));
    boot.stop();
}

#[test]
fn ticks_advance_virtual_time_by_periods() {
    let cluster = hpcsim::Cluster::default();
    let fabric = Fabric::new(Arc::clone(cluster.shared()));
    let boot = spawn_daemon(&cluster, &fabric, 0, None);
    let clock = cluster.shared().clock_of(boot.group.address().pid()).unwrap();
    let before = clock.now();
    pump(&[&boot], 5);
    let after = clock.now();
    assert!(
        after >= before + 4 * SsgConfig::default().period_ns,
        "ticks must move virtual time: {before} -> {after}"
    );
    boot.stop();
}
