//! The SWIM protocol state machine (pure: no clocks, no I/O).
//!
//! All transport and timing concerns live in [`crate::group`]; this module
//! only encodes SWIM's rules:
//!
//! * membership table with per-member incarnation numbers,
//! * update precedence (alive/suspect/dead resolution),
//! * self-refutation (bump incarnation when suspected),
//! * suspicion expiry after a configurable number of protocol rounds,
//! * bounded infection-style dissemination (each update is piggybacked a
//!   limited number of times, scaling with log of the group size).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use na::Address;

/// Liveness status of a member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Status {
    /// Believed alive.
    Alive,
    /// Probed and unresponsive; may refute by bumping its incarnation.
    Suspect,
    /// Declared failed (suspicion expired).
    Dead,
    /// Gracefully departed.
    Left,
}

/// A disseminated membership update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Update {
    /// Subject member.
    pub addr: Address,
    /// Subject's incarnation number the update refers to.
    pub incarnation: u64,
    /// Asserted status.
    pub status: Status,
}

/// Membership-change events surfaced to the embedding service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A new member is now part of the view.
    Joined(Address),
    /// A member is suspected of having failed.
    Suspected(Address),
    /// A member was declared dead.
    Died(Address),
    /// A member left gracefully.
    Left(Address),
    /// A suspected member refuted the suspicion.
    Refuted(Address),
}

impl Event {
    /// The member the event concerns.
    pub fn addr(&self) -> Address {
        match *self {
            Event::Joined(a)
            | Event::Suspected(a)
            | Event::Died(a)
            | Event::Left(a)
            | Event::Refuted(a) => a,
        }
    }

    /// Whether the member is gone from the view (crashed or left) — the
    /// trigger for staging-store repair in observers.
    pub fn is_departure(&self) -> bool {
        matches!(self, Event::Died(_) | Event::Left(_))
    }
}

/// Protocol constants.
#[derive(Debug, Clone, Copy)]
pub struct SwimConfig {
    /// Rounds a member may stay suspected before being declared dead.
    pub suspect_rounds: u64,
    /// Maximum updates piggybacked per message.
    pub piggyback_max: usize,
}

impl Default for SwimConfig {
    fn default() -> Self {
        Self {
            suspect_rounds: 5,
            piggyback_max: 8,
        }
    }
}

#[derive(Debug, Clone)]
struct Member {
    incarnation: u64,
    status: Status,
    suspected_at: u64,
}

/// The SWIM state machine for one group member.
#[derive(Debug)]
pub struct SwimState {
    me: Address,
    incarnation: u64,
    members: BTreeMap<Address, Member>,
    /// Updates awaiting dissemination, with remaining transmission budget.
    outbox: Vec<(Update, u32)>,
    round: u64,
    config: SwimConfig,
    /// Rotation cursor for round-robin probing.
    probe_cursor: usize,
}

impl SwimState {
    /// A fresh state containing only ourselves.
    pub fn new(me: Address, config: SwimConfig) -> Self {
        let mut members = BTreeMap::new();
        members.insert(
            me,
            Member {
                incarnation: 0,
                status: Status::Alive,
                suspected_at: 0,
            },
        );
        Self {
            me,
            incarnation: 0,
            members,
            outbox: Vec::new(),
            round: 0,
            config,
            probe_cursor: 0,
        }
    }

    /// Our own address.
    pub fn me(&self) -> Address {
        self.me
    }

    /// Current protocol round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Sorted list of alive members (the *view*).
    pub fn view(&self) -> Vec<Address> {
        self.members
            .iter()
            .filter(|(_, m)| m.status == Status::Alive || m.status == Status::Suspect)
            .map(|(&a, _)| a)
            .collect()
    }

    /// A stable hash of the view, used by Colza's 2PC to compare views
    /// across processes cheaply.
    pub fn view_epoch(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for a in self.view() {
            h ^= a.0;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Number of transmissions each update gets: 3·⌈log₂(n)⌉ + 2.
    fn tx_budget(&self) -> u32 {
        let n = self.members.len().max(2) as u32;
        3 * (32 - (n - 1).leading_zeros()) + 2
    }

    /// Seeds the table from a join reply (list of `(addr, inc, status)`).
    pub fn absorb_roster(&mut self, roster: &[Update]) -> Vec<Event> {
        roster.iter().filter_map(|&u| self.apply_update(u)).collect()
    }

    /// Records a locally observed join (e.g. we served the join RPC) and
    /// queues its dissemination.
    pub fn local_join(&mut self, addr: Address) -> Option<Event> {
        let u = Update {
            addr,
            incarnation: 0,
            status: Status::Alive,
        };
        let ev = self.apply_update(u);
        ev
    }

    /// Records a graceful leave observed locally.
    pub fn local_leave(&mut self, addr: Address) -> Option<Event> {
        let inc = self.members.get(&addr).map(|m| m.incarnation).unwrap_or(0);
        self.apply_update(Update {
            addr,
            incarnation: inc,
            status: Status::Left,
        })
    }

    /// Marks a probe failure: the target becomes suspected.
    pub fn on_probe_failure(&mut self, addr: Address) -> Option<Event> {
        let inc = self.members.get(&addr).map(|m| m.incarnation).unwrap_or(0);
        self.apply_update(Update {
            addr,
            incarnation: inc,
            status: Status::Suspect,
        })
    }

    /// Applies one disseminated update with SWIM's precedence rules and
    /// returns the membership event it caused, if any. Also queues the
    /// update for further gossip when it changed our state.
    pub fn apply_update(&mut self, u: Update) -> Option<Event> {
        // Updates about ourselves: refute suspicion/death by bumping our
        // incarnation and gossiping a fresher Alive.
        if u.addr == self.me {
            if matches!(u.status, Status::Suspect | Status::Dead) && u.incarnation >= self.incarnation
            {
                self.incarnation = u.incarnation + 1;
                let refutation = Update {
                    addr: self.me,
                    incarnation: self.incarnation,
                    status: Status::Alive,
                };
                self.members.get_mut(&self.me).expect("self present").incarnation =
                    self.incarnation;
                self.queue(refutation);
                return Some(Event::Refuted(self.me));
            }
            return None;
        }

        let round = self.round;
        let (changed, event) = match self.members.get_mut(&u.addr) {
            None => {
                if matches!(u.status, Status::Dead | Status::Left) {
                    // Don't resurrect tombstones we never knew; still gossip.
                    (true, None)
                } else {
                    self.members.insert(
                        u.addr,
                        Member {
                            incarnation: u.incarnation,
                            status: u.status,
                            suspected_at: round,
                        },
                    );
                    (true, Some(Event::Joined(u.addr)))
                }
            }
            Some(m) => {
                let supersedes = match (m.status, u.status) {
                    // Dead/Left are terminal for a given member.
                    (Status::Dead | Status::Left, _) => false,
                    (_, Status::Dead | Status::Left) => u.incarnation >= m.incarnation,
                    (Status::Alive, Status::Alive) => u.incarnation > m.incarnation,
                    (Status::Alive, Status::Suspect) => u.incarnation >= m.incarnation,
                    (Status::Suspect, Status::Alive) => u.incarnation > m.incarnation,
                    (Status::Suspect, Status::Suspect) => u.incarnation > m.incarnation,
                };
                if !supersedes {
                    (false, None)
                } else {
                    let was = m.status;
                    m.incarnation = u.incarnation;
                    m.status = u.status;
                    if u.status == Status::Suspect {
                        m.suspected_at = round;
                    }
                    let ev = match (was, u.status) {
                        (_, Status::Dead) => Some(Event::Died(u.addr)),
                        (_, Status::Left) => Some(Event::Left(u.addr)),
                        (Status::Suspect, Status::Alive) => Some(Event::Refuted(u.addr)),
                        (Status::Alive, Status::Suspect) => Some(Event::Suspected(u.addr)),
                        _ => None,
                    };
                    (true, ev)
                }
            }
        };
        if changed {
            self.queue(u);
        }
        event
    }

    fn queue(&mut self, u: Update) {
        let budget = self.tx_budget();
        // Replace any older queued update about the same member.
        self.outbox.retain(|(q, _)| q.addr != u.addr);
        self.outbox.push((u, budget));
    }

    /// Takes up to `piggyback_max` updates to attach to an outgoing
    /// message, decrementing their transmission budgets.
    pub fn take_piggyback(&mut self) -> Vec<Update> {
        let max = self.config.piggyback_max;
        let mut out = Vec::with_capacity(max.min(self.outbox.len()));
        // Prefer the freshest updates (most recently queued).
        for entry in self.outbox.iter_mut().rev().take(max) {
            out.push(entry.0);
            entry.1 -= 1;
        }
        self.outbox.retain(|&(_, left)| left > 0);
        out
    }

    /// The full roster as updates (what a join reply carries).
    pub fn roster(&self) -> Vec<Update> {
        self.members
            .iter()
            .map(|(&addr, m)| Update {
                addr,
                incarnation: m.incarnation,
                status: m.status,
            })
            .collect()
    }

    /// Advances one protocol round: expires suspects into deaths and
    /// returns the next probe target (round-robin over the live view,
    /// excluding ourselves).
    pub fn advance_round(&mut self) -> (Option<Address>, Vec<Event>) {
        self.round += 1;
        let expired: Vec<Address> = self
            .members
            .iter()
            .filter(|(_, m)| {
                m.status == Status::Suspect
                    && self.round.saturating_sub(m.suspected_at) > self.config.suspect_rounds
            })
            .map(|(&a, _)| a)
            .collect();
        let mut events = Vec::new();
        for addr in expired {
            let inc = self.members[&addr].incarnation;
            if let Some(ev) = self.apply_update(Update {
                addr,
                incarnation: inc,
                status: Status::Dead,
            }) {
                events.push(ev);
            }
        }
        let peers: Vec<Address> = self
            .view()
            .into_iter()
            .filter(|&a| a != self.me)
            .collect();
        let target = if peers.is_empty() {
            None
        } else {
            self.probe_cursor = (self.probe_cursor + 1) % peers.len();
            Some(peers[self.probe_cursor])
        };
        (target, events)
    }

    /// Candidate helpers for indirect probing (k members ≠ target, ≠ me).
    pub fn pingreq_candidates(&self, target: Address, k: usize) -> Vec<Address> {
        self.view()
            .into_iter()
            .filter(|&a| a != self.me && a != target)
            .take(k)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(n: u64) -> Address {
        Address(n)
    }

    fn state() -> SwimState {
        SwimState::new(addr(0), SwimConfig::default())
    }

    #[test]
    fn fresh_state_contains_self() {
        let s = state();
        assert_eq!(s.view(), vec![addr(0)]);
    }

    #[test]
    fn join_adds_member_and_fires_event() {
        let mut s = state();
        let ev = s.local_join(addr(1));
        assert_eq!(ev, Some(Event::Joined(addr(1))));
        assert_eq!(s.view(), vec![addr(0), addr(1)]);
        // Duplicate join of the same incarnation is idempotent.
        assert_eq!(s.local_join(addr(1)), None);
    }

    #[test]
    fn leave_removes_from_view() {
        let mut s = state();
        s.local_join(addr(1));
        let ev = s.local_leave(addr(1));
        assert_eq!(ev, Some(Event::Left(addr(1))));
        assert_eq!(s.view(), vec![addr(0)]);
    }

    #[test]
    fn suspicion_expires_into_death() {
        let mut s = state();
        s.local_join(addr(1));
        s.on_probe_failure(addr(1));
        let mut died = false;
        for _ in 0..=SwimConfig::default().suspect_rounds + 1 {
            let (_, events) = s.advance_round();
            died |= events.contains(&Event::Died(addr(1)));
        }
        assert!(died);
        assert_eq!(s.view(), vec![addr(0)]);
    }

    #[test]
    fn fresher_alive_refutes_suspicion() {
        let mut s = state();
        s.local_join(addr(1));
        s.on_probe_failure(addr(1));
        let ev = s.apply_update(Update {
            addr: addr(1),
            incarnation: 1,
            status: Status::Alive,
        });
        assert_eq!(ev, Some(Event::Refuted(addr(1))));
        assert_eq!(s.view(), vec![addr(0), addr(1)]);
    }

    #[test]
    fn stale_alive_does_not_refute() {
        let mut s = state();
        s.local_join(addr(1));
        s.on_probe_failure(addr(1));
        let ev = s.apply_update(Update {
            addr: addr(1),
            incarnation: 0,
            status: Status::Alive,
        });
        assert_eq!(ev, None);
    }

    #[test]
    fn self_suspicion_bumps_incarnation() {
        let mut s = state();
        let ev = s.apply_update(Update {
            addr: addr(0),
            incarnation: 0,
            status: Status::Suspect,
        });
        assert_eq!(ev, Some(Event::Refuted(addr(0))));
        // The refutation must be queued for gossip with incarnation 1.
        let pb = s.take_piggyback();
        assert!(pb
            .iter()
            .any(|u| u.addr == addr(0) && u.incarnation == 1 && u.status == Status::Alive));
    }

    #[test]
    fn dead_is_terminal() {
        let mut s = state();
        s.local_join(addr(1));
        s.apply_update(Update {
            addr: addr(1),
            incarnation: 5,
            status: Status::Dead,
        });
        let ev = s.apply_update(Update {
            addr: addr(1),
            incarnation: 9,
            status: Status::Alive,
        });
        assert_eq!(ev, None);
        assert_eq!(s.view(), vec![addr(0)]);
    }

    #[test]
    fn piggyback_budget_is_bounded() {
        let mut s = state();
        for i in 1..=4 {
            s.local_join(addr(i));
        }
        let mut seen = 0;
        // Updates must eventually stop being transmitted.
        for _ in 0..200 {
            seen += s.take_piggyback().len();
        }
        assert!(seen > 0);
        assert!(s.take_piggyback().is_empty());
        assert!(seen < 200, "budget not enforced: {seen}");
    }

    #[test]
    fn probe_targets_rotate_over_peers() {
        let mut s = state();
        for i in 1..=3 {
            s.local_join(addr(i));
        }
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..6 {
            if let (Some(t), _) = s.advance_round() {
                seen.insert(t);
            }
        }
        assert_eq!(seen.len(), 3, "all peers probed");
    }

    #[test]
    fn view_epoch_changes_with_membership() {
        let mut s = state();
        let e0 = s.view_epoch();
        s.local_join(addr(1));
        let e1 = s.view_epoch();
        assert_ne!(e0, e1);
        s.local_leave(addr(1));
        assert_eq!(s.view_epoch(), e0);
    }

    #[test]
    fn roster_roundtrips_through_absorb() {
        let mut a = state();
        a.local_join(addr(1));
        a.local_join(addr(2));
        let mut b = SwimState::new(addr(3), SwimConfig::default());
        let events = b.absorb_roster(&a.roster());
        assert_eq!(events.len(), 3); // learned 0, 1, 2
        assert_eq!(b.view(), vec![addr(0), addr(1), addr(2), addr(3)]);
    }

    #[test]
    fn pingreq_candidates_exclude_target_and_self() {
        let mut s = state();
        for i in 1..=4 {
            s.local_join(addr(i));
        }
        let c = s.pingreq_candidates(addr(2), 2);
        assert_eq!(c.len(), 2);
        assert!(!c.contains(&addr(0)) && !c.contains(&addr(2)));
    }
}
