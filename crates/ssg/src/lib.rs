//! # ssg — Scalable Service Groups (SWIM gossip membership)
//!
//! Mochi's SSG tracks the set of live service processes using the SWIM
//! protocol [Das et al., DSN'02]: periodic random probing with indirect
//! ping-req fallback, a suspicion mechanism with incarnation-number
//! refutation, and infection-style (piggybacked) dissemination of
//! membership updates. Views are **eventually consistent** — the property
//! Colza compensates for with a two-phase commit at `activate`.
//!
//! The crate splits cleanly:
//!
//! * [`swim`] — the pure protocol state machine (no I/O, heavily tested),
//! * [`group::SsgGroup`] — the live group: SWIM wired to margo RPCs
//!   (`ping`, `ping-req`, `join`, `leave`), with observer callbacks and
//!   the freeze/unfreeze hooks Colza's `activate`/`deactivate` use to
//!   stop membership churn during an iteration.
//!
//! ## Time
//!
//! Protocol periods are driven by explicit [`group::SsgGroup::tick`]
//! calls. A tick *merges* the owning process's virtual clock up to
//! `group start + round × period` — gossip runs concurrently with real
//! work on a real machine, so it never *adds* time to a busy process, it
//! only represents the passage of wall-clock protocol periods on an idle
//! one. Experiment harnesses pump ticks; daemons embed them in their
//! service loops.

pub mod group;
pub mod swim;

pub use group::{SsgConfig, SsgGroup};
pub use swim::{Event, Status, SwimConfig, Update};
