//! Live SSG groups: the SWIM state machine wired to margo RPCs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use margo::{MargoInstance, RpcError};
use na::Address;

use crate::swim::{Event, Status, SwimConfig, SwimState, Update};

/// Group configuration.
#[derive(Debug, Clone, Copy)]
pub struct SsgConfig {
    /// Virtual duration of one SWIM protocol period.
    pub period_ns: u64,
    /// Real-time liveness timeout for one probe RPC.
    pub ping_timeout: Duration,
    /// Extra direct-ping attempts before falling back to indirect
    /// probing. One retry makes a round tolerate a single lost
    /// request/reply without spending suspicion budget.
    pub ping_retries: u32,
    /// Number of helpers asked during indirect probing.
    pub pingreq_k: usize,
    /// Protocol constants passed to the state machine.
    pub swim: SwimConfig,
}

impl Default for SsgConfig {
    fn default() -> Self {
        Self {
            period_ns: hpcsim::SEC,
            ping_timeout: Duration::from_millis(200),
            ping_retries: 1,
            pingreq_k: 2,
            swim: SwimConfig::default(),
        }
    }
}

#[derive(Serialize, Deserialize)]
struct PingArgs {
    from: Address,
    updates: Vec<Update>,
}

#[derive(Serialize, Deserialize)]
struct PingReply {
    updates: Vec<Update>,
}

#[derive(Serialize, Deserialize)]
struct PingReqArgs {
    origin: Address,
    target: Address,
    updates: Vec<Update>,
}

#[derive(Serialize, Deserialize)]
struct JoinArgs {
    joiner: Address,
}

#[derive(Serialize, Deserialize)]
struct JoinReply {
    roster: Vec<Update>,
}

#[derive(Serialize, Deserialize)]
struct LeaveArgs {
    leaver: Address,
}

type Observer = Box<dyn Fn(Event) + Send + Sync>;

/// A live SWIM group member.
pub struct SsgGroup {
    name: String,
    margo: Arc<MargoInstance>,
    state: Arc<Mutex<SwimState>>,
    config: SsgConfig,
    start_vns: u64,
    frozen: Arc<AtomicBool>,
    observers: Arc<Mutex<Vec<Observer>>>,
}

impl SsgGroup {
    /// Creates a brand-new group of one (the bootstrap daemon).
    pub fn create(margo: Arc<MargoInstance>, name: &str, config: SsgConfig) -> Arc<Self> {
        let me = margo.address();
        let group = Self::build(margo, name, config, SwimState::new(me, config.swim));
        group
    }

    /// Joins an existing group by contacting one known member — the
    /// address a Colza daemon reads from the connection file.
    pub fn join(
        margo: Arc<MargoInstance>,
        name: &str,
        contact: Address,
        config: SsgConfig,
    ) -> Result<Arc<Self>, RpcError> {
        let me = margo.address();
        let reply: JoinReply =
            margo.forward(contact, &format!("{name}.join"), &JoinArgs { joiner: me })?;
        let mut state = SwimState::new(me, config.swim);
        state.absorb_roster(&reply.roster);
        Ok(Self::build(margo, name, config, state))
    }

    fn build(
        margo: Arc<MargoInstance>,
        name: &str,
        config: SsgConfig,
        state: SwimState,
    ) -> Arc<Self> {
        let state = Arc::new(Mutex::new(state));
        let frozen = Arc::new(AtomicBool::new(false));
        let observers: Arc<Mutex<Vec<Observer>>> = Arc::new(Mutex::new(Vec::new()));
        let start_vns = hpcsim::current().now();

        // ping: apply piggybacked updates, reply with our own.
        {
            let state = Arc::clone(&state);
            let observers = Arc::clone(&observers);
            margo.register(&format!("{name}.ping"), move |args: PingArgs, _ctx| {
                let mut st = state.lock();
                let events: Vec<Event> = args
                    .updates
                    .iter()
                    .filter_map(|&u| st.apply_update(u))
                    .collect();
                let reply = PingReply {
                    updates: st.take_piggyback(),
                };
                drop(st);
                notify(&observers, &events);
                Ok(reply)
            });
        }

        // ping-req: probe the target on behalf of the origin.
        {
            let state = Arc::clone(&state);
            let margo2 = Arc::downgrade(&margo);
            let name2 = name.to_string();
            let timeout = config.ping_timeout;
            margo.register(&format!("{name}.pingreq"), move |args: PingReqArgs, _ctx| {
                let Some(margo) = margo2.upgrade() else {
                    return Err("instance gone".to_string());
                };
                let ping = PingArgs {
                    from: args.origin,
                    updates: args.updates,
                };
                let ok: Result<PingReply, _> = margo.forward_timeout(
                    args.target,
                    &format!("{name2}.ping"),
                    &ping,
                    Some(timeout),
                );
                match ok {
                    Ok(reply) => {
                        let mut st = state.lock();
                        for u in &reply.updates {
                            st.apply_update(*u);
                        }
                        Ok(true)
                    }
                    Err(_) => Ok(false),
                }
            });
        }

        // join: add the member (unless frozen) and hand back the roster.
        {
            let state = Arc::clone(&state);
            let frozen = Arc::clone(&frozen);
            let observers = Arc::clone(&observers);
            margo.register(&format!("{name}.join"), move |args: JoinArgs, _ctx| {
                if frozen.load(Ordering::Acquire) {
                    return Err("group frozen: retry after current iteration".to_string());
                }
                let mut st = state.lock();
                let ev = st.local_join(args.joiner);
                let reply = JoinReply { roster: st.roster() };
                drop(st);
                if let Some(ev) = ev {
                    notify(&observers, &[ev]);
                }
                Ok(reply)
            });
        }

        // leave: record the graceful departure.
        {
            let state = Arc::clone(&state);
            let frozen = Arc::clone(&frozen);
            let observers = Arc::clone(&observers);
            margo.register(&format!("{name}.leave"), move |args: LeaveArgs, _ctx| {
                if frozen.load(Ordering::Acquire) {
                    return Err("group frozen: retry after current iteration".to_string());
                }
                let mut st = state.lock();
                let ev = st.local_leave(args.leaver);
                drop(st);
                if let Some(ev) = ev {
                    notify(&observers, &[ev]);
                }
                Ok(())
            });
        }

        Arc::new(Self {
            name: name.to_string(),
            margo,
            state,
            config,
            start_vns,
            frozen,
            observers,
        })
    }

    /// Our address.
    pub fn address(&self) -> Address {
        self.margo.address()
    }

    /// The current (eventually consistent) view: sorted live addresses.
    pub fn view(&self) -> Vec<Address> {
        self.state.lock().view()
    }

    /// A stable hash of the view (2PC comparisons).
    pub fn view_epoch(&self) -> u64 {
        self.state.lock().view_epoch()
    }

    /// Registers a membership-change observer.
    pub fn observe(&self, cb: impl Fn(Event) + Send + Sync + 'static) {
        self.observers.lock().push(Box::new(cb));
    }

    /// Freezes membership: joins and graceful leaves are refused until
    /// [`SsgGroup::unfreeze`]. Colza calls this from `activate`.
    pub fn freeze(&self) {
        self.frozen.store(true, Ordering::Release);
    }

    /// Lifts a freeze (Colza's `deactivate`).
    pub fn unfreeze(&self) {
        self.frozen.store(false, Ordering::Release);
    }

    /// Whether the group is currently frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen.load(Ordering::Acquire)
    }

    /// Runs one SWIM protocol period: merges the virtual clock forward by
    /// one period, expires suspicions, probes one member (with indirect
    /// ping-req fallback), and exchanges piggybacked updates.
    ///
    /// Use this when gossip is the clock-driving activity (an idle
    /// staging area; the Fig. 4 harness). A busy daemon's service loop
    /// uses [`SsgGroup::tick_quiet`] instead, so background gossip does
    /// not outrun the work's virtual time.
    pub fn tick(&self) {
        self.tick_inner(true)
    }

    /// One SWIM protocol round *without* advancing the virtual clock:
    /// protocol state (probing, suspicion, dissemination) progresses, but
    /// time attribution is left to the foreground work.
    pub fn tick_quiet(&self) {
        self.tick_inner(false)
    }

    fn tick_inner(&self, advance_clock: bool) {
        let (target, events, round) = {
            let mut st = self.state.lock();
            let (t, ev) = st.advance_round();
            (t, ev, st.round())
        };
        if advance_clock {
            hpcsim::current()
                .clock()
                .merge(self.start_vns + round * self.config.period_ns);
        }
        notify(&self.observers, &events);
        let Some(target) = target else { return };

        let updates = self.state.lock().take_piggyback();
        let ping = PingArgs {
            from: self.address(),
            updates: updates.clone(),
        };
        let mut reply: Result<PingReply, _> = Err(RpcError::Timeout);
        for _ in 0..=self.config.ping_retries {
            hpcsim::trace::counter_add("ssg.ping.sent", 1);
            reply = self.margo.forward_timeout(
                target,
                &format!("{}.ping", self.name),
                &ping,
                Some(self.config.ping_timeout),
            );
            match &reply {
                Ok(_) => break,
                Err(e) if e.is_retryable() => continue,
                Err(_) => break,
            }
        }
        match reply {
            Ok(reply) => {
                hpcsim::trace::counter_add("ssg.ping.ok", 1);
                let events: Vec<Event> = {
                    let mut st = self.state.lock();
                    reply
                        .updates
                        .iter()
                        .filter_map(|&u| st.apply_update(u))
                        .collect()
                };
                notify(&self.observers, &events);
            }
            Err(_) => {
                hpcsim::trace::counter_add("ssg.ping.failed", 1);
                self.probe_indirect(target, updates);
            }
        }
    }

    fn probe_indirect(&self, target: Address, updates: Vec<Update>) {
        let helpers = self
            .state
            .lock()
            .pingreq_candidates(target, self.config.pingreq_k);
        let mut confirmed = false;
        for helper in helpers {
            hpcsim::trace::counter_add("ssg.pingreq.sent", 1);
            let ok: Result<bool, _> = self.margo.forward_timeout(
                helper,
                &format!("{}.pingreq", self.name),
                &PingReqArgs {
                    origin: self.address(),
                    target,
                    updates: updates.clone(),
                },
                Some(self.config.ping_timeout * 2),
            );
            if ok.unwrap_or(false) {
                confirmed = true;
                break;
            }
        }
        if !confirmed {
            let ev = self.state.lock().on_probe_failure(target);
            if let Some(ev) = ev {
                notify(&self.observers, &[ev]);
            }
        }
    }

    /// Gracefully leaves the group: notifies a live peer so the departure
    /// gossips, then the caller may finalize its margo instance.
    pub fn leave(&self) {
        let me = self.address();
        let peers: Vec<Address> = self.view().into_iter().filter(|&a| a != me).collect();
        for peer in peers {
            let ok: Result<(), _> = self.margo.forward_timeout(
                peer,
                &format!("{}.leave", self.name),
                &LeaveArgs { leaver: me },
                Some(self.config.ping_timeout),
            );
            if ok.is_ok() {
                break;
            }
        }
    }

    /// Direct access to the protocol state (admin/diagnostics).
    pub fn with_state<R>(&self, f: impl FnOnce(&SwimState) -> R) -> R {
        f(&self.state.lock())
    }

    /// Injects an update as if it had been gossiped to us (failure
    /// injection in tests).
    pub fn inject_update(&self, addr: Address, incarnation: u64, status: Status) {
        let ev = self
            .state
            .lock()
            .apply_update(Update {
                addr,
                incarnation,
                status,
            });
        if let Some(ev) = ev {
            notify(&self.observers, &[ev]);
        }
    }
}

fn notify(observers: &Arc<Mutex<Vec<Observer>>>, events: &[Event]) {
    if events.is_empty() {
        return;
    }
    if hpcsim::trace::enabled() {
        for ev in events {
            let kind = match ev {
                Event::Joined(_) => "joined",
                Event::Suspected(_) => "suspected",
                Event::Died(_) => "died",
                Event::Left(_) => "left",
                Event::Refuted(_) => "refuted",
            };
            hpcsim::trace::counter_add(format!("ssg.event.{kind}"), 1);
        }
    }
    let obs = observers.lock();
    for ev in events {
        for cb in obs.iter() {
            cb(*ev);
        }
    }
}
